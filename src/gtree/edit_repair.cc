#include "gtree/edit_repair.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "partition/partitioner.h"
#include "util/string_util.h"

namespace gmine::gtree {

using graph::Edge;
using graph::NodeId;

namespace {

// Effective change of one undirected edge pair over the whole batch
// (removals win over additions, parallel additions pre-summed).
struct PairDelta {
  bool existed = false;  // present in the base graph
  bool exists = false;   // present after the edit
  float old_w = 0.0f;    // base weight (0 when absent)
  float add_w = 0.0f;    // summed added weight surviving removal
};

// A cross-leaf edge change before path expansion.
struct CrossEvent {
  TreeNodeId leaf_u = kInvalidTreeNode;
  TreeNodeId leaf_v = kInvalidTreeNode;
  int64_t count = 0;
  double weight = 0.0;
};

// Expands one cross-leaf edge delta onto every community pair the edge
// aggregates into — the exact mirror of ConnectivityIndex::Build's
// per-edge loop: all (x, y) with x on leaf_u..child-of-LCA and y on
// leaf_v..child-of-LCA.
void ExpandCrossDelta(const GTree& tree, const CrossEvent& ev,
                      std::vector<ConnectivityDelta>* out) {
  TreeNodeId lca = tree.LowestCommonAncestor(ev.leaf_u, ev.leaf_v);
  for (TreeNodeId x = ev.leaf_u; x != lca; x = tree.node(x).parent) {
    for (TreeNodeId y = ev.leaf_v; y != lca; y = tree.node(y).parent) {
      out->push_back(ConnectivityDelta{x, y, ev.count, ev.weight});
    }
  }
}

}  // namespace

uint64_t LineageSaltOf(const GTree& tree, TreeNodeId id) {
  std::vector<TreeNodeId> path = tree.PathFromRoot(id);
  uint64_t salt = partition::RootLineageSalt();
  for (size_t i = 1; i < path.size(); ++i) {
    const std::vector<TreeNodeId>& siblings =
        tree.node(path[i - 1]).children;
    uint32_t ordinal = 0;
    for (size_t j = 0; j < siblings.size(); ++j) {
      if (siblings[j] == path[i]) {
        ordinal = static_cast<uint32_t>(j);
        break;
      }
    }
    salt = partition::ChildLineageSalt(salt, ordinal);
  }
  return salt;
}

gmine::Result<RepairResult> RepairGTree(const GTree& tree,
                                        const graph::Graph& base,
                                        const graph::GraphEdit& edit,
                                        const graph::EditResult& applied,
                                        const RepairOptions& options) {
  if (applied.graph.num_nodes() == 0) {
    return Status::InvalidArgument("RepairGTree: edit empties the graph");
  }
  if (tree.empty()) {
    return Status::InvalidArgument("RepairGTree: empty hierarchy");
  }
  const uint32_t base_n = edit.base_nodes();
  const auto& removed_nodes = edit.removed_nodes();
  auto is_removed = [&](NodeId v) {
    return removed_nodes.count(v) > 0;
  };
  const uint32_t num_added = static_cast<uint32_t>(
      edit.added_node_weights().size());

  RepairResult out;
  EditClassification& cls = out.classification;
  for (NodeId v : removed_nodes) {
    if (v < base_n) {
      ++cls.removed_vertices;
      cls.needs_remap = true;
    }
  }

  // ---- Effective per-pair edge deltas (provisional id space). Pairs
  // with a removed endpoint are owned by the vertex-removal scan below.
  std::map<std::pair<NodeId, NodeId>, PairDelta> pair_deltas;
  auto norm = [](NodeId u, NodeId v) {
    return u < v ? std::make_pair(u, v) : std::make_pair(v, u);
  };
  for (const auto& [u, v] : edit.removed_edges()) {
    if (is_removed(u) || is_removed(v)) continue;
    if (u >= base_n || v >= base_n) continue;  // nothing existed before
    if (!base.HasEdge(u, v)) continue;         // removal of absent edge
    PairDelta& d = pair_deltas[norm(u, v)];
    d.existed = true;
    d.old_w = base.EdgeWeight(u, v);
    d.exists = false;
  }
  for (const Edge& e : edit.added_edges()) {
    if (e.src == e.dst) continue;
    if (is_removed(e.src) || is_removed(e.dst)) continue;
    auto key = norm(e.src, e.dst);
    if (edit.removed_edges().count(key) > 0) continue;  // removal wins
    PairDelta& d = pair_deltas[key];
    if (key.second < base_n && base.HasEdge(key.first, key.second)) {
      d.existed = true;
      d.old_w = base.EdgeWeight(key.first, key.second);
    }
    d.exists = true;
    d.add_w += e.weight;
  }

  // ---- Place surviving added vertices: the leaf holding the plurality
  // (by weight) of each vertex's batch edges, processed in id order so
  // earlier placements can vote for later ones; isolated vertices fall
  // back to the smallest leaf. Deterministic by construction.
  std::vector<TreeNodeId> chosen_leaf(num_added, kInvalidTreeNode);
  TreeNodeId smallest_leaf = kInvalidTreeNode;
  {
    size_t smallest = 0;
    for (const TreeNode& tn : tree.nodes()) {
      if (!tn.IsLeaf()) continue;
      if (smallest_leaf == kInvalidTreeNode || tn.members.size() < smallest) {
        smallest_leaf = tn.id;
        smallest = tn.members.size();
      }
    }
  }
  auto leaf_of_endpoint = [&](NodeId v) -> TreeNodeId {
    if (v < base_n) return tree.LeafOf(v);
    return chosen_leaf[v - base_n];  // earlier-placed batch vertex
  };
  // One pass over the pair deltas builds per-provisional incident
  // lists, so placement is linear in the batch instead of
  // O(added_vertices x batch_edges).
  std::vector<std::vector<std::pair<NodeId, float>>> incident(num_added);
  for (const auto& [key, d] : pair_deltas) {
    if (!d.exists) continue;
    if (key.first >= base_n) {
      incident[key.first - base_n].emplace_back(key.second, d.add_w);
    }
    if (key.second >= base_n) {
      incident[key.second - base_n].emplace_back(key.first, d.add_w);
    }
  }
  for (uint32_t i = 0; i < num_added; ++i) {
    const NodeId prov = base_n + i;
    if (applied.old_to_new[prov] == graph::kInvalidNode) continue;
    std::map<TreeNodeId, double> votes;
    for (const auto& [other, w] : incident[i]) {
      TreeNodeId leaf = leaf_of_endpoint(other);
      if (leaf != kInvalidTreeNode) votes[leaf] += w;
    }
    TreeNodeId best = smallest_leaf;
    double best_w = -1.0;
    for (const auto& [leaf, w] : votes) {
      if (w > best_w) {
        best = leaf;
        best_w = w;
      }
    }
    chosen_leaf[i] = best;
    ++cls.added_vertices;
  }

  // ---- Membership changes and page dirtiness per (old) leaf.
  std::vector<bool> dirty_old(tree.size(), false);
  std::unordered_map<TreeNodeId, std::vector<NodeId>> leaf_additions;
  for (uint32_t i = 0; i < num_added; ++i) {
    const NodeId prov = base_n + i;
    NodeId new_id = applied.old_to_new[prov];
    if (new_id == graph::kInvalidNode) continue;
    leaf_additions[chosen_leaf[i]].push_back(new_id);
    dirty_old[chosen_leaf[i]] = true;
  }
  for (NodeId v : removed_nodes) {
    if (v >= base_n) continue;
    TreeNodeId leaf = tree.LeafOf(v);
    if (leaf != kInvalidTreeNode) dirty_old[leaf] = true;
  }

  // ---- Cross-leaf events (exact connectivity deltas) and intra-leaf
  // page dirtiness from the pair deltas.
  std::vector<CrossEvent> events;
  for (const auto& [key, d] : pair_deltas) {
    TreeNodeId leaf_u = leaf_of_endpoint(key.first);
    TreeNodeId leaf_v = leaf_of_endpoint(key.second);
    if (leaf_u == leaf_v) {
      ++cls.intra_leaf_edge_ops;
      dirty_old[leaf_u] = true;
      continue;
    }
    ++cls.cross_leaf_edge_ops;
    CrossEvent ev;
    ev.leaf_u = leaf_u;
    ev.leaf_v = leaf_v;
    if (d.existed && !d.exists) {
      ev.count = -1;
      ev.weight = -static_cast<double>(d.old_w);
    } else if (!d.existed && d.exists) {
      ev.count = 1;
      ev.weight = d.add_w;
    } else {  // existed && exists: parallel addition summed onto it
      ev.count = 0;
      ev.weight = d.add_w;
    }
    if (ev.count != 0 || ev.weight != 0.0) events.push_back(ev);
  }
  for (NodeId v : removed_nodes) {
    if (v >= base_n) continue;
    TreeNodeId leaf_v = tree.LeafOf(v);
    for (const graph::Neighbor& nb : base.Neighbors(v)) {
      if (is_removed(nb.id) && nb.id < v) continue;  // count pair once
      TreeNodeId leaf_nb = tree.LeafOf(nb.id);
      if (leaf_nb == leaf_v) continue;  // dies with the leaf page
      events.push_back(CrossEvent{leaf_v, leaf_nb, -1,
                                  -static_cast<double>(nb.weight)});
    }
  }

  // ---- Post-edit membership per old tree node (new graph ids).
  std::vector<std::vector<NodeId>> new_members(tree.size());
  for (const TreeNode& tn : tree.nodes()) {
    if (!tn.IsLeaf()) continue;
    std::vector<NodeId>& members = new_members[tn.id];
    members.reserve(tn.members.size());
    for (NodeId m : tn.members) {
      NodeId mapped = applied.old_to_new[m];
      if (mapped != graph::kInvalidNode) members.push_back(mapped);
    }
    auto added = leaf_additions.find(tn.id);
    if (added != leaf_additions.end()) {
      // Added ids follow every surviving id and were assigned in
      // ascending order, so appending keeps the list sorted.
      members.insert(members.end(), added->second.begin(),
                     added->second.end());
    }
  }

  // ---- Prune emptied leaves (and interiors whose subtrees emptied).
  // Pre-order ids mean children have larger ids than their parent, so a
  // reverse scan settles the cascade in one pass.
  std::vector<bool> pruned(tree.size(), false);
  for (uint32_t id = tree.size(); id > 0; --id) {
    const TreeNode& tn = tree.node(id - 1);
    if (tn.IsLeaf()) {
      pruned[tn.id] = new_members[tn.id].empty();
    } else {
      bool all = true;
      for (TreeNodeId c : tn.children) all = all && pruned[c];
      pruned[tn.id] = all;
    }
    if (pruned[tn.id]) out.topology_changed = true;
  }
  if (pruned[tree.root()]) {
    return Status::Internal("RepairGTree: root pruned on non-empty graph");
  }

  // ---- Re-split overflowing leaves with their lineage-salted seeds.
  const uint32_t min_size = options.build.min_partition_size > 0
                                ? options.build.min_partition_size
                                : 2 * options.build.fanout;
  const uint32_t max_leaf =
      options.max_leaf_size > 0 ? options.max_leaf_size : 4 * min_size;
  std::unordered_map<TreeNodeId, RegionSubtree> regions;
  for (const TreeNode& tn : tree.nodes()) {
    if (!tn.IsLeaf() || pruned[tn.id]) continue;
    if (new_members[tn.id].size() <= max_leaf) continue;
    if (tn.depth >= options.build.levels) continue;  // bottom level
    auto region = BuildRegionSubtree(applied.graph, new_members[tn.id],
                                     tn.depth, LineageSaltOf(tree, tn.id),
                                     options.build);
    if (!region.ok()) return region.status();
    if (region.value().nodes.size() <= 1) continue;  // degenerate: no split
    regions.emplace(tn.id, std::move(region).value());
    ++out.subtree_rebuilds;
    out.topology_changed = true;
  }

  // ---- Splice: rebuild the node vector in pre-order, substituting
  // re-split leaves with their region subtrees and skipping pruned
  // nodes; regenerate positional names; renumber.
  out.old_to_new.assign(tree.size(), kInvalidTreeNode);
  std::vector<TreeNode> nodes;
  struct Frame {
    bool in_region = false;
    TreeNodeId id = 0;          // old id, or region-local id
    TreeNodeId old_leaf = 0;    // region owner when in_region
    TreeNodeId parent = kInvalidTreeNode;  // new id
  };
  std::vector<Frame> stack = {{false, tree.root(), 0, kInvalidTreeNode}};
  std::vector<TreeNodeId> region_leaf_ids;  // new ids of region leaves
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    TreeNodeId new_id = static_cast<TreeNodeId>(nodes.size());
    TreeNode tn;
    tn.id = new_id;
    tn.parent = f.parent;
    tn.name = StrFormat("s%03u", new_id);
    if (!f.in_region) {
      const TreeNode& old = tree.node(f.id);
      out.old_to_new[f.id] = new_id;
      tn.depth = old.depth;
      auto region = regions.find(f.id);
      if (region != regions.end()) {
        // The old leaf becomes the region root; its members moved into
        // the region's leaves.
        const RegionSubtree& r = region->second;
        for (auto it = r.nodes[0].children.rbegin();
             it != r.nodes[0].children.rend(); ++it) {
          stack.push_back({true, *it, f.id, new_id});
        }
      } else if (old.IsLeaf()) {
        tn.members = std::move(new_members[f.id]);
        tn.subtree_size = tn.members.size();
      } else {
        for (auto it = old.children.rbegin(); it != old.children.rend();
             ++it) {
          if (!pruned[*it]) stack.push_back({false, *it, 0, new_id});
        }
      }
    } else {
      const RegionSubtree& r = regions.at(f.old_leaf);
      const TreeNode& src = r.nodes[f.id];
      tn.depth = src.depth;
      if (src.IsLeaf()) {
        tn.members = src.members;
        tn.subtree_size = tn.members.size();
        region_leaf_ids.push_back(new_id);
      } else {
        for (auto it = src.children.rbegin(); it != src.children.rend();
             ++it) {
          stack.push_back({true, *it, f.old_leaf, new_id});
        }
      }
    }
    nodes.push_back(std::move(tn));
    if (f.parent != kInvalidTreeNode) {
      nodes[f.parent].children.push_back(new_id);
    }
  }
  for (size_t i = nodes.size(); i > 0; --i) {
    TreeNode& tn = nodes[i - 1];
    if (!tn.IsLeaf()) {
      tn.subtree_size = 0;
      for (TreeNodeId c : tn.children) {
        tn.subtree_size += nodes[c].subtree_size;
      }
    }
  }
  auto built =
      GTree::FromNodes(std::move(nodes), applied.graph.num_nodes());
  if (!built.ok()) return built.status();
  out.tree = std::move(built).value();

  // ---- Dirty pages in new ids: semantically changed old leaves (unless
  // pruned or replaced by a region) plus every region leaf.
  for (TreeNodeId id = 0; id < tree.size(); ++id) {
    if (!dirty_old[id] || pruned[id]) continue;
    if (regions.count(id) > 0) continue;  // covered by region leaves
    TreeNodeId mapped = out.old_to_new[id];
    if (mapped != kInvalidTreeNode) out.dirty_leaves.push_back(mapped);
  }
  out.dirty_leaves.insert(out.dirty_leaves.end(), region_leaf_ids.begin(),
                          region_leaf_ids.end());
  std::sort(out.dirty_leaves.begin(), out.dirty_leaves.end());
  out.dirty_leaves.erase(
      std::unique(out.dirty_leaves.begin(), out.dirty_leaves.end()),
      out.dirty_leaves.end());

  // ---- Connectivity: exact row deltas while the topology held; a
  // re-split or prune shifted tree ids, so the index is rebuilt over the
  // new tree instead (the engine does it, outside this pure function).
  if (out.topology_changed) {
    out.rebuild_connectivity = true;
  } else {
    for (const CrossEvent& ev : events) {
      ExpandCrossDelta(tree, ev, &out.conn_deltas);
    }
  }
  return out;
}

}  // namespace gmine::gtree
