// The Tomahawk principle (§III-C): "as the user chooses a community node
// to focus on, we traverse the tree in order to gather the desired node
// of interest, its sons and its siblings. Then we plot only these items"
// — presenting "nodes above, beneath and by the side of a node of
// interest" instead of the exponentially-growing full expansion.

#ifndef GMINE_GTREE_TOMAHAWK_H_
#define GMINE_GTREE_TOMAHAWK_H_

#include <cstdint>
#include <vector>

#include "gtree/gtree.h"

namespace gmine::gtree {

/// Tomahawk tunables.
struct TomahawkOptions {
  /// Also include the siblings of every ancestor (the wider "ax blade").
  /// Without this the context is focus + children + siblings + ancestor
  /// path; with it, each level of the path also shows its alternatives.
  bool include_ancestor_siblings = true;
};

/// The bounded display context around a focus community.
struct TomahawkContext {
  TreeNodeId focus = kInvalidTreeNode;
  /// Path root..parent(focus), excluding the focus ("nodes above").
  std::vector<TreeNodeId> ancestors;
  /// Children of the focus ("nodes beneath").
  std::vector<TreeNodeId> children;
  /// Same-parent communities ("nodes by the side").
  std::vector<TreeNodeId> siblings;
  /// Siblings of each ancestor (optional, see TomahawkOptions).
  std::vector<TreeNodeId> ancestor_siblings;

  /// Everything to draw: focus + ancestors + children + siblings
  /// (+ ancestor siblings), deduplicated, in id order.
  std::vector<TreeNodeId> DisplaySet() const;

  /// Display-set size without materializing it.
  size_t DisplaySize() const;
};

/// Computes the Tomahawk context for `focus`.
TomahawkContext ComputeTomahawk(const GTree& tree, TreeNodeId focus,
                                const TomahawkOptions& options = {});

/// Number of tree nodes a naive "expand everything under the focus plus
/// the path above it" display would draw — the quantity the Tomahawk
/// principle avoids (compared in bench_tomahawk / Fig. 4).
uint64_t FullExpansionSize(const GTree& tree, TreeNodeId focus);

}  // namespace gmine::gtree

#endif  // GMINE_GTREE_TOMAHAWK_H_
