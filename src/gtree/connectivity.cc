#include "gtree/connectivity.h"

#include <algorithm>

#include "util/coding.h"
#include "util/parallel.h"

namespace gmine::gtree {

using graph::Graph;
using graph::Neighbor;
using graph::NodeId;

ConnectivityIndex ConnectivityIndex::Build(const Graph& g, const GTree& tree,
                                           int threads) {
  ConnectivityIndex index;
  const size_t n = g.num_nodes();
  if (n == 0) return index;

  // Aggregates the cross edges of nodes [b, e) into `pairs`.
  auto scan_range = [&](size_t b, size_t e,
                        std::unordered_map<uint64_t, PairStats>* pairs) {
    std::vector<TreeNodeId> path_u;
    std::vector<TreeNodeId> path_v;
    for (NodeId u = static_cast<NodeId>(b); u < e; ++u) {
      TreeNodeId leaf_u = tree.LeafOf(u);
      for (const Neighbor& nb : g.Neighbors(u)) {
        if (nb.id <= u) continue;  // each undirected edge once
        TreeNodeId leaf_v = tree.LeafOf(nb.id);
        if (leaf_u == leaf_v) continue;  // intra-community edge
        TreeNodeId lca = tree.LowestCommonAncestor(leaf_u, leaf_v);
        // Paths from each leaf up to (excluding) the LCA.
        path_u.clear();
        for (TreeNodeId x = leaf_u; x != lca; x = tree.node(x).parent) {
          path_u.push_back(x);
        }
        path_v.clear();
        for (TreeNodeId y = leaf_v; y != lca; y = tree.node(y).parent) {
          path_v.push_back(y);
        }
        for (TreeNodeId x : path_u) {
          for (TreeNodeId y : path_v) {
            PairStats& ps = (*pairs)[Key(x, y)];
            ps.count += 1;
            ps.weight += nb.weight;
          }
        }
      }
    }
  };

  // Both the serial and the parallel path use the same fixed chunking
  // and fold partials in ascending chunk order, so counts and weights
  // are bit-identical at every thread count.
  constexpr size_t kGrain = 2048;
  const size_t num_chunks = internal::NumChunks(n, kGrain);
  std::vector<std::unordered_map<uint64_t, PairStats>> partials(num_chunks);
  ParallelFor(0, num_chunks, 1, threads, [&](size_t c) {
    size_t b = c * kGrain;
    size_t e = std::min(n, b + kGrain);
    scan_range(b, e, &partials[c]);
  });
  for (const auto& partial : partials) index.AbsorbPairs(partial);
  return index;
}

void ConnectivityIndex::Accumulator::AddEdge(NodeId u, NodeId v,
                                             float weight) {
  const TreeNodeId leaf_u = tree_->LeafOf(u);
  const TreeNodeId leaf_v = tree_->LeafOf(v);
  if (leaf_u == leaf_v) return;  // intra-community edge
  ++cross_edges_;
  // Identical to Build's per-edge aggregation: the edge contributes to
  // every community pair on opposite sides of its leaves' LCA.
  const TreeNodeId lca = tree_->LowestCommonAncestor(leaf_u, leaf_v);
  path_u_.clear();
  for (TreeNodeId x = leaf_u; x != lca; x = tree_->node(x).parent) {
    path_u_.push_back(x);
  }
  path_v_.clear();
  for (TreeNodeId y = leaf_v; y != lca; y = tree_->node(y).parent) {
    path_v_.push_back(y);
  }
  for (TreeNodeId x : path_u_) {
    for (TreeNodeId y : path_v_) {
      PairStats& ps = pairs_[Key(x, y)];
      ps.count += 1;
      ps.weight += weight;
    }
  }
}

ConnectivityIndex ConnectivityIndex::FromAccumulator(Accumulator&& acc) {
  ConnectivityIndex index;
  index.AbsorbPairs(acc.pairs_);
  acc.pairs_.clear();
  return index;
}

void ConnectivityIndex::AbsorbPairs(
    const std::unordered_map<uint64_t, PairStats>& pairs) {
  for (const auto& [key, ps] : pairs) {
    PairStats& dst = pairs_[key];
    if (dst.count == 0) {
      TreeNodeId a = static_cast<TreeNodeId>(key >> 32);
      TreeNodeId b = static_cast<TreeNodeId>(key & 0xffffffffu);
      adjacent_[a].push_back(b);
      adjacent_[b].push_back(a);
    }
    dst.count += ps.count;
    dst.weight += ps.weight;
  }
}

void ConnectivityIndex::ApplyDeltas(
    const std::vector<ConnectivityDelta>& deltas) {
  auto drop_adjacent = [&](TreeNodeId from, TreeNodeId to) {
    auto it = adjacent_.find(from);
    if (it == adjacent_.end()) return;
    auto pos = std::find(it->second.begin(), it->second.end(), to);
    if (pos != it->second.end()) it->second.erase(pos);
    if (it->second.empty()) adjacent_.erase(it);
  };
  for (const ConnectivityDelta& d : deltas) {
    const uint64_t key = Key(d.a, d.b);
    auto it = pairs_.find(key);
    if (it == pairs_.end()) {
      if (d.count <= 0) continue;  // erasing an absent pair is a no-op
      TreeNodeId a = static_cast<TreeNodeId>(key >> 32);
      TreeNodeId b = static_cast<TreeNodeId>(key & 0xffffffffu);
      adjacent_[a].push_back(b);
      adjacent_[b].push_back(a);
      PairStats& ps = pairs_[key];
      ps.count = static_cast<uint64_t>(d.count);
      ps.weight = d.weight;
      continue;
    }
    PairStats& ps = it->second;
    const int64_t count = static_cast<int64_t>(ps.count) + d.count;
    if (count <= 0) {
      TreeNodeId a = static_cast<TreeNodeId>(key >> 32);
      TreeNodeId b = static_cast<TreeNodeId>(key & 0xffffffffu);
      pairs_.erase(it);
      drop_adjacent(a, b);
      drop_adjacent(b, a);
      continue;
    }
    ps.count = static_cast<uint64_t>(count);
    ps.weight += d.weight;
  }
}

uint64_t ConnectivityIndex::CountBetween(TreeNodeId a, TreeNodeId b) const {
  auto it = pairs_.find(Key(a, b));
  return it == pairs_.end() ? 0 : it->second.count;
}

double ConnectivityIndex::WeightBetween(TreeNodeId a, TreeNodeId b) const {
  auto it = pairs_.find(Key(a, b));
  return it == pairs_.end() ? 0.0 : it->second.weight;
}

std::vector<ConnectivityEdge> ConnectivityIndex::EdgesOf(TreeNodeId id) const {
  std::vector<ConnectivityEdge> out;
  auto it = adjacent_.find(id);
  if (it == adjacent_.end()) return out;
  for (TreeNodeId other : it->second) {
    auto ps = pairs_.find(Key(id, other));
    out.push_back(ConnectivityEdge{id, other, ps->second.count,
                                   ps->second.weight});
  }
  std::sort(out.begin(), out.end(),
            [](const ConnectivityEdge& x, const ConnectivityEdge& y) {
              if (x.count != y.count) return x.count > y.count;
              return x.b < y.b;
            });
  return out;
}

std::vector<ConnectivityEdge> ConnectivityIndex::EdgesAmong(
    const std::vector<TreeNodeId>& ids) const {
  std::vector<ConnectivityEdge> out;
  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t j = i + 1; j < ids.size(); ++j) {
      auto it = pairs_.find(Key(ids[i], ids[j]));
      if (it == pairs_.end()) continue;
      out.push_back(ConnectivityEdge{ids[i], ids[j], it->second.count,
                                     it->second.weight});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ConnectivityEdge& x, const ConnectivityEdge& y) {
              if (x.count != y.count) return x.count > y.count;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  return out;
}

std::string ConnectivityIndex::Serialize() const {
  // Deterministic order: sort keys.
  std::vector<uint64_t> keys;
  keys.reserve(pairs_.size());
  for (const auto& [key, _] : pairs_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  std::string blob;
  PutVarint64(&blob, keys.size());
  for (uint64_t key : keys) {
    const PairStats& ps = pairs_.at(key);
    PutFixed64(&blob, key);
    PutVarint64(&blob, ps.count);
    PutDouble(&blob, ps.weight);
  }
  return blob;
}

gmine::Result<ConnectivityIndex> ConnectivityIndex::Deserialize(
    std::string_view blob) {
  ConnectivityIndex index;
  uint64_t n = 0;
  if (!GetVarint64(&blob, &n)) {
    return Status::Corruption("connectivity: bad count");
  }
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t key = 0;
    uint64_t count = 0;
    double weight = 0.0;
    if (!GetFixed64(&blob, &key) || !GetVarint64(&blob, &count) ||
        !GetDouble(&blob, &weight)) {
      return Status::Corruption("connectivity: truncated entry");
    }
    TreeNodeId a = static_cast<TreeNodeId>(key >> 32);
    TreeNodeId b = static_cast<TreeNodeId>(key & 0xffffffffu);
    PairStats& ps = index.pairs_[key];
    if (ps.count == 0) {
      index.adjacent_[a].push_back(b);
      index.adjacent_[b].push_back(a);
    }
    ps.count = count;
    ps.weight = weight;
  }
  return index;
}

}  // namespace gmine::gtree
