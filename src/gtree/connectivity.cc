#include "gtree/connectivity.h"

#include <algorithm>

#include "util/coding.h"

namespace gmine::gtree {

using graph::Graph;
using graph::Neighbor;
using graph::NodeId;

ConnectivityIndex ConnectivityIndex::Build(const Graph& g,
                                           const GTree& tree) {
  ConnectivityIndex index;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    TreeNodeId leaf_u = tree.LeafOf(u);
    for (const Neighbor& nb : g.Neighbors(u)) {
      if (nb.id <= u) continue;  // each undirected edge once
      TreeNodeId leaf_v = tree.LeafOf(nb.id);
      if (leaf_u == leaf_v) continue;  // intra-community edge
      TreeNodeId lca = tree.LowestCommonAncestor(leaf_u, leaf_v);
      // Paths from each leaf up to (excluding) the LCA.
      std::vector<TreeNodeId> path_u;
      for (TreeNodeId x = leaf_u; x != lca; x = tree.node(x).parent) {
        path_u.push_back(x);
      }
      std::vector<TreeNodeId> path_v;
      for (TreeNodeId y = leaf_v; y != lca; y = tree.node(y).parent) {
        path_v.push_back(y);
      }
      for (TreeNodeId x : path_u) {
        for (TreeNodeId y : path_v) {
          PairStats& ps = index.pairs_[Key(x, y)];
          if (ps.count == 0) {
            index.adjacent_[x].push_back(y);
            index.adjacent_[y].push_back(x);
          }
          ps.count += 1;
          ps.weight += nb.weight;
        }
      }
    }
  }
  return index;
}

uint64_t ConnectivityIndex::CountBetween(TreeNodeId a, TreeNodeId b) const {
  auto it = pairs_.find(Key(a, b));
  return it == pairs_.end() ? 0 : it->second.count;
}

double ConnectivityIndex::WeightBetween(TreeNodeId a, TreeNodeId b) const {
  auto it = pairs_.find(Key(a, b));
  return it == pairs_.end() ? 0.0 : it->second.weight;
}

std::vector<ConnectivityEdge> ConnectivityIndex::EdgesOf(TreeNodeId id) const {
  std::vector<ConnectivityEdge> out;
  auto it = adjacent_.find(id);
  if (it == adjacent_.end()) return out;
  for (TreeNodeId other : it->second) {
    auto ps = pairs_.find(Key(id, other));
    out.push_back(ConnectivityEdge{id, other, ps->second.count,
                                   ps->second.weight});
  }
  std::sort(out.begin(), out.end(),
            [](const ConnectivityEdge& x, const ConnectivityEdge& y) {
              if (x.count != y.count) return x.count > y.count;
              return x.b < y.b;
            });
  return out;
}

std::vector<ConnectivityEdge> ConnectivityIndex::EdgesAmong(
    const std::vector<TreeNodeId>& ids) const {
  std::vector<ConnectivityEdge> out;
  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t j = i + 1; j < ids.size(); ++j) {
      auto it = pairs_.find(Key(ids[i], ids[j]));
      if (it == pairs_.end()) continue;
      out.push_back(ConnectivityEdge{ids[i], ids[j], it->second.count,
                                     it->second.weight});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ConnectivityEdge& x, const ConnectivityEdge& y) {
              if (x.count != y.count) return x.count > y.count;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  return out;
}

std::string ConnectivityIndex::Serialize() const {
  // Deterministic order: sort keys.
  std::vector<uint64_t> keys;
  keys.reserve(pairs_.size());
  for (const auto& [key, _] : pairs_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  std::string blob;
  PutVarint64(&blob, keys.size());
  for (uint64_t key : keys) {
    const PairStats& ps = pairs_.at(key);
    PutFixed64(&blob, key);
    PutVarint64(&blob, ps.count);
    PutDouble(&blob, ps.weight);
  }
  return blob;
}

gmine::Result<ConnectivityIndex> ConnectivityIndex::Deserialize(
    std::string_view blob) {
  ConnectivityIndex index;
  uint64_t n = 0;
  if (!GetVarint64(&blob, &n)) {
    return Status::Corruption("connectivity: bad count");
  }
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t key = 0;
    uint64_t count = 0;
    double weight = 0.0;
    if (!GetFixed64(&blob, &key) || !GetVarint64(&blob, &count) ||
        !GetDouble(&blob, &weight)) {
      return Status::Corruption("connectivity: truncated entry");
    }
    TreeNodeId a = static_cast<TreeNodeId>(key >> 32);
    TreeNodeId b = static_cast<TreeNodeId>(key & 0xffffffffu);
    PairStats& ps = index.pairs_[key];
    if (ps.count == 0) {
      index.adjacent_[a].push_back(b);
      index.adjacent_[b].push_back(a);
    }
    ps.count = count;
    ps.weight = weight;
  }
  return index;
}

}  // namespace gmine::gtree
