// G-Tree construction (§III-A): "given a graph, we perform a sequence of
// recursive partitionings to achieve a hierarchy of communities-within-
// communities. At each recursion, each partition is submitted to a new
// partitioning cycle ... until we get the desired granularity."
//
// The paper's demo configuration — DBLP, 5 levels with 5 partitions each,
// giving 5^4 + 1 ... = 626 communities with ~500 nodes each — is
// reproduced by bench_gtree_build.
//
// Construction is sharded: a breadth-first pass splits the graph into
// independent first-level subtrees ("shards"), each shard's subtree is
// built concurrently on the parallel engine, and the shard results are
// spliced back into a single pre-order tree. Community splits are seeded
// from their lineage, so every (shards, threads) setting yields the same
// hierarchy as the serial build.

#ifndef GMINE_GTREE_BUILDER_H_
#define GMINE_GTREE_BUILDER_H_

#include <cstdint>

#include "gtree/gtree.h"
#include "partition/partitioner.h"
#include "util/status.h"

namespace gmine::gtree {

/// Tunables for BuildGTree.
struct GTreeBuildOptions {
  /// Levels of recursive partitioning below the root (the paper uses 5).
  uint32_t levels = 3;
  /// Partitions per recursion (the paper uses 5).
  uint32_t fanout = 5;
  /// Communities at or below this size are not partitioned further even
  /// if `levels` has not been reached (granularity stop).
  uint32_t min_partition_size = 0;  // 0 = derive as 2 * fanout
  /// Partitioner settings; `k` is overridden by `fanout` and `threads`
  /// by the builder's own `threads` knob.
  partition::PartitionOptions partition;
  /// Sharded construction: the builder expands the hierarchy breadth-
  /// first until at least this many independent subtrees exist, then
  /// builds each subtree concurrently and splices the results back into
  /// pre-order. 1 = single shard, 0 = auto (one shard per thread).
  /// Every community split is seeded from its lineage (path from the
  /// root), never from construction order, so ANY shard count produces
  /// the identical tree (verified by sharded_build_equivalence_test).
  uint32_t shards = 1;
  /// Parallelism for frontier splits, shard subtree construction and the
  /// partitioner invocations (see util/parallel.h): 0 = auto, 1 = serial.
  /// The resulting tree is independent of this value.
  int threads = 0;
};

/// Build statistics (reported by bench_gtree_build).
struct GTreeBuildStats {
  uint64_t partition_calls = 0;
  /// Sum of edge cuts over all partition calls.
  double total_edge_cut = 0.0;
  /// Wall time spent inside the partitioner, microseconds (summed across
  /// concurrent shard builders, so it can exceed the build wall time).
  int64_t partition_micros = 0;
  /// Independent subtrees built concurrently (1 for a serial build).
  uint32_t shards_built = 0;
};

/// Recursively partitions `g` into a G-Tree. Every graph node ends up in
/// exactly one leaf. Empty parts are dropped (a community with fewer
/// members than `fanout` simply gets fewer children). With
/// `options.shards` != 1 the recursion is sharded across the thread pool;
/// the result is identical to the single-shard build.
gmine::Result<GTree> BuildGTree(const graph::Graph& g,
                                const GTreeBuildOptions& options,
                                GTreeBuildStats* stats = nullptr);

/// Builds a G-Tree from a known assignment hierarchy instead of running
/// the partitioner: `leaf_assignment[v]` gives node v's leaf community in
/// [0, num_leaves) and leaves are grouped into a balanced tree of the
/// given fanout. Used by tests and by workloads with planted ground
/// truth.
gmine::Result<GTree> BuildGTreeFromAssignment(
    uint32_t num_graph_nodes, const std::vector<uint32_t>& leaf_assignment,
    uint32_t num_leaves, uint32_t fanout);

/// A standalone subtree built for one community region, ready for the
/// incremental edit repair to splice into a full hierarchy. Nodes are
/// pre-order with region-local ids (0 = the region root); `parent` links
/// use those local ids (the root's parent is kInvalidTreeNode), depths
/// are absolute hierarchy depths and leaf member lists hold global graph
/// node ids. Names are left empty — the splice assigns final ones.
struct RegionSubtree {
  std::vector<TreeNode> nodes;
};

/// Recursively partitions the community holding `members` exactly as
/// BuildGTree would partition a community at absolute depth `depth` with
/// lineage salt `salt` (see partition::ChildLineageSalt): same recursion
/// stops, same lineage-salted partitioner seeds, so the result depends
/// only on (members' induced subgraph, depth, salt, options) — never on
/// when or why the region is rebuilt. `members` must be sorted.
gmine::Result<RegionSubtree> BuildRegionSubtree(
    const graph::Graph& g, const std::vector<graph::NodeId>& members,
    uint32_t depth, uint64_t salt, const GTreeBuildOptions& options,
    GTreeBuildStats* stats = nullptr);

}  // namespace gmine::gtree

#endif  // GMINE_GTREE_BUILDER_H_
