// G-Tree construction (§III-A): "given a graph, we perform a sequence of
// recursive partitionings to achieve a hierarchy of communities-within-
// communities. At each recursion, each partition is submitted to a new
// partitioning cycle ... until we get the desired granularity."
//
// The paper's demo configuration — DBLP, 5 levels with 5 partitions each,
// giving 5^4 + 1 ... = 626 communities with ~500 nodes each — is
// reproduced by bench_gtree_build.

#ifndef GMINE_GTREE_BUILDER_H_
#define GMINE_GTREE_BUILDER_H_

#include <cstdint>

#include "gtree/gtree.h"
#include "partition/partitioner.h"
#include "util/status.h"

namespace gmine::gtree {

/// Tunables for BuildGTree.
struct GTreeBuildOptions {
  /// Levels of recursive partitioning below the root (the paper uses 5).
  uint32_t levels = 3;
  /// Partitions per recursion (the paper uses 5).
  uint32_t fanout = 5;
  /// Communities at or below this size are not partitioned further even
  /// if `levels` has not been reached (granularity stop).
  uint32_t min_partition_size = 0;  // 0 = derive as 2 * fanout
  /// Partitioner settings; `k` is overridden by `fanout`.
  partition::PartitionOptions partition;
};

/// Build statistics (reported by bench_gtree_build).
struct GTreeBuildStats {
  uint64_t partition_calls = 0;
  /// Sum of edge cuts over all partition calls.
  double total_edge_cut = 0.0;
  /// Wall time spent inside the partitioner, microseconds.
  int64_t partition_micros = 0;
};

/// Recursively partitions `g` into a G-Tree. Every graph node ends up in
/// exactly one leaf. Empty parts are dropped (a community with fewer
/// members than `fanout` simply gets fewer children).
gmine::Result<GTree> BuildGTree(const graph::Graph& g,
                                const GTreeBuildOptions& options,
                                GTreeBuildStats* stats = nullptr);

/// Builds a G-Tree from a known assignment hierarchy instead of running
/// the partitioner: `leaf_assignment[v]` gives node v's leaf community in
/// [0, num_leaves) and leaves are grouped into a balanced tree of the
/// given fanout. Used by tests and by workloads with planted ground
/// truth.
gmine::Result<GTree> BuildGTreeFromAssignment(
    uint32_t num_graph_nodes, const std::vector<uint32_t>& leaf_assignment,
    uint32_t num_leaves, uint32_t fanout);

}  // namespace gmine::gtree

#endif  // GMINE_GTREE_BUILDER_H_
