// The G-Tree (§III-A): "for each new set of partitions, a new subtree is
// embedded in an R-tree like structure ... The references for the graph
// nodes properly said are at the bottom level of the tree."
//
// A GTree is the static hierarchy: community tree nodes with parent /
// children links, and, at the leaves, the member graph-node ids. Leaf
// payloads (the induced subgraphs) live in the single-file store
// (gtree_store.h) and are loaded on demand, exactly as the paper
// describes ("stored in a single file and the nodes are transferred to
// main memory only when necessary").

#ifndef GMINE_GTREE_GTREE_H_
#define GMINE_GTREE_GTREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace gmine::gtree {

/// Dense id of a tree node (community).
using TreeNodeId = uint32_t;
inline constexpr TreeNodeId kInvalidTreeNode = static_cast<TreeNodeId>(-1);

/// One community in the hierarchy.
struct TreeNode {
  TreeNodeId id = kInvalidTreeNode;
  TreeNodeId parent = kInvalidTreeNode;  // kInvalidTreeNode for the root
  /// Depth: 0 for the root, increasing toward the leaves.
  uint32_t depth = 0;
  /// Children community ids; empty for leaves.
  std::vector<TreeNodeId> children;
  /// Graph-node members; populated only for leaves (bottom level).
  std::vector<graph::NodeId> members;
  /// Total graph nodes under this subtree (== members.size() at leaves).
  uint64_t subtree_size = 0;
  /// Display name, "s000", "s001", ... in creation order (the paper's
  /// figures label communities s034 etc.).
  std::string name;

  bool IsLeaf() const { return children.empty(); }
};

/// The community hierarchy over a graph.
class GTree {
 public:
  GTree() = default;

  /// Assembles a tree from nodes; `nodes[i].id` must equal i and node 0
  /// must be the root. Validates structure.
  static gmine::Result<GTree> FromNodes(std::vector<TreeNode> nodes,
                                        uint32_t num_graph_nodes);

  /// Root id (always 0 for non-empty trees).
  TreeNodeId root() const { return 0; }

  /// Number of tree nodes (communities, including the root).
  uint32_t size() const { return static_cast<uint32_t>(nodes_.size()); }

  bool empty() const { return nodes_.empty(); }

  /// Node accessor; `id` must be < size().
  const TreeNode& node(TreeNodeId id) const { return nodes_[id]; }

  /// Maximum depth (leaves' depth; 0 for a root-only tree).
  uint32_t height() const { return height_; }

  /// Number of leaves.
  uint32_t num_leaves() const { return num_leaves_; }

  /// Leaf community containing graph node `v`, or kInvalidTreeNode.
  TreeNodeId LeafOf(graph::NodeId v) const {
    return v < leaf_of_.size() ? leaf_of_[v] : kInvalidTreeNode;
  }

  /// Path from the root to `id`, inclusive.
  std::vector<TreeNodeId> PathFromRoot(TreeNodeId id) const;

  /// Lowest common ancestor of two tree nodes.
  TreeNodeId LowestCommonAncestor(TreeNodeId a, TreeNodeId b) const;

  /// Siblings of `id` (same parent, excluding `id`); empty for the root.
  std::vector<TreeNodeId> Siblings(TreeNodeId id) const;

  /// All leaves under `id`, in id order.
  std::vector<TreeNodeId> LeavesUnder(TreeNodeId id) const;

  /// All graph nodes under `id` (concatenated leaf members).
  std::vector<graph::NodeId> MembersUnder(TreeNodeId id) const;

  /// Number of tree nodes in the subtree rooted at `id` (incl. itself).
  uint64_t SubtreeNodeCount(TreeNodeId id) const;

  /// Find a community by display name; kInvalidTreeNode when absent.
  TreeNodeId FindByName(std::string_view name) const;

  /// True when `other` partitions the same graph-node universe into
  /// exactly the same leaf member sets, irrespective of tree-node ids,
  /// names or child order. Used to check that sharded and serial builds
  /// agree.
  bool SameLeafMembership(const GTree& other) const;

  /// Average leaf community size (graph nodes per leaf).
  double MeanLeafSize() const;

  /// One-line summary: communities, height, leaves, mean leaf size.
  std::string DebugString() const;

  /// Direct access for stores/tests.
  const std::vector<TreeNode>& nodes() const { return nodes_; }

 private:
  std::vector<TreeNode> nodes_;
  std::vector<TreeNodeId> leaf_of_;  // graph node -> leaf community
  uint32_t height_ = 0;
  uint32_t num_leaves_ = 0;
};

}  // namespace gmine::gtree

#endif  // GMINE_GTREE_GTREE_H_
