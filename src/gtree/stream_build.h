// Out-of-core G-Tree construction (docs/OUTOFCORE.md): builds a store
// from an edge-list file without ever materializing the graph.
//
//   Pass A  stream the edge list once, feeding both arcs of every edge
//           into a bounded-memory external sorter (storage/extsort.h)
//           that spills sorted CSR shard files; track only max node id.
//   Tree    leaves are contiguous node-id ranges of `leaf_size`,
//           grouped into a balanced tree by the assignment builder
//           (gtree/builder.h) — no partitioner, no resident graph.
//   Pass B  k-way merge the shards back in (src, dst) order; every
//           node's full adjacency streams past exactly once, split into
//           the leaf's intra subgraph plus boundary arcs and written
//           page-at-a-time through GTreeStoreWriter, while connectivity
//           edges accumulate via ConnectivityIndex::Accumulator.
//
// Peak memory: the sorter's run buffer (mem_budget_bytes) + one leaf's
// adjacency + O(n) for the leaf assignment and O(pairs) connectivity —
// the semi-external model. The resulting store is `streamed()`: leaf
// pages carry complete adjacency (page-at-a-time kernels are globally
// correct over them), there is no embedded graph section, and the
// store is read-only.
//
// Trade-off vs the in-memory build: leaves are id ranges, not mined
// communities — navigation and mining work identically, but community
// quality depends on the input ordering. Re-partitioning a streamed
// store needs a rebuild.

#ifndef GMINE_GTREE_STREAM_BUILD_H_
#define GMINE_GTREE_STREAM_BUILD_H_

#include <cstdint>
#include <string>

#include "graph/labels.h"
#include "util/status.h"

namespace gmine::gtree {

/// Streaming build tunables.
struct StreamBuildOptions {
  /// Bytes of arcs the external sorter buffers in memory (spill
  /// threshold). The dominant memory knob of the build.
  uint64_t mem_budget_bytes = 64ull << 20;
  /// Graph nodes per leaf community (contiguous id range).
  uint32_t leaf_size = 2048;
  /// Tree fanout above the leaves.
  uint32_t fanout = 8;
  /// Prefix for the sorter's spill files; empty = "<store_path>.shard".
  std::string tmp_prefix;
};

/// What the build did (reported by `gmine build --stream`).
struct StreamBuildStats {
  uint32_t num_nodes = 0;
  uint64_t num_edges = 0;     // undirected edges after dedup
  uint64_t input_arcs = 0;    // arcs fed to the sorter (2 per edge line)
  uint32_t sort_runs = 0;     // sorted shard files spilled
  uint64_t spilled_bytes = 0;
  uint32_t num_leaves = 0;
  uint64_t cross_edges = 0;   // edges crossing leaf communities
  uint64_t store_bytes = 0;   // final store file size
};

/// Builds the store at `store_path` from the (undirected) edge list at
/// `edge_list_path`. `labels` may be empty. Lines are
/// "src dst [weight]" with '#'/'%' comments, like ReadEdgeListFile;
/// self-loops are dropped and duplicate edges merge by weight sum,
/// matching GraphBuilder's defaults.
Status StreamBuildStore(const std::string& edge_list_path,
                        const std::string& store_path,
                        const graph::LabelStore& labels,
                        const StreamBuildOptions& options = {},
                        StreamBuildStats* stats = nullptr);

}  // namespace gmine::gtree

#endif  // GMINE_GTREE_STREAM_BUILD_H_
