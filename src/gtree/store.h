// Single-file persistent G-Tree store (§III-A): "The entire structure is
// stored in a single file and the nodes are transferred to main memory
// only when necessary."
//
// File layout (all little-endian, see store.cc):
//
//   header     magic, version, section table, counts, checksum
//   tree       full topology (parents, children, names, leaf members)
//   conn       serialized ConnectivityIndex
//   labels     serialized LabelStore (may be empty)
//   pages      one blob per leaf: the leaf's induced subgraph + mapping
//   directory  leaf tree-node id -> (offset, size) of its page
//
// Opening a store loads only the metadata sections (tree, connectivity,
// labels, directory); leaf subgraphs are read on demand through an LRU
// page cache, which is what keeps navigation memory proportional to the
// display set rather than the graph.
//
// Concurrency: the store is logically read-only, so the whole read
// surface (LoadLeaf, LoadFullGraph, stats) is const and safe from any
// number of threads — this is what lets one store serve a pool of
// NavigationSessions. The page cache is split into `cache_shards`
// independently-locked LRU shards (leaf id modulo shard count); the
// shared FILE* keeps its own mutex for the (seek, read) pairs, and leaf
// pages decode outside every lock. With the default `cache_shards = 1`
// the cache behaves exactly like a single global LRU. The metadata
// accessors (tree/connectivity/labels) are immutable after Open and need
// no locking.

#ifndef GMINE_GTREE_STORE_H_
#define GMINE_GTREE_STORE_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "graph/labels.h"
#include "graph/subgraph.h"
#include "gtree/connectivity.h"
#include "gtree/gtree.h"
#include "util/status.h"

namespace gmine::gtree {

/// A leaf community's materialized payload: the induced subgraph over its
/// members plus the local<->global id mapping.
struct LeafPayload {
  graph::Subgraph subgraph;
};

/// Store tunables.
struct GTreeStoreOptions {
  /// Leaf pages kept in memory across all shards; 0 means unbounded.
  size_t cache_pages = 64;
  /// Independently-locked page-cache shards. 1 (the default) is a single
  /// global LRU with byte-exact legacy eviction order; 0 means auto
  /// (min(16, MaxParallelism())). Concurrent-session hosts should use
  /// auto so navigators do not serialize on one cache mutex.
  size_t cache_shards = 1;
};

/// Identifies a reader (e.g. one NavigationSession) for the
/// cross-session cache accounting. 0 is the anonymous reader.
using ReaderTag = uint64_t;

/// IO statistics (reported by bench_scale and `gmine serve`).
struct GTreeStoreStats {
  uint64_t leaf_loads = 0;    // pages read from disk
  uint64_t cache_hits = 0;    // leaf requests served from cache
  uint64_t shared_hits = 0;   // hits on pages first loaded by a
                              // *different* reader (cross-session reuse)
  uint64_t bytes_read = 0;    // payload bytes read from disk
  uint64_t evictions = 0;     // pages evicted from the LRU
};

/// Read-only handle to a G-Tree file.
class GTreeStore {
 public:
  ~GTreeStore();
  GTreeStore(const GTreeStore&) = delete;
  GTreeStore& operator=(const GTreeStore&) = delete;

  /// Builds every leaf payload from `g` and writes the complete store to
  /// `path` (truncating). The full graph is embedded as its own section
  /// so one file carries everything ("stored in a single file"); it is
  /// only read back by LoadFullGraph().
  static Status Create(const std::string& path, const graph::Graph& g,
                       const GTree& tree, const ConnectivityIndex& conn,
                       const graph::LabelStore& labels);

  /// Opens a store file; loads metadata, leaves payloads on disk.
  static gmine::Result<std::unique_ptr<GTreeStore>> Open(
      const std::string& path, const GTreeStoreOptions& options = {});

  /// The community hierarchy (fully resident).
  const GTree& tree() const { return tree_; }
  /// Aggregated connectivity edges (fully resident).
  const ConnectivityIndex& connectivity() const { return conn_; }
  /// Node labels (fully resident; may be empty).
  const graph::LabelStore& labels() const { return labels_; }

  /// Issues a fresh reader identity for the shared-hit accounting.
  ReaderTag NewReaderTag() const { return next_reader_tag_.fetch_add(1); }

  /// Loads the payload of leaf community `leaf` (cache-aware). The
  /// returned pointer stays valid while referenced, independent of
  /// eviction. Safe to call from multiple threads. `reader` attributes
  /// the access for the cross-session `shared_hits` statistic.
  gmine::Result<std::shared_ptr<const LeafPayload>> LoadLeaf(
      TreeNodeId leaf, ReaderTag reader = 0) const;

  /// True when `leaf` is currently cached (no IO needed).
  bool IsCached(TreeNodeId leaf) const;

  /// Snapshot of the cumulative IO statistics, aggregated across every
  /// cache shard (and therefore across every concurrent session).
  GTreeStoreStats stats() const;

  /// Drops all cached pages (for IO benchmarks).
  void ClearCache();

  /// Reads the embedded full graph (global operations like connection
  /// subgraph extraction need it). Not cached: the caller owns the copy.
  /// Safe to call concurrently with LoadLeaf.
  gmine::Result<graph::Graph> LoadFullGraph() const;

  /// Total size of the store file in bytes.
  uint64_t file_size() const { return file_size_; }

 private:
  GTreeStore() = default;

  struct PageLocation {
    uint64_t offset = 0;
    uint64_t size = 0;
  };

  /// One independently-locked slice of the page cache. A leaf lives in
  /// shard `leaf % shards_.size()`; each shard runs its own LRU over
  /// `capacity` pages.
  struct CacheShard {
    struct Entry {
      std::shared_ptr<const LeafPayload> payload;
      ReaderTag loader = 0;  // reader that paid the disk read
    };
    std::mutex mu;
    // LRU: front = most recent.
    std::list<std::pair<TreeNodeId, Entry>> lru;
    std::unordered_map<TreeNodeId, decltype(lru)::iterator> map;
    size_t capacity = 0;  // 0 = unbounded
    GTreeStoreStats stats;
  };

  CacheShard& ShardFor(TreeNodeId leaf) const {
    return shards_[leaf % shards_.size()];
  }

  /// Reads `loc` from the backing file under file_mu_.
  Status ReadAt(const PageLocation& loc, std::string* out) const;

  std::FILE* file_ = nullptr;
  uint64_t file_size_ = 0;
  GTree tree_;
  ConnectivityIndex conn_;
  graph::LabelStore labels_;
  GTreeStoreOptions options_;

  std::unordered_map<TreeNodeId, PageLocation> directory_;
  PageLocation graph_section_;

  // Guards the (seek, read) pairs on the shared file_ handle; every
  // other member above is immutable after Open.
  mutable std::mutex file_mu_;
  // Bytes read for full-graph loads (no cache shard involved); guarded
  // by file_mu_.
  mutable uint64_t graph_bytes_read_ = 0;
  mutable std::vector<CacheShard> shards_;
  mutable std::atomic<ReaderTag> next_reader_tag_{1};
};

}  // namespace gmine::gtree

#endif  // GMINE_GTREE_STORE_H_
