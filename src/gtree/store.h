// Single-file persistent G-Tree store (§III-A): "The entire structure is
// stored in a single file and the nodes are transferred to main memory
// only when necessary."
//
// File layout (all little-endian, see store.cc):
//
//   header     magic, version, section table, counts, checksum
//   tree       full topology (parents, children, names, leaf members)
//   conn       serialized ConnectivityIndex
//   labels     serialized LabelStore (may be empty)
//   pages      one blob per leaf: the leaf's induced subgraph + mapping
//   directory  leaf tree-node id -> (offset, size) of its page
//
// Opening a store loads only the metadata sections (tree, connectivity,
// labels, directory); leaf subgraphs are read on demand through an LRU
// page cache, which is what keeps navigation memory proportional to the
// display set rather than the graph. The page cache, the file handle and
// the IO statistics are guarded by one mutex, so concurrent sessions may
// call LoadLeaf/LoadFullGraph from multiple threads; the metadata
// accessors (tree/connectivity/labels) are immutable after Open and need
// no locking.

#ifndef GMINE_GTREE_STORE_H_
#define GMINE_GTREE_STORE_H_

#include <cstdint>
#include <cstdio>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "graph/graph.h"
#include "graph/labels.h"
#include "graph/subgraph.h"
#include "gtree/connectivity.h"
#include "gtree/gtree.h"
#include "util/status.h"

namespace gmine::gtree {

/// A leaf community's materialized payload: the induced subgraph over its
/// members plus the local<->global id mapping.
struct LeafPayload {
  graph::Subgraph subgraph;
};

/// Store tunables.
struct GTreeStoreOptions {
  /// Leaf pages kept in memory; 0 means unbounded.
  size_t cache_pages = 64;
};

/// IO statistics (reported by bench_scale).
struct GTreeStoreStats {
  uint64_t leaf_loads = 0;    // pages read from disk
  uint64_t cache_hits = 0;    // leaf requests served from cache
  uint64_t bytes_read = 0;    // payload bytes read from disk
  uint64_t evictions = 0;     // pages evicted from the LRU
};

/// Read-only handle to a G-Tree file.
class GTreeStore {
 public:
  ~GTreeStore();
  GTreeStore(const GTreeStore&) = delete;
  GTreeStore& operator=(const GTreeStore&) = delete;

  /// Builds every leaf payload from `g` and writes the complete store to
  /// `path` (truncating). The full graph is embedded as its own section
  /// so one file carries everything ("stored in a single file"); it is
  /// only read back by LoadFullGraph().
  static Status Create(const std::string& path, const graph::Graph& g,
                       const GTree& tree, const ConnectivityIndex& conn,
                       const graph::LabelStore& labels);

  /// Opens a store file; loads metadata, leaves payloads on disk.
  static gmine::Result<std::unique_ptr<GTreeStore>> Open(
      const std::string& path, const GTreeStoreOptions& options = {});

  /// The community hierarchy (fully resident).
  const GTree& tree() const { return tree_; }
  /// Aggregated connectivity edges (fully resident).
  const ConnectivityIndex& connectivity() const { return conn_; }
  /// Node labels (fully resident; may be empty).
  const graph::LabelStore& labels() const { return labels_; }

  /// Loads the payload of leaf community `leaf` (cache-aware). The
  /// returned pointer stays valid while referenced, independent of
  /// eviction. Safe to call from multiple threads.
  gmine::Result<std::shared_ptr<const LeafPayload>> LoadLeaf(TreeNodeId leaf);

  /// True when `leaf` is currently cached (no IO needed).
  bool IsCached(TreeNodeId leaf) const;

  /// Snapshot of the cumulative IO statistics.
  GTreeStoreStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  /// Drops all cached pages (for IO benchmarks).
  void ClearCache();

  /// Reads the embedded full graph (global operations like connection
  /// subgraph extraction need it). Not cached: the caller owns the copy.
  /// Safe to call concurrently with LoadLeaf.
  gmine::Result<graph::Graph> LoadFullGraph();

  /// Total size of the store file in bytes.
  uint64_t file_size() const { return file_size_; }

 private:
  GTreeStore() = default;

  std::FILE* file_ = nullptr;
  uint64_t file_size_ = 0;
  GTree tree_;
  ConnectivityIndex conn_;
  graph::LabelStore labels_;
  GTreeStoreOptions options_;
  GTreeStoreStats stats_;

  struct PageLocation {
    uint64_t offset = 0;
    uint64_t size = 0;
  };
  std::unordered_map<TreeNodeId, PageLocation> directory_;
  PageLocation graph_section_;

  // Guards the page cache, the (seek, read) pairs on file_ and stats_;
  // everything above is immutable after Open.
  mutable std::mutex mu_;
  // LRU cache: front = most recent.
  std::list<std::pair<TreeNodeId, std::shared_ptr<const LeafPayload>>> lru_;
  std::unordered_map<TreeNodeId, decltype(lru_)::iterator> cache_;
};

}  // namespace gmine::gtree

#endif  // GMINE_GTREE_STORE_H_
