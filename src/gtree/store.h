// Single-file persistent G-Tree store (§III-A): "The entire structure is
// stored in a single file and the nodes are transferred to main memory
// only when necessary."
//
// File layout (all little-endian, see store.cc):
//
//   header     magic, version, section table, counts, checksum
//   tree       full topology (parents, children, names, leaf members)
//   conn       serialized ConnectivityIndex
//   labels     serialized LabelStore (may be empty)
//   pages      one blob per leaf: the leaf's induced subgraph + mapping
//   directory  leaf tree-node id -> (absolute offset, size) of its page
//   journal    GraphEdits applied since the graph section was written
//
// Incremental edits (docs/EDITS.md): ApplyUpdate publishes a repaired
// hierarchy by appending only the dirty leaf pages plus fresh metadata
// sections at the end of the file and rewriting the fixed-size header
// last, so clean pages keep their bytes and offsets and a *process*
// crash before the header write leaves the previous state intact
// (power-loss ordering additionally needs the opt-in
// `durable_appends` fdatasync barriers). The embedded graph section
// stays the *base* graph; the journal section records the edits since,
// replayed by LoadFullGraph. Once the journal exceeds
// `journal_compact_ops` (or an edit remaps node ids), the store
// compacts by rewriting itself from scratch through Create + rename.
//
// Opening a store loads only the metadata sections (tree, connectivity,
// labels, directory); leaf subgraphs are read on demand and checked out
// of the process-wide buffer pool (storage::BufferPool, docs/STORAGE.md),
// which is what keeps navigation memory proportional to the display set
// rather than the graph — and, since the pool's byte budget spans every
// open store, bounded for the whole process, not per store.
//
// Concurrency: the store is logically read-only, so the whole read
// surface (LoadLeaf, LoadFullGraph, stats) is const and safe from any
// number of threads — this is what lets one store serve a pool of
// NavigationSessions. Frame lookup/insert latching lives in the buffer
// pool (sharded by (store id, leaf id) hash); the shared FILE* keeps its
// own mutex for the (seek, read) pairs, and leaf pages decode outside
// every latch. The metadata accessors (tree/connectivity/labels) are
// immutable after Open and need no locking.
//
// There is exactly one cache knob left: the pool's byte budget
// (BufferPoolOptions::budget_bytes, CLI --mem-budget-mb). The former
// per-store `cache_pages`/`cache_shards` page-count LRU knobs are gone —
// eviction is the pool's clock sweep over bytes, shared fairly across
// stores, and a store that wants isolation passes its own pool via
// GTreeStoreOptions::buffer_pool (tests and benchmarks do).

#ifndef GMINE_GTREE_STORE_H_
#define GMINE_GTREE_STORE_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_edit.h"
#include "graph/labels.h"
#include "graph/subgraph.h"
#include "gtree/connectivity.h"
#include "gtree/gtree.h"
#include "storage/buffer_pool.h"
#include "storage/page_scan.h"
#include "util/status.h"

namespace gmine::gtree {

/// A leaf community's materialized payload: the induced subgraph over its
/// members plus the local<->global id mapping — and, for stores written
/// by the streaming out-of-core builder (gtree/stream_build.h), the
/// members' *boundary* arcs (arcs to nodes outside the leaf, global
/// destination ids). With boundary arcs present, a node's complete
/// global adjacency lives in exactly its own leaf page, which is what
/// makes page-at-a-time kernels (mining/pagescan_kernels.h) globally
/// correct without a resident graph. Legacy stores carry no boundary
/// section; their bytes are unchanged.
struct LeafPayload {
  graph::Subgraph subgraph;
  /// CSR offsets into boundary_arcs per local member id; empty when the
  /// page carries no boundary section, size members+1 otherwise.
  std::vector<uint32_t> boundary_offsets;
  /// Boundary arcs: destinations are *global* node ids, ascending per
  /// member.
  std::vector<graph::Neighbor> boundary_arcs;

  bool has_boundary() const { return !boundary_offsets.empty(); }
};

/// Store tunables.
struct GTreeStoreOptions {
  /// Buffer pool this store checks its leaf pages out of; nullptr (the
  /// default) is the process-wide pool, storage::BufferPool::Global().
  /// Budget, eviction and pinning all live in the pool
  /// (docs/STORAGE.md).
  storage::BufferPool* buffer_pool = nullptr;
  /// ApplyUpdate compacts (full rewrite instead of append) once the edit
  /// journal holds at least this many entries. 0 compacts on every
  /// update (journal disabled).
  size_t journal_compact_ops = 64;
  /// Size-ratio defragmentation trigger: ApplyUpdate also compacts when
  /// the file's dead bytes (superseded metadata sections and old copies
  /// of rewritten pages left behind by header-last appends) exceed this
  /// multiple of the live bytes — so a burst of small edits cannot let
  /// the file balloon while the journal is still short. 0 disables the
  /// size trigger (journal-full and id-remap still compact).
  double defrag_wasted_ratio = 2.0;
  /// Issue fdatasync barriers inside ApplyUpdate (between the section
  /// append and the header rewrite, and again after it) so the
  /// header-last ordering also holds across power loss, not just
  /// process crashes. Off by default: barriers cost milliseconds per
  /// edit and interactive editing favors latency.
  bool durable_appends = false;
};

/// The shape a store's hierarchy was built with, recorded in the header
/// so edit repairs (gtree/edit_repair.h) re-partition regions with the
/// original parameters instead of whatever the opener guessed.
/// `levels == 0` means unknown (the writer supplied no hints).
struct GTreeBuildHints {
  uint32_t levels = 0;
  uint32_t fanout = 0;
  /// The original option value verbatim — 0 means the builder derived
  /// its default (2 * fanout), which the repair re-derives identically.
  uint32_t min_partition_size = 0;
  /// partition::PartitionOptions::seed the build used.
  uint64_t partition_seed = 0;
};

/// Identifies a reader (e.g. one NavigationSession) for the
/// cross-session cache accounting. 0 is the anonymous reader.
using ReaderTag = uint64_t;

/// IO statistics (reported by bench_scale, `gmine serve`, `gmine stats`
/// and the wire `stats` op). Counters come from this store's ledger in
/// the buffer pool; the residency fields are a point-in-time snapshot.
struct GTreeStoreStats {
  uint64_t leaf_loads = 0;    // pages read from disk
  uint64_t cache_hits = 0;    // leaf requests served from the pool
  uint64_t shared_hits = 0;   // hits on pages first loaded by a
                              // *different* reader (cross-session reuse)
  uint64_t bytes_read = 0;    // payload bytes read from disk
  uint64_t evictions = 0;     // this store's frames evicted by the clock
  uint64_t resident_bytes = 0;  // this store's bytes resident in the pool
  uint64_t pinned_bytes = 0;    // resident bytes currently checked out
};

/// One repaired state to publish through GTreeStore::ApplyUpdate. All
/// pointers must outlive the call; `tree` (and `replacement_conn` when
/// set) are consumed by move.
struct GTreeStoreUpdate {
  /// The post-edit hierarchy (required; moved into the store).
  GTree* tree = nullptr;
  /// Exact connectivity-row deltas to patch into the resident index
  /// (topology unchanged)...
  const std::vector<ConnectivityDelta>* conn_deltas = nullptr;
  /// ...or a freshly built replacement index (topology changed; moved
  /// into the store). Exactly one of the two may be set; neither means
  /// connectivity is unchanged.
  ConnectivityIndex* replacement_conn = nullptr;
  /// Post-edit labels; nullptr = unchanged.
  const graph::LabelStore* labels = nullptr;
  /// The post-edit full graph (required; used by the compaction path and
  /// for sanity counts — never retained).
  const graph::Graph* graph = nullptr;
  /// Pages to (re)serialize, keyed by new-tree leaf ids.
  std::vector<std::pair<TreeNodeId, graph::Subgraph>> dirty_pages;
  /// Old tree id -> new tree id for surviving clean pages; nullptr =
  /// identity (topology unchanged).
  const std::vector<TreeNodeId>* old_to_new = nullptr;
  /// The edit itself, appended to the journal on the append path;
  /// nullptr forces a compaction (e.g. node ids remapped).
  const graph::GraphEdit* journal_edit = nullptr;
  /// Highest write-ahead-log LSN this update makes durable
  /// (storage/wal.h); recorded in the header so recovery replays only
  /// the log tail past it. 0 keeps the store's current watermark.
  uint64_t applied_lsn = 0;
};

/// What an ApplyUpdate did (reported by `gmine edit`).
struct GTreeStoreUpdateStats {
  bool compacted = false;        // rewrite path instead of append
  bool defragmented = false;     // compaction forced by the size-ratio
                                 // trigger (defrag_wasted_ratio)
  uint64_t appended_bytes = 0;   // bytes added to the file (append path)
  uint32_t pages_written = 0;    // dirty pages serialized (append path)
  uint32_t pages_invalidated = 0;  // cache entries dropped
  size_t journal_ops = 0;        // journal length after the update
};

/// Read-only handle to a G-Tree file.
class GTreeStore {
 public:
  ~GTreeStore();
  GTreeStore(const GTreeStore&) = delete;
  GTreeStore& operator=(const GTreeStore&) = delete;

  /// Builds every leaf payload from `g` and writes the complete store to
  /// `path` (truncating). The full graph is embedded as its own section
  /// so one file carries everything ("stored in a single file"); it is
  /// only read back by LoadFullGraph(). `hints`, when given, records the
  /// build shape in the header for later edit repairs.
  /// `applied_lsn` is the WAL watermark to record (0 = no WAL).
  static Status Create(const std::string& path, const graph::Graph& g,
                       const GTree& tree, const ConnectivityIndex& conn,
                       const graph::LabelStore& labels,
                       const GTreeBuildHints* hints = nullptr,
                       uint64_t applied_lsn = 0);

  /// Opens a store file; loads metadata, leaves payloads on disk.
  static gmine::Result<std::unique_ptr<GTreeStore>> Open(
      const std::string& path, const GTreeStoreOptions& options = {});

  /// The community hierarchy (fully resident).
  const GTree& tree() const { return tree_; }
  /// Aggregated connectivity edges (fully resident).
  const ConnectivityIndex& connectivity() const { return conn_; }
  /// Node labels (fully resident; may be empty).
  const graph::LabelStore& labels() const { return labels_; }

  /// Issues a fresh reader identity for the shared-hit accounting.
  ReaderTag NewReaderTag() const { return next_reader_tag_.fetch_add(1); }

  /// Loads the payload of leaf community `leaf`, checking it out of
  /// the buffer pool. The returned pointer is the frame's pin: the
  /// frame cannot be evicted while it is held, and it stays valid
  /// independent of residency. Safe to call from multiple threads.
  /// `reader` attributes the access for the cross-session
  /// `shared_hits` statistic. Returns Aborted (backpressure) when the
  /// pool's byte budget is exhausted by pinned frames — release pages
  /// or raise the budget and retry
  /// (storage::BufferPool::IsBackpressure).
  gmine::Result<std::shared_ptr<const LeafPayload>> LoadLeaf(
      TreeNodeId leaf, ReaderTag reader = 0) const;

  /// True when `leaf` is currently resident in the pool (no IO needed).
  bool IsCached(TreeNodeId leaf) const;

  /// What one ScanLeafPages pass touched (the query executor's
  /// pushdown proof: pruned pages are never loaded).
  struct LeafScanStats {
    uint64_t pages_total = 0;    // leaf pages in the store
    uint64_t pages_scanned = 0;  // pages loaded and visited
    uint64_t pages_pruned = 0;   // pages skipped by the prune callback
  };

  /// Streams every leaf page through `visit`, in ascending tree-node id
  /// order, checking each page out of the buffer pool only for the
  /// duration of its visit. `prune`, when set, sees the leaf's resident
  /// metadata (TreeNode: name, members) *before* any IO and returns
  /// true to skip the page entirely — the predicate-pushdown hook
  /// (docs/QUERY.md). A non-OK status from `visit` aborts the scan.
  /// Safe from multiple threads, like LoadLeaf.
  Status ScanLeafPages(
      const std::function<bool(const TreeNode&)>& prune,
      const std::function<Status(const TreeNode&, const LeafPayload&)>&
          visit,
      LeafScanStats* stats = nullptr, ReaderTag reader = 0) const;

  /// Snapshot of the cumulative IO statistics — this store's ledger in
  /// the buffer pool (shared across every concurrent session) plus its
  /// full-graph read bytes.
  GTreeStoreStats stats() const;

  /// Drops this store's resident pages from the pool (for IO
  /// benchmarks). Other stores' frames are untouched.
  void ClearCache();

  /// Reads the embedded full graph and replays the edit journal on top
  /// (global operations like connection subgraph extraction need it).
  /// Not cached: the caller owns the copy. Safe to call concurrently
  /// with LoadLeaf.
  gmine::Result<graph::Graph> LoadFullGraph() const;

  /// The full graph by whichever route this store supports: the
  /// embedded graph section (legacy stores, journal replayed) or a
  /// reconstruction from the boundary-carrying leaf pages (streamed
  /// stores, which have no graph section). Callers that only need *a*
  /// resident graph — CSG extraction, non-leaf metrics — should use
  /// this instead of raw LoadFullGraph.
  gmine::Result<graph::Graph> MaterializeFullGraph() const;

  /// Opens a pull-based scan over this store's leaf pages in ascending
  /// tree-node id order (docs/OUTOFCORE.md). Each Next() pins one page
  /// in the buffer pool for the duration of the call; the scan's
  /// complete_adjacency() reports whether pages carry boundary arcs
  /// (streamed stores) and its checkpoint tokens are bound to this
  /// store's current state. The scan must not outlive the store, and
  /// is invalidated by ApplyUpdate.
  std::unique_ptr<storage::PageScan> NewPageScan(ReaderTag reader = 0) const;

  /// True for stores written by the streaming builder: pages carry
  /// boundary arcs, there is no embedded graph section, and the store
  /// is read-only (ApplyUpdate answers NotSupported — rebuild to edit).
  bool streamed() const { return graph_section_.size == 0; }

  /// Nodes in the stored graph (leaf member sets partition
  /// [0, num_graph_nodes())).
  uint32_t num_graph_nodes() const { return num_graph_nodes_; }

  /// Publishes an incrementally repaired state (gtree/edit_repair.h):
  /// appends dirty pages + fresh metadata sections and rewrites the
  /// header, invalidating only the touched cache pages — or compacts via
  /// a full rewrite when the journal is due or ids remapped. NOT
  /// internally synchronized against the read surface: the caller must
  /// exclude every concurrent reader (core::SessionManager::UpdateEpoch
  /// provides exactly that). On error the store is unchanged in memory
  /// and on disk (the old header still describes the old sections).
  Status ApplyUpdate(GTreeStoreUpdate& update,
                     GTreeStoreUpdateStats* stats = nullptr);

  /// Edits currently in the journal (replayed by LoadFullGraph).
  size_t journal_ops() const { return journal_.size(); }

  /// The build shape recorded at Create time (levels == 0 if none).
  const GTreeBuildHints& build_hints() const { return hints_; }

  /// Highest WAL LSN durably folded into this store (0 = none): every
  /// edit with an LSN at or below this is part of the store's
  /// sections/journal, everything above must come from WAL replay.
  uint64_t applied_lsn() const { return applied_lsn_; }

  /// Total size of the store file in bytes.
  uint64_t file_size() const { return file_size_; }

  /// Bytes the current header actually references: header + metadata
  /// sections + every live page. The remainder of the file is dead
  /// weight left by append-mode updates.
  uint64_t live_bytes() const { return live_bytes_; }

  /// file_size() - live_bytes(): the fragmentation ApplyUpdate's
  /// size-ratio trigger (GTreeStoreOptions::defrag_wasted_ratio)
  /// watches.
  uint64_t wasted_bytes() const {
    return file_size_ > live_bytes_ ? file_size_ - live_bytes_ : 0;
  }

  /// The buffer pool this store's pages live in (global stats,
  /// budget).
  storage::BufferPool& buffer_pool() const { return *pool_; }

 private:
  GTreeStore() = default;

  struct PageLocation {
    uint64_t offset = 0;
    uint64_t size = 0;
  };

  /// (Re)opens `path` and loads every metadata section into this store,
  /// replacing the previous state. Used by Open and the compaction path.
  Status LoadMetadata(const std::string& path);

  /// Reads `loc` from the backing file under file_mu_.
  Status ReadAt(const PageLocation& loc, std::string* out) const;

  friend class GTreeLeafPageScan;

  std::FILE* file_ = nullptr;
  uint64_t file_size_ = 0;
  /// Bytes referenced by the current header (see live_bytes()).
  uint64_t live_bytes_ = 0;
  std::string path_;
  GTree tree_;
  ConnectivityIndex conn_;
  graph::LabelStore labels_;
  GTreeStoreOptions options_;
  GTreeBuildHints hints_;
  uint32_t num_graph_nodes_ = 0;
  uint64_t applied_lsn_ = 0;
  /// Edits since the graph section was written (v2 journal).
  std::vector<graph::GraphEdit> journal_;

  std::unordered_map<TreeNodeId, PageLocation> directory_;
  PageLocation graph_section_;
  PageLocation labels_section_;

  // Guards the (seek, read) pairs on the shared file_ handle; every
  // other member above is immutable after Open.
  mutable std::mutex file_mu_;
  // Bytes read for full-graph loads (bypass the page pool); guarded by
  // file_mu_.
  mutable uint64_t graph_bytes_read_ = 0;
  // The page pool this store's frames live in, and this store's
  // identity within it. Both immutable after Open.
  storage::BufferPool* pool_ = nullptr;
  storage::StoreId pool_id_ = 0;
  mutable std::atomic<ReaderTag> next_reader_tag_{1};
};

/// Streaming store writer — the out-of-core counterpart of
/// GTreeStore::Create (docs/OUTOFCORE.md). Create materializes every
/// page (and the full graph) in memory before writing; the writer
/// instead streams leaf pages to disk one at a time as the build's
/// merge pass produces them, then seals the file with the metadata
/// sections and the header. The resulting store has no embedded graph
/// section (GTreeStore::streamed()); peak writer memory is one page.
///
/// Usage: Begin(path) -> AddLeafPage(...) per leaf, any order ->
/// Finish(tree, conn, labels, ...). Like Create, the header is written
/// last, so a crash mid-build leaves an unopenable file, never a
/// half-valid store.
class GTreeStoreWriter {
 public:
  /// Opens `path` for writing (truncating) and reserves the header.
  static gmine::Result<std::unique_ptr<GTreeStoreWriter>> Begin(
      const std::string& path);

  ~GTreeStoreWriter();
  GTreeStoreWriter(const GTreeStoreWriter&) = delete;
  GTreeStoreWriter& operator=(const GTreeStoreWriter&) = delete;

  /// Appends one leaf page: the leaf's induced subgraph plus its
  /// members' boundary arcs (global destination ids, CSR-indexed by
  /// local member id — see LeafPayload). `leaf` is the tree-node id the
  /// page will be filed under in the directory.
  Status AddLeafPage(TreeNodeId leaf, const graph::Subgraph& sub,
                     const std::vector<uint32_t>& boundary_offsets,
                     const std::vector<graph::Neighbor>& boundary_arcs);

  /// Appends the metadata sections, writes the header, and closes the
  /// file. Every leaf of `tree` must have received a page.
  Status Finish(const GTree& tree, const ConnectivityIndex& conn,
                const graph::LabelStore& labels, uint32_t num_graph_nodes,
                const GTreeBuildHints* hints = nullptr,
                uint64_t applied_lsn = 0);

  /// Pages written so far.
  uint32_t num_pages() const { return num_pages_; }
  /// Bytes written so far (pages only until Finish).
  uint64_t bytes_written() const { return offset_; }

 private:
  GTreeStoreWriter() = default;
  Status Append(std::string_view blob);

  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t offset_ = 0;      // next write position (== bytes so far)
  std::string directory_;    // accumulated (leaf, offset, size) entries
  uint32_t num_pages_ = 0;
  bool finished_ = false;
};

}  // namespace gmine::gtree

#endif  // GMINE_GTREE_STORE_H_
