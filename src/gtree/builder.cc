#include "gtree/builder.h"

#include <algorithm>

#include "graph/subgraph.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace gmine::gtree {

using graph::Graph;
using graph::NodeId;
using graph::Subgraph;

namespace {

struct BuildContext {
  const Graph* g;
  const GTreeBuildOptions* options;
  uint32_t min_size;
  GTreeBuildStats* stats;
  std::vector<TreeNode>* nodes;
};

// Recursively builds the subtree for `members`, writing into
// ctx->nodes[id]. Pre-order id assignment: the caller has already pushed
// the node; this fills members/children.
Status BuildSubtree(BuildContext* ctx, TreeNodeId id,
                    std::vector<NodeId> members, uint32_t depth) {
  std::vector<TreeNode>& nodes = *ctx->nodes;
  nodes[id].subtree_size = members.size();

  const bool at_bottom = depth >= ctx->options->levels;
  const bool too_small = members.size() <= ctx->min_size;
  if (at_bottom || too_small || members.size() < 2) {
    nodes[id].members = std::move(members);
    return Status::OK();
  }

  auto sub = graph::InducedSubgraph(*ctx->g, members);
  if (!sub.ok()) return sub.status();
  const Subgraph& s = sub.value();

  partition::PartitionOptions popts = ctx->options->partition;
  popts.k = ctx->options->fanout;
  // Derive a distinct seed per community so sibling partitions differ.
  popts.seed = ctx->options->partition.seed ^
               (static_cast<uint64_t>(id) * 0x9e3779b97f4a7c15ULL + depth);
  StopWatch watch;
  auto part = partition::PartitionGraph(s.graph, popts);
  if (!part.ok()) return part.status();
  if (ctx->stats != nullptr) {
    ctx->stats->partition_calls++;
    ctx->stats->total_edge_cut += part.value().edge_cut;
    ctx->stats->partition_micros += watch.ElapsedMicros();
  }

  // Group members by part, dropping empty parts.
  std::vector<std::vector<NodeId>> groups(popts.k);
  for (uint32_t local = 0; local < s.graph.num_nodes(); ++local) {
    groups[part.value().assignment[local]].push_back(s.ParentId(local));
  }
  uint32_t non_empty = 0;
  for (const auto& grp : groups) non_empty += !grp.empty();
  if (non_empty <= 1) {
    // Partitioner could not split (e.g. tiny or degenerate community):
    // make this a leaf rather than recursing forever.
    nodes[id].members = std::move(members);
    return Status::OK();
  }

  for (auto& grp : groups) {
    if (grp.empty()) continue;
    TreeNodeId child = static_cast<TreeNodeId>(nodes.size());
    TreeNode tn;
    tn.id = child;
    tn.parent = id;
    tn.depth = depth + 1;
    tn.name = StrFormat("s%03u", child);
    nodes.push_back(std::move(tn));
    nodes[id].children.push_back(child);
    GMINE_RETURN_IF_ERROR(BuildSubtree(ctx, child, std::move(grp), depth + 1));
  }
  return Status::OK();
}

}  // namespace

gmine::Result<GTree> BuildGTree(const Graph& g,
                                const GTreeBuildOptions& options,
                                GTreeBuildStats* stats) {
  if (g.directed()) {
    return Status::InvalidArgument("BuildGTree: directed graphs unsupported");
  }
  if (options.levels == 0 || options.fanout < 2) {
    return Status::InvalidArgument(
        "BuildGTree: need levels >= 1 and fanout >= 2");
  }
  if (g.num_nodes() == 0) {
    return Status::InvalidArgument("BuildGTree: empty graph");
  }
  uint32_t min_size = options.min_partition_size > 0
                          ? options.min_partition_size
                          : 2 * options.fanout;

  std::vector<TreeNode> nodes;
  TreeNode root;
  root.id = 0;
  root.parent = kInvalidTreeNode;
  root.depth = 0;
  root.name = "s000";
  nodes.push_back(std::move(root));

  std::vector<NodeId> all(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;

  BuildContext ctx{&g, &options, min_size, stats, &nodes};
  GMINE_RETURN_IF_ERROR(BuildSubtree(&ctx, 0, std::move(all), 0));
  return GTree::FromNodes(std::move(nodes), g.num_nodes());
}

gmine::Result<GTree> BuildGTreeFromAssignment(
    uint32_t num_graph_nodes, const std::vector<uint32_t>& leaf_assignment,
    uint32_t num_leaves, uint32_t fanout) {
  if (fanout < 2) {
    return Status::InvalidArgument("BuildGTreeFromAssignment: fanout >= 2");
  }
  if (leaf_assignment.size() != num_graph_nodes) {
    return Status::InvalidArgument(
        "BuildGTreeFromAssignment: assignment size mismatch");
  }
  if (num_leaves == 0) {
    return Status::InvalidArgument("BuildGTreeFromAssignment: no leaves");
  }
  for (uint32_t a : leaf_assignment) {
    if (a >= num_leaves) {
      return Status::InvalidArgument(
          "BuildGTreeFromAssignment: assignment out of range");
    }
  }

  // Temporary bottom-up structure: level 0 = leaves; then group every
  // `fanout` consecutive groups into a parent until one remains.
  struct TempNode {
    std::vector<int> children;  // temp indices
    int leaf_index = -1;        // >= 0 for leaves
  };
  std::vector<TempNode> temp;
  std::vector<int> level;
  for (uint32_t leaf = 0; leaf < num_leaves; ++leaf) {
    temp.push_back(TempNode{{}, static_cast<int>(leaf)});
    level.push_back(static_cast<int>(temp.size()) - 1);
  }
  while (level.size() > 1) {
    std::vector<int> next;
    for (size_t i = 0; i < level.size(); i += fanout) {
      TempNode parent;
      for (size_t j = i; j < std::min(level.size(), i + fanout); ++j) {
        parent.children.push_back(level[j]);
      }
      temp.push_back(std::move(parent));
      next.push_back(static_cast<int>(temp.size()) - 1);
    }
    level = std::move(next);
  }
  int temp_root = level[0];

  // Pre-order renumber into final TreeNodes.
  std::vector<std::vector<NodeId>> leaf_members(num_leaves);
  for (NodeId v = 0; v < num_graph_nodes; ++v) {
    leaf_members[leaf_assignment[v]].push_back(v);
  }
  std::vector<TreeNode> nodes;
  struct Frame {
    int temp_id;
    TreeNodeId parent;
    uint32_t depth;
  };
  std::vector<Frame> stack = {{temp_root, kInvalidTreeNode, 0}};
  // Use explicit stack but preserve child order: push children reversed.
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    TreeNodeId id = static_cast<TreeNodeId>(nodes.size());
    TreeNode tn;
    tn.id = id;
    tn.parent = f.parent;
    tn.depth = f.depth;
    tn.name = StrFormat("s%03u", id);
    const TempNode& t = temp[f.temp_id];
    if (t.leaf_index >= 0) {
      tn.members = leaf_members[t.leaf_index];
      tn.subtree_size = tn.members.size();
    }
    nodes.push_back(std::move(tn));
    if (f.parent != kInvalidTreeNode) {
      nodes[f.parent].children.push_back(id);
    }
    for (auto it = t.children.rbegin(); it != t.children.rend(); ++it) {
      stack.push_back({*it, id, f.depth + 1});
    }
  }
  // Children were appended in pre-order traversal order; subtree sizes
  // accumulate bottom-up (ids are pre-order so children have larger ids).
  for (size_t i = nodes.size(); i > 0; --i) {
    TreeNode& tn = nodes[i - 1];
    if (!tn.IsLeaf()) {
      tn.subtree_size = 0;
      for (TreeNodeId c : tn.children) tn.subtree_size += nodes[c].subtree_size;
    }
  }
  return GTree::FromNodes(std::move(nodes), num_graph_nodes);
}

}  // namespace gmine::gtree
