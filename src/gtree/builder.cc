#include "gtree/builder.h"

#include <algorithm>

#include "graph/subgraph.h"
#include "util/parallel.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace gmine::gtree {

using graph::Graph;
using graph::NodeId;
using graph::Subgraph;

namespace {

// Lineage salt of the `ordinal`-th child of a community with salt `salt`.
// Depends only on the path from the root — never on construction order —
// so serial and sharded builds derive identical partitioner seeds, and
// the incremental edit repair (edit_repair.cc) can re-derive any
// community's seed from its path alone.
uint64_t ChildSalt(uint64_t salt, uint32_t ordinal) {
  return partition::ChildLineageSalt(salt, ordinal);
}

struct BuildConfig {
  const Graph* g;
  const GTreeBuildOptions* options;
  uint32_t min_size;
};

// A community during construction, arena-allocated; spliced into final
// pre-order TreeNode ids at the end.
struct Pending {
  std::vector<NodeId> members;
  uint32_t depth = 0;
  uint64_t salt = 0;
  /// Child indices into the same arena; empty for leaves.
  std::vector<uint32_t> children;
  /// >= 0: subtree continues at index 0 of that shard's arena.
  int shard = -1;
};

// Outcome of one partitioning step on a community.
struct SplitResult {
  Status status;
  bool leaf = true;
  /// Non-empty child member groups, in part order.
  std::vector<std::vector<NodeId>> groups;
  double edge_cut = 0.0;
  int64_t micros = 0;
  bool ran_partition = false;
};

// Splits `members` into child groups or declares a leaf, mirroring the
// paper's recursion stops: bottom level reached, community at or below
// the granularity floor, or a degenerate partition.
SplitResult SplitCommunity(const BuildConfig& cfg,
                           const std::vector<NodeId>& members,
                           uint32_t depth, uint64_t salt,
                           int partition_threads) {
  SplitResult out;
  const bool at_bottom = depth >= cfg.options->levels;
  const bool too_small = members.size() <= cfg.min_size;
  if (at_bottom || too_small || members.size() < 2) return out;

  auto sub = graph::InducedSubgraph(*cfg.g, members);
  if (!sub.ok()) {
    out.status = sub.status();
    return out;
  }
  const Subgraph& s = sub.value();

  partition::PartitionOptions popts = cfg.options->partition;
  popts.k = cfg.options->fanout;
  // Derive a distinct seed per community so sibling partitions differ.
  popts.seed =
      partition::LineageSeed(cfg.options->partition.seed, salt, depth);
  popts.threads = partition_threads;
  StopWatch watch;
  auto part = partition::PartitionGraph(s.graph, popts);
  if (!part.ok()) {
    out.status = part.status();
    return out;
  }
  out.ran_partition = true;
  out.edge_cut = part.value().edge_cut;
  out.micros = watch.ElapsedMicros();

  // Group members by part, dropping empty parts.
  std::vector<std::vector<NodeId>> groups(popts.k);
  for (uint32_t local = 0; local < s.graph.num_nodes(); ++local) {
    groups[part.value().assignment[local]].push_back(s.ParentId(local));
  }
  uint32_t non_empty = 0;
  for (const auto& grp : groups) non_empty += !grp.empty();
  if (non_empty <= 1) {
    // Partitioner could not split (e.g. tiny or degenerate community):
    // make this a leaf rather than recursing forever.
    return out;
  }
  out.leaf = false;
  out.groups.reserve(non_empty);
  for (auto& grp : groups) {
    if (!grp.empty()) out.groups.push_back(std::move(grp));
  }
  return out;
}

void AccumulateSplit(const SplitResult& split, GTreeBuildStats* stats) {
  if (stats == nullptr || !split.ran_partition) return;
  stats->partition_calls++;
  stats->total_edge_cut += split.edge_cut;
  stats->partition_micros += split.micros;
}

// Depth-first expansion of arena index `idx` (one shard's subtree).
// Children are appended in pre-order, exactly as the serial recursion
// numbers them.
Status BuildShardSubtree(const BuildConfig& cfg, std::vector<Pending>* arena,
                         uint32_t idx, int partition_threads,
                         GTreeBuildStats* stats) {
  SplitResult split =
      SplitCommunity(cfg, (*arena)[idx].members, (*arena)[idx].depth,
                     (*arena)[idx].salt, partition_threads);
  GMINE_RETURN_IF_ERROR(split.status);
  AccumulateSplit(split, stats);
  if (split.leaf) return Status::OK();
  const uint32_t child_depth = (*arena)[idx].depth + 1;
  const uint64_t salt = (*arena)[idx].salt;
  for (uint32_t i = 0; i < split.groups.size(); ++i) {
    uint32_t child = static_cast<uint32_t>(arena->size());
    Pending p;
    p.members = std::move(split.groups[i]);
    p.depth = child_depth;
    p.salt = ChildSalt(salt, i);
    arena->push_back(std::move(p));
    (*arena)[idx].children.push_back(child);
    GMINE_RETURN_IF_ERROR(
        BuildShardSubtree(cfg, arena, child, partition_threads, stats));
  }
  return Status::OK();
}

}  // namespace

gmine::Result<GTree> BuildGTree(const Graph& g,
                                const GTreeBuildOptions& options,
                                GTreeBuildStats* stats) {
  if (g.directed()) {
    return Status::InvalidArgument("BuildGTree: directed graphs unsupported");
  }
  if (options.levels == 0 || options.fanout < 2) {
    return Status::InvalidArgument(
        "BuildGTree: need levels >= 1 and fanout >= 2");
  }
  if (g.num_nodes() == 0) {
    return Status::InvalidArgument("BuildGTree: empty graph");
  }
  uint32_t min_size = options.min_partition_size > 0
                          ? options.min_partition_size
                          : 2 * options.fanout;
  BuildConfig cfg{&g, &options, min_size};
  const uint32_t shard_target =
      options.shards == 0 ? static_cast<uint32_t>(ResolveThreads(0))
                          : options.shards;
  const int threads = options.threads;

  // Phase 1 — frontier expansion: split communities breadth-first (the
  // splits of one level run in parallel) until at least `shard_target`
  // unexpanded subtrees exist or everything bottomed out.
  std::vector<Pending> top;
  {
    Pending root;
    root.members.resize(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) root.members[v] = v;
    root.salt = partition::RootLineageSalt();
    top.push_back(std::move(root));
  }
  std::vector<uint32_t> frontier = {0};
  while (!frontier.empty() && frontier.size() < shard_target) {
    std::vector<SplitResult> results(frontier.size());
    // A lone frontier community (the root) may use every thread inside
    // the partitioner; once the frontier fans out, parallelism shifts to
    // across-community and the inner partitions run serially.
    const int partition_threads = frontier.size() == 1 ? threads : 1;
    ParallelFor(0, frontier.size(), 1, threads, [&](size_t i) {
      const Pending& p = top[frontier[i]];
      results[i] =
          SplitCommunity(cfg, p.members, p.depth, p.salt, partition_threads);
    });
    std::vector<uint32_t> next;
    for (size_t i = 0; i < frontier.size(); ++i) {
      GMINE_RETURN_IF_ERROR(results[i].status);
      AccumulateSplit(results[i], stats);
      if (results[i].leaf) continue;  // terminal leaf stays in `top`
      Pending& parent = top[frontier[i]];
      const uint32_t child_depth = parent.depth + 1;
      const uint64_t salt = parent.salt;
      parent.members.clear();
      parent.members.shrink_to_fit();
      for (uint32_t j = 0; j < results[i].groups.size(); ++j) {
        uint32_t child = static_cast<uint32_t>(top.size());
        Pending p;
        p.members = std::move(results[i].groups[j]);
        p.depth = child_depth;
        p.salt = ChildSalt(salt, j);
        top.push_back(std::move(p));
        top[frontier[i]].children.push_back(child);
        next.push_back(child);
      }
    }
    frontier = std::move(next);
  }

  // Phase 2 — shard builds: every remaining frontier subtree grows
  // depth-first in its own arena, concurrently across the pool.
  std::vector<std::vector<Pending>> shard_arenas(frontier.size());
  std::vector<Status> shard_status(frontier.size());
  std::vector<GTreeBuildStats> shard_stats(frontier.size());
  const int shard_partition_threads = frontier.size() > 1 ? 1 : threads;
  ParallelFor(0, frontier.size(), 1, threads, [&](size_t i) {
    Pending& src = top[frontier[i]];
    std::vector<Pending>& arena = shard_arenas[i];
    Pending root;
    root.members = std::move(src.members);
    root.depth = src.depth;
    root.salt = src.salt;
    arena.push_back(std::move(root));
    src.shard = static_cast<int>(i);
    shard_status[i] = BuildShardSubtree(cfg, &arena, 0,
                                        shard_partition_threads,
                                        &shard_stats[i]);
  });
  for (size_t i = 0; i < frontier.size(); ++i) {
    GMINE_RETURN_IF_ERROR(shard_status[i]);
  }
  if (stats != nullptr) {
    // Fold per-shard partials in shard order so the totals are
    // deterministic for a given shard count.
    for (const GTreeBuildStats& s : shard_stats) {
      stats->partition_calls += s.partition_calls;
      stats->total_edge_cut += s.total_edge_cut;
      stats->partition_micros += s.partition_micros;
    }
    stats->shards_built = std::max<uint32_t>(
        1, static_cast<uint32_t>(frontier.size()));
  }

  // Phase 3 — splice: renumber the arenas into one pre-order TreeNode
  // vector (root first, each child's subtree contiguous).
  std::vector<TreeNode> nodes;
  struct Frame {
    std::vector<Pending>* arena;
    uint32_t idx;
    TreeNodeId parent;
  };
  std::vector<Frame> stack = {{&top, 0, kInvalidTreeNode}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    Pending* p = &(*f.arena)[f.idx];
    std::vector<Pending>* child_arena = f.arena;
    if (p->shard >= 0) {
      child_arena = &shard_arenas[p->shard];
      p = &(*child_arena)[0];
    }
    TreeNodeId id = static_cast<TreeNodeId>(nodes.size());
    TreeNode tn;
    tn.id = id;
    tn.parent = f.parent;
    tn.depth = p->depth;
    tn.name = StrFormat("s%03u", id);
    if (p->children.empty()) {
      tn.members = std::move(p->members);
      tn.subtree_size = tn.members.size();
    }
    nodes.push_back(std::move(tn));
    if (f.parent != kInvalidTreeNode) {
      nodes[f.parent].children.push_back(id);
    }
    for (auto it = p->children.rbegin(); it != p->children.rend(); ++it) {
      stack.push_back({child_arena, *it, id});
    }
  }
  // Interior subtree sizes accumulate bottom-up (pre-order ids mean
  // children always have larger ids than their parent).
  for (size_t i = nodes.size(); i > 0; --i) {
    TreeNode& tn = nodes[i - 1];
    if (!tn.IsLeaf()) {
      tn.subtree_size = 0;
      for (TreeNodeId c : tn.children) tn.subtree_size += nodes[c].subtree_size;
    }
  }
  return GTree::FromNodes(std::move(nodes), g.num_nodes());
}

gmine::Result<RegionSubtree> BuildRegionSubtree(
    const graph::Graph& g, const std::vector<NodeId>& members,
    uint32_t depth, uint64_t salt, const GTreeBuildOptions& options,
    GTreeBuildStats* stats) {
  if (options.levels == 0 || options.fanout < 2) {
    return Status::InvalidArgument(
        "BuildRegionSubtree: need levels >= 1 and fanout >= 2");
  }
  if (members.empty()) {
    return Status::InvalidArgument("BuildRegionSubtree: empty region");
  }
  uint32_t min_size = options.min_partition_size > 0
                          ? options.min_partition_size
                          : 2 * options.fanout;
  BuildConfig cfg{&g, &options, min_size};

  std::vector<Pending> arena;
  {
    Pending root;
    root.members = members;
    root.depth = depth;
    root.salt = salt;
    arena.push_back(std::move(root));
  }
  GMINE_RETURN_IF_ERROR(
      BuildShardSubtree(cfg, &arena, 0, options.threads, stats));

  // Renumber the arena into pre-order TreeNodes with local ids.
  RegionSubtree out;
  struct Frame {
    uint32_t idx;
    TreeNodeId parent;
  };
  std::vector<Frame> stack = {{0, kInvalidTreeNode}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    Pending& p = arena[f.idx];
    TreeNodeId id = static_cast<TreeNodeId>(out.nodes.size());
    TreeNode tn;
    tn.id = id;
    tn.parent = f.parent;
    tn.depth = p.depth;
    if (p.children.empty()) {
      tn.members = std::move(p.members);
      tn.subtree_size = tn.members.size();
    }
    out.nodes.push_back(std::move(tn));
    if (f.parent != kInvalidTreeNode) {
      out.nodes[f.parent].children.push_back(id);
    }
    for (auto it = p.children.rbegin(); it != p.children.rend(); ++it) {
      stack.push_back({*it, id});
    }
  }
  for (size_t i = out.nodes.size(); i > 0; --i) {
    TreeNode& tn = out.nodes[i - 1];
    if (!tn.IsLeaf()) {
      tn.subtree_size = 0;
      for (TreeNodeId c : tn.children) {
        tn.subtree_size += out.nodes[c].subtree_size;
      }
    }
  }
  return out;
}

gmine::Result<GTree> BuildGTreeFromAssignment(
    uint32_t num_graph_nodes, const std::vector<uint32_t>& leaf_assignment,
    uint32_t num_leaves, uint32_t fanout) {
  if (fanout < 2) {
    return Status::InvalidArgument("BuildGTreeFromAssignment: fanout >= 2");
  }
  if (leaf_assignment.size() != num_graph_nodes) {
    return Status::InvalidArgument(
        "BuildGTreeFromAssignment: assignment size mismatch");
  }
  if (num_leaves == 0) {
    return Status::InvalidArgument("BuildGTreeFromAssignment: no leaves");
  }
  for (uint32_t a : leaf_assignment) {
    if (a >= num_leaves) {
      return Status::InvalidArgument(
          "BuildGTreeFromAssignment: assignment out of range");
    }
  }

  // Temporary bottom-up structure: level 0 = leaves; then group every
  // `fanout` consecutive groups into a parent until one remains.
  struct TempNode {
    std::vector<int> children;  // temp indices
    int leaf_index = -1;        // >= 0 for leaves
  };
  std::vector<TempNode> temp;
  std::vector<int> level;
  for (uint32_t leaf = 0; leaf < num_leaves; ++leaf) {
    temp.push_back(TempNode{{}, static_cast<int>(leaf)});
    level.push_back(static_cast<int>(temp.size()) - 1);
  }
  while (level.size() > 1) {
    std::vector<int> next;
    for (size_t i = 0; i < level.size(); i += fanout) {
      TempNode parent;
      for (size_t j = i; j < std::min(level.size(), i + fanout); ++j) {
        parent.children.push_back(level[j]);
      }
      temp.push_back(std::move(parent));
      next.push_back(static_cast<int>(temp.size()) - 1);
    }
    level = std::move(next);
  }
  int temp_root = level[0];

  // Pre-order renumber into final TreeNodes.
  std::vector<std::vector<NodeId>> leaf_members(num_leaves);
  for (NodeId v = 0; v < num_graph_nodes; ++v) {
    leaf_members[leaf_assignment[v]].push_back(v);
  }
  std::vector<TreeNode> nodes;
  struct Frame {
    int temp_id;
    TreeNodeId parent;
    uint32_t depth;
  };
  std::vector<Frame> stack = {{temp_root, kInvalidTreeNode, 0}};
  // Use explicit stack but preserve child order: push children reversed.
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    TreeNodeId id = static_cast<TreeNodeId>(nodes.size());
    TreeNode tn;
    tn.id = id;
    tn.parent = f.parent;
    tn.depth = f.depth;
    tn.name = StrFormat("s%03u", id);
    const TempNode& t = temp[f.temp_id];
    if (t.leaf_index >= 0) {
      tn.members = leaf_members[t.leaf_index];
      tn.subtree_size = tn.members.size();
    }
    nodes.push_back(std::move(tn));
    if (f.parent != kInvalidTreeNode) {
      nodes[f.parent].children.push_back(id);
    }
    for (auto it = t.children.rbegin(); it != t.children.rend(); ++it) {
      stack.push_back({*it, id, f.depth + 1});
    }
  }
  // Children were appended in pre-order traversal order; subtree sizes
  // accumulate bottom-up (ids are pre-order so children have larger ids).
  for (size_t i = nodes.size(); i > 0; --i) {
    TreeNode& tn = nodes[i - 1];
    if (!tn.IsLeaf()) {
      tn.subtree_size = 0;
      for (TreeNodeId c : tn.children) tn.subtree_size += nodes[c].subtree_size;
    }
  }
  return GTree::FromNodes(std::move(nodes), num_graph_nodes);
}

}  // namespace gmine::gtree
