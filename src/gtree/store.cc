#include "gtree/store.h"

#include <algorithm>

#include "graph/graph_io.h"
#include "util/coding.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace gmine::gtree {

using graph::Graph;
using graph::NodeId;
using graph::Subgraph;

namespace {

constexpr uint32_t kStoreMagic = 0x47545246;  // "GTRF"
constexpr uint32_t kStoreVersion = 1;
// magic, version, 10 fixed64 section fields, 2 fixed32 counts, checksum.
constexpr size_t kHeaderSize = 4 + 4 + 10 * 8 + 4 + 4 + 8;

std::string SerializeTree(const GTree& tree) {
  std::string blob;
  PutVarint32(&blob, tree.size());
  for (const TreeNode& tn : tree.nodes()) {
    // parent encoded +1 so the root's kInvalidTreeNode fits a varint.
    PutVarint32(&blob, tn.parent == kInvalidTreeNode ? 0 : tn.parent + 1);
    PutVarint32(&blob, tn.depth);
    PutVarint64(&blob, tn.subtree_size);
    PutLengthPrefixed(&blob, tn.name);
    PutVarint32(&blob, static_cast<uint32_t>(tn.children.size()));
    for (TreeNodeId c : tn.children) PutVarint32(&blob, c);
    PutVarint32(&blob, static_cast<uint32_t>(tn.members.size()));
    NodeId prev = 0;
    for (NodeId m : tn.members) {  // members are sorted ascending
      PutVarint32(&blob, m - prev);
      prev = m;
    }
  }
  return blob;
}

gmine::Result<GTree> DeserializeTree(std::string_view blob,
                                     uint32_t num_graph_nodes) {
  uint32_t count = 0;
  if (!GetVarint32(&blob, &count)) {
    return Status::Corruption("gtree store: bad tree node count");
  }
  std::vector<TreeNode> nodes(count);
  for (uint32_t i = 0; i < count; ++i) {
    TreeNode& tn = nodes[i];
    tn.id = i;
    uint32_t parent_plus1 = 0;
    uint32_t nchildren = 0;
    uint32_t nmembers = 0;
    std::string_view name;
    if (!GetVarint32(&blob, &parent_plus1) || !GetVarint32(&blob, &tn.depth) ||
        !GetVarint64(&blob, &tn.subtree_size) ||
        !GetLengthPrefixed(&blob, &name) || !GetVarint32(&blob, &nchildren)) {
      return Status::Corruption("gtree store: truncated tree node");
    }
    tn.parent = parent_plus1 == 0 ? kInvalidTreeNode : parent_plus1 - 1;
    tn.name.assign(name);
    tn.children.resize(nchildren);
    for (uint32_t c = 0; c < nchildren; ++c) {
      if (!GetVarint32(&blob, &tn.children[c])) {
        return Status::Corruption("gtree store: truncated child list");
      }
    }
    if (!GetVarint32(&blob, &nmembers)) {
      return Status::Corruption("gtree store: truncated member count");
    }
    tn.members.resize(nmembers);
    NodeId prev = 0;
    for (uint32_t m = 0; m < nmembers; ++m) {
      uint32_t delta = 0;
      if (!GetVarint32(&blob, &delta)) {
        return Status::Corruption("gtree store: truncated members");
      }
      prev += delta;
      tn.members[m] = prev;
    }
  }
  return GTree::FromNodes(std::move(nodes), num_graph_nodes);
}

std::string SerializeLeafPayload(const Subgraph& sub) {
  std::string blob;
  PutVarint32(&blob, static_cast<uint32_t>(sub.to_parent.size()));
  NodeId prev = 0;
  for (NodeId p : sub.to_parent) {  // ascending (leaf members are sorted)
    PutVarint32(&blob, p - prev);
    prev = p;
  }
  PutLengthPrefixed(&blob, graph::SerializeGraph(sub.graph));
  return blob;
}

gmine::Result<LeafPayload> DeserializeLeafPayload(std::string_view blob) {
  LeafPayload out;
  uint32_t count = 0;
  if (!GetVarint32(&blob, &count)) {
    return Status::Corruption("leaf payload: bad member count");
  }
  out.subgraph.to_parent.resize(count);
  NodeId prev = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t delta = 0;
    if (!GetVarint32(&blob, &delta)) {
      return Status::Corruption("leaf payload: truncated members");
    }
    prev += delta;
    out.subgraph.to_parent[i] = prev;
    out.subgraph.to_local.emplace(prev, i);
  }
  std::string_view graph_blob;
  if (!GetLengthPrefixed(&blob, &graph_blob)) {
    return Status::Corruption("leaf payload: missing graph blob");
  }
  auto g = graph::DeserializeGraph(graph_blob);
  if (!g.ok()) return g.status();
  out.subgraph.graph = std::move(g).value();
  if (out.subgraph.graph.num_nodes() != count) {
    return Status::Corruption("leaf payload: member/graph size mismatch");
  }
  return out;
}

}  // namespace

GTreeStore::~GTreeStore() {
  if (file_ != nullptr) std::fclose(file_);
}

Status GTreeStore::Create(const std::string& path, const Graph& g,
                          const GTree& tree, const ConnectivityIndex& conn,
                          const graph::LabelStore& labels) {
  // Build section blobs.
  std::string tree_blob = SerializeTree(tree);
  std::string conn_blob = conn.Serialize();
  std::string labels_blob = labels.Serialize();

  std::string pages;
  std::string directory;
  uint32_t num_pages = 0;
  for (const TreeNode& tn : tree.nodes()) {
    if (!tn.IsLeaf()) continue;
    auto sub = graph::InducedSubgraph(g, tn.members);
    if (!sub.ok()) return sub.status();
    std::string page = SerializeLeafPayload(sub.value());
    PutVarint32(&directory, tn.id);
    PutVarint64(&directory, pages.size());  // offset relative to pages base
    PutVarint64(&directory, page.size());
    pages += page;
    ++num_pages;
  }

  std::string graph_blob = graph::SerializeGraph(g);

  // Section table (absolute offsets).
  uint64_t tree_off = kHeaderSize;
  uint64_t conn_off = tree_off + tree_blob.size();
  uint64_t labels_off = conn_off + conn_blob.size();
  uint64_t pages_off = labels_off + labels_blob.size();
  uint64_t dir_off = pages_off + pages.size();
  uint64_t graph_off = dir_off + directory.size();

  std::string header;
  PutFixed32(&header, kStoreMagic);
  PutFixed32(&header, kStoreVersion);
  PutFixed64(&header, tree_off);
  PutFixed64(&header, tree_blob.size());
  PutFixed64(&header, conn_off);
  PutFixed64(&header, conn_blob.size());
  PutFixed64(&header, labels_off);
  PutFixed64(&header, labels_blob.size());
  PutFixed64(&header, dir_off);
  PutFixed64(&header, directory.size());
  PutFixed64(&header, graph_off);
  PutFixed64(&header, graph_blob.size());
  PutFixed32(&header, num_pages);
  PutFixed32(&header, g.num_nodes());
  PutFixed64(&header, Hash64(header));

  std::string file = header;
  file += tree_blob;
  file += conn_blob;
  file += labels_blob;
  file += pages;
  file += directory;
  file += graph_blob;
  return graph::WriteStringToFile(file, path);
}

gmine::Result<std::unique_ptr<GTreeStore>> GTreeStore::Open(
    const std::string& path, const GTreeStoreOptions& options) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError(StrFormat("cannot open %s", path.c_str()));
  }
  auto read_at = [f](uint64_t off, uint64_t size,
                     std::string* out) -> Status {
    out->resize(size);
    if (std::fseek(f, static_cast<long>(off), SEEK_SET) != 0) {
      return Status::IOError("seek failed");
    }
    if (std::fread(out->data(), 1, size, f) != size) {
      return Status::IOError("short read");
    }
    return Status::OK();
  };

  std::unique_ptr<GTreeStore> store(new GTreeStore());
  store->file_ = f;
  store->options_ = options;
  size_t num_shards = options.cache_shards;
  if (num_shards == 0) {
    num_shards = std::min<size_t>(16, static_cast<size_t>(MaxParallelism()));
  }
  num_shards = std::max<size_t>(1, num_shards);
  if (options.cache_pages > 0) {
    // A shard must hold at least one page, so a tiny budget caps the
    // shard count; the capacities below then sum to exactly
    // cache_pages, never beyond it.
    num_shards = std::min(num_shards, options.cache_pages);
  }
  store->shards_ = std::vector<CacheShard>(num_shards);
  if (options.cache_pages > 0) {
    size_t base = options.cache_pages / num_shards;
    size_t remainder = options.cache_pages % num_shards;
    for (size_t i = 0; i < num_shards; ++i) {
      store->shards_[i].capacity = base + (i < remainder ? 1 : 0);
    }
  }
  std::fseek(f, 0, SEEK_END);
  store->file_size_ = static_cast<uint64_t>(std::ftell(f));

  std::string header;
  Status st = read_at(0, kHeaderSize, &header);
  if (!st.ok()) return st;
  std::string_view in = header;
  uint32_t magic = 0;
  uint32_t version = 0;
  GetFixed32(&in, &magic);
  GetFixed32(&in, &version);
  if (magic != kStoreMagic) {
    return Status::Corruption("gtree store: bad magic");
  }
  if (version != kStoreVersion) {
    return Status::Corruption("gtree store: unsupported version");
  }
  uint64_t tree_off, tree_size, conn_off, conn_size, labels_off, labels_size,
      dir_off, dir_size, graph_off, graph_size;
  uint32_t num_pages = 0;
  uint32_t num_graph_nodes = 0;
  uint64_t checksum = 0;
  GetFixed64(&in, &tree_off);
  GetFixed64(&in, &tree_size);
  GetFixed64(&in, &conn_off);
  GetFixed64(&in, &conn_size);
  GetFixed64(&in, &labels_off);
  GetFixed64(&in, &labels_size);
  GetFixed64(&in, &dir_off);
  GetFixed64(&in, &dir_size);
  GetFixed64(&in, &graph_off);
  GetFixed64(&in, &graph_size);
  GetFixed32(&in, &num_pages);
  GetFixed32(&in, &num_graph_nodes);
  GetFixed64(&in, &checksum);
  if (Hash64(std::string_view(header.data(), kHeaderSize - 8)) != checksum) {
    return Status::Corruption("gtree store: header checksum mismatch");
  }

  std::string blob;
  GMINE_RETURN_IF_ERROR(read_at(tree_off, tree_size, &blob));
  auto tree = DeserializeTree(blob, num_graph_nodes);
  if (!tree.ok()) return tree.status();
  store->tree_ = std::move(tree).value();

  GMINE_RETURN_IF_ERROR(read_at(conn_off, conn_size, &blob));
  auto conn = ConnectivityIndex::Deserialize(blob);
  if (!conn.ok()) return conn.status();
  store->conn_ = std::move(conn).value();

  if (labels_size > 0) {
    GMINE_RETURN_IF_ERROR(read_at(labels_off, labels_size, &blob));
    auto labels = graph::LabelStore::Deserialize(blob);
    if (!labels.ok()) return labels.status();
    store->labels_ = std::move(labels).value();
  }

  GMINE_RETURN_IF_ERROR(read_at(dir_off, dir_size, &blob));
  std::string_view dir = blob;
  uint64_t pages_base = labels_off + labels_size;
  for (uint32_t i = 0; i < num_pages; ++i) {
    uint32_t leaf = 0;
    uint64_t off = 0;
    uint64_t size = 0;
    if (!GetVarint32(&dir, &leaf) || !GetVarint64(&dir, &off) ||
        !GetVarint64(&dir, &size)) {
      return Status::Corruption("gtree store: truncated directory");
    }
    store->directory_[leaf] = PageLocation{pages_base + off, size};
  }
  store->graph_section_ = PageLocation{graph_off, graph_size};
  return store;
}

Status GTreeStore::ReadAt(const PageLocation& loc, std::string* out) const {
  out->resize(loc.size);
  std::lock_guard<std::mutex> lock(file_mu_);
  if (std::fseek(file_, static_cast<long>(loc.offset), SEEK_SET) != 0) {
    return Status::IOError("gtree store: seek failed");
  }
  if (std::fread(out->data(), 1, out->size(), file_) != out->size()) {
    return Status::IOError("gtree store: short read");
  }
  return Status::OK();
}

gmine::Result<graph::Graph> GTreeStore::LoadFullGraph() const {
  if (graph_section_.size == 0) {
    return Status::NotFound("gtree store: no embedded graph section");
  }
  std::string blob;
  GMINE_RETURN_IF_ERROR(ReadAt(graph_section_, &blob));
  {
    std::lock_guard<std::mutex> lock(file_mu_);
    graph_bytes_read_ += blob.size();
  }
  return graph::DeserializeGraph(blob);
}

gmine::Result<std::shared_ptr<const LeafPayload>> GTreeStore::LoadLeaf(
    TreeNodeId leaf, ReaderTag reader) const {
  CacheShard& shard = ShardFor(leaf);
  PageLocation loc;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto cached = shard.map.find(leaf);
    if (cached != shard.map.end()) {
      ++shard.stats.cache_hits;
      if (cached->second->second.loader != reader) {
        ++shard.stats.shared_hits;
      }
      // Move to front.
      shard.lru.splice(shard.lru.begin(), shard.lru, cached->second);
      return cached->second->second.payload;
    }
    auto it = directory_.find(leaf);
    if (it == directory_.end()) {
      return Status::NotFound(
          StrFormat("leaf %u has no page (not a leaf community?)", leaf));
    }
    loc = it->second;
  }
  // The disk read serializes on the file mutex only, so a load in one
  // cache shard never blocks hits in another.
  std::string blob;
  GMINE_RETURN_IF_ERROR(ReadAt(loc, &blob));
  // Deserialization runs outside every lock: it is the expensive part
  // and touches only local state. Two threads racing on the same
  // uncached leaf both read and decode it; the first insert below wins
  // the LRU slot and the loser's copy simply dies with its shared_ptr.
  auto payload = DeserializeLeafPayload(blob);
  if (!payload.ok()) return payload.status();
  auto shared = std::make_shared<const LeafPayload>(std::move(payload).value());
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.stats.leaf_loads;
  shard.stats.bytes_read += blob.size();
  auto cached = shard.map.find(leaf);
  if (cached != shard.map.end()) {
    // Lost the insert race; this call already counted as a leaf_load
    // above (it did the IO), so it is not also a cache hit —
    // cache_hits + leaf_loads stays equal to the number of calls.
    shard.lru.splice(shard.lru.begin(), shard.lru, cached->second);
    return cached->second->second.payload;
  }
  shard.lru.emplace_front(leaf, CacheShard::Entry{shared, reader});
  shard.map[leaf] = shard.lru.begin();
  if (shard.capacity > 0 && shard.lru.size() > shard.capacity) {
    shard.map.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.stats.evictions;
  }
  return shared;
}

bool GTreeStore::IsCached(TreeNodeId leaf) const {
  CacheShard& shard = ShardFor(leaf);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.map.count(leaf) > 0;
}

GTreeStoreStats GTreeStore::stats() const {
  GTreeStoreStats total;
  for (CacheShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total.leaf_loads += shard.stats.leaf_loads;
    total.cache_hits += shard.stats.cache_hits;
    total.shared_hits += shard.stats.shared_hits;
    total.bytes_read += shard.stats.bytes_read;
    total.evictions += shard.stats.evictions;
  }
  std::lock_guard<std::mutex> lock(file_mu_);
  total.bytes_read += graph_bytes_read_;
  return total;
}

void GTreeStore::ClearCache() {
  for (CacheShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.map.clear();
  }
}

}  // namespace gmine::gtree
