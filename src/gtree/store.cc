#include "gtree/store.h"

#include <unistd.h>

#include <algorithm>
#include <unordered_set>

#include "graph/graph_io.h"
#include "util/coding.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace gmine::gtree {

using graph::Graph;
using graph::NodeId;
using graph::Subgraph;

namespace {

constexpr uint32_t kStoreMagic = 0x47545246;  // "GTRF"
// v2: directory offsets became absolute, and a journal section plus the
// build-shape hints were added for incremental edits (ApplyUpdate).
// v3: the applied write-ahead-log LSN joined the header (storage/wal.h)
// so crash recovery knows which log records the store already covers.
constexpr uint32_t kStoreVersion = 3;
// magic, version, 12 fixed64 section fields, 2 fixed32 counts,
// build hints (3 fixed32 + 1 fixed64), applied_lsn, checksum.
constexpr size_t kHeaderSize =
    4 + 4 + 12 * 8 + 4 + 4 + (3 * 4 + 8) + 8 + 8;

// Every section location in one place so the header can be (re)written
// by Create and by ApplyUpdate's append path alike.
struct SectionTable {
  uint64_t tree_off = 0, tree_size = 0;
  uint64_t conn_off = 0, conn_size = 0;
  uint64_t labels_off = 0, labels_size = 0;
  uint64_t dir_off = 0, dir_size = 0;
  uint64_t graph_off = 0, graph_size = 0;
  uint64_t journal_off = 0, journal_size = 0;
  uint32_t num_pages = 0;
  uint32_t num_graph_nodes = 0;
  GTreeBuildHints hints;
  uint64_t applied_lsn = 0;
};

std::string SerializeHeader(const SectionTable& t) {
  std::string header;
  PutFixed32(&header, kStoreMagic);
  PutFixed32(&header, kStoreVersion);
  PutFixed64(&header, t.tree_off);
  PutFixed64(&header, t.tree_size);
  PutFixed64(&header, t.conn_off);
  PutFixed64(&header, t.conn_size);
  PutFixed64(&header, t.labels_off);
  PutFixed64(&header, t.labels_size);
  PutFixed64(&header, t.dir_off);
  PutFixed64(&header, t.dir_size);
  PutFixed64(&header, t.graph_off);
  PutFixed64(&header, t.graph_size);
  PutFixed64(&header, t.journal_off);
  PutFixed64(&header, t.journal_size);
  PutFixed32(&header, t.num_pages);
  PutFixed32(&header, t.num_graph_nodes);
  PutFixed32(&header, t.hints.levels);
  PutFixed32(&header, t.hints.fanout);
  PutFixed32(&header, t.hints.min_partition_size);
  PutFixed64(&header, t.hints.partition_seed);
  PutFixed64(&header, t.applied_lsn);
  PutFixed64(&header, Hash64(header));
  return header;
}

std::string SerializeTree(const GTree& tree) {
  std::string blob;
  PutVarint32(&blob, tree.size());
  for (const TreeNode& tn : tree.nodes()) {
    // parent encoded +1 so the root's kInvalidTreeNode fits a varint.
    PutVarint32(&blob, tn.parent == kInvalidTreeNode ? 0 : tn.parent + 1);
    PutVarint32(&blob, tn.depth);
    PutVarint64(&blob, tn.subtree_size);
    PutLengthPrefixed(&blob, tn.name);
    PutVarint32(&blob, static_cast<uint32_t>(tn.children.size()));
    for (TreeNodeId c : tn.children) PutVarint32(&blob, c);
    PutVarint32(&blob, static_cast<uint32_t>(tn.members.size()));
    NodeId prev = 0;
    for (NodeId m : tn.members) {  // members are sorted ascending
      PutVarint32(&blob, m - prev);
      prev = m;
    }
  }
  return blob;
}

gmine::Result<GTree> DeserializeTree(std::string_view blob,
                                     uint32_t num_graph_nodes) {
  uint32_t count = 0;
  if (!GetVarint32(&blob, &count)) {
    return Status::Corruption("gtree store: bad tree node count");
  }
  std::vector<TreeNode> nodes(count);
  for (uint32_t i = 0; i < count; ++i) {
    TreeNode& tn = nodes[i];
    tn.id = i;
    uint32_t parent_plus1 = 0;
    uint32_t nchildren = 0;
    uint32_t nmembers = 0;
    std::string_view name;
    if (!GetVarint32(&blob, &parent_plus1) || !GetVarint32(&blob, &tn.depth) ||
        !GetVarint64(&blob, &tn.subtree_size) ||
        !GetLengthPrefixed(&blob, &name) || !GetVarint32(&blob, &nchildren)) {
      return Status::Corruption("gtree store: truncated tree node");
    }
    tn.parent = parent_plus1 == 0 ? kInvalidTreeNode : parent_plus1 - 1;
    tn.name.assign(name);
    tn.children.resize(nchildren);
    for (uint32_t c = 0; c < nchildren; ++c) {
      if (!GetVarint32(&blob, &tn.children[c])) {
        return Status::Corruption("gtree store: truncated child list");
      }
    }
    if (!GetVarint32(&blob, &nmembers)) {
      return Status::Corruption("gtree store: truncated member count");
    }
    tn.members.resize(nmembers);
    NodeId prev = 0;
    for (uint32_t m = 0; m < nmembers; ++m) {
      uint32_t delta = 0;
      if (!GetVarint32(&blob, &delta)) {
        return Status::Corruption("gtree store: truncated members");
      }
      prev += delta;
      tn.members[m] = prev;
    }
  }
  return GTree::FromNodes(std::move(nodes), num_graph_nodes);
}

/// Serializes a leaf page. The optional boundary section (streamed
/// stores) trails the graph blob: per member, a varint arc count
/// followed by delta-encoded global destination ids and float weights.
/// Legacy pages end at the graph blob, so their bytes are unchanged and
/// presence of trailing bytes is what signals a boundary section.
std::string SerializeLeafPayload(
    const Subgraph& sub,
    const std::vector<uint32_t>* boundary_offsets = nullptr,
    const std::vector<graph::Neighbor>* boundary_arcs = nullptr) {
  std::string blob;
  PutVarint32(&blob, static_cast<uint32_t>(sub.to_parent.size()));
  NodeId prev = 0;
  for (NodeId p : sub.to_parent) {  // ascending (leaf members are sorted)
    PutVarint32(&blob, p - prev);
    prev = p;
  }
  PutLengthPrefixed(&blob, graph::SerializeGraph(sub.graph));
  if (boundary_offsets != nullptr && !boundary_offsets->empty()) {
    for (size_t i = 0; i + 1 < boundary_offsets->size(); ++i) {
      const uint32_t begin = (*boundary_offsets)[i];
      const uint32_t end = (*boundary_offsets)[i + 1];
      PutVarint32(&blob, end - begin);
      NodeId prev_dst = 0;
      for (uint32_t a = begin; a < end; ++a) {
        const graph::Neighbor& nb = (*boundary_arcs)[a];
        PutVarint32(&blob, nb.id - prev_dst);  // ascending per member
        PutFloat(&blob, nb.weight);
        prev_dst = nb.id;
      }
    }
  }
  return blob;
}

gmine::Result<LeafPayload> DeserializeLeafPayload(std::string_view blob) {
  LeafPayload out;
  uint32_t count = 0;
  if (!GetVarint32(&blob, &count)) {
    return Status::Corruption("leaf payload: bad member count");
  }
  out.subgraph.to_parent.resize(count);
  NodeId prev = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t delta = 0;
    if (!GetVarint32(&blob, &delta)) {
      return Status::Corruption("leaf payload: truncated members");
    }
    prev += delta;
    out.subgraph.to_parent[i] = prev;
    out.subgraph.to_local.emplace(prev, i);
  }
  std::string_view graph_blob;
  if (!GetLengthPrefixed(&blob, &graph_blob)) {
    return Status::Corruption("leaf payload: missing graph blob");
  }
  auto g = graph::DeserializeGraph(graph_blob);
  if (!g.ok()) return g.status();
  out.subgraph.graph = std::move(g).value();
  if (out.subgraph.graph.num_nodes() != count) {
    return Status::Corruption("leaf payload: member/graph size mismatch");
  }
  if (!blob.empty()) {
    // Boundary section (streamed stores): per-member global arcs.
    out.boundary_offsets.reserve(count + 1);
    out.boundary_offsets.push_back(0);
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t degree = 0;
      if (!GetVarint32(&blob, &degree)) {
        return Status::Corruption("leaf payload: truncated boundary degree");
      }
      NodeId prev_dst = 0;
      for (uint32_t a = 0; a < degree; ++a) {
        uint32_t delta = 0;
        float w = 0.0f;
        if (!GetVarint32(&blob, &delta) || !GetFloat(&blob, &w)) {
          return Status::Corruption("leaf payload: truncated boundary arc");
        }
        prev_dst += delta;
        out.boundary_arcs.push_back(graph::Neighbor{prev_dst, w});
      }
      out.boundary_offsets.push_back(
          static_cast<uint32_t>(out.boundary_arcs.size()));
    }
    if (!blob.empty()) {
      return Status::Corruption("leaf payload: trailing bytes after boundary");
    }
  }
  return out;
}

/// Bytes a header at `t` actually references (the live set): header +
/// metadata sections + every page in `directory`. Everything else in
/// the file is dead weight from superseded appends. (Templated because
/// PageLocation is private to GTreeStore.)
template <typename Directory>
uint64_t ComputeLiveBytes(const SectionTable& t, const Directory& directory) {
  uint64_t live = kHeaderSize + t.tree_size + t.conn_size + t.labels_size +
                  t.dir_size + t.journal_size + t.graph_size;
  for (const auto& [leaf, loc] : directory) live += loc.size;
  return live;
}

}  // namespace

GTreeStore::~GTreeStore() {
  if (pool_ != nullptr) pool_->UnregisterStore(pool_id_);
  if (file_ != nullptr) std::fclose(file_);
}

Status GTreeStore::Create(const std::string& path, const Graph& g,
                          const GTree& tree, const ConnectivityIndex& conn,
                          const graph::LabelStore& labels,
                          const GTreeBuildHints* hints,
                          uint64_t applied_lsn) {
  // Build section blobs.
  std::string tree_blob = SerializeTree(tree);
  std::string conn_blob = conn.Serialize();
  std::string labels_blob = labels.Serialize();

  uint64_t pages_off =
      kHeaderSize + tree_blob.size() + conn_blob.size() + labels_blob.size();
  std::string pages;
  std::string directory;
  uint32_t num_pages = 0;
  for (const TreeNode& tn : tree.nodes()) {
    if (!tn.IsLeaf()) continue;
    auto sub = graph::InducedSubgraph(g, tn.members);
    if (!sub.ok()) return sub.status();
    std::string page = SerializeLeafPayload(sub.value());
    PutVarint32(&directory, tn.id);
    PutVarint64(&directory, pages_off + pages.size());  // absolute offset
    PutVarint64(&directory, page.size());
    pages += page;
    ++num_pages;
  }

  std::string graph_blob = graph::SerializeGraph(g);

  SectionTable t;
  t.tree_off = kHeaderSize;
  t.tree_size = tree_blob.size();
  t.conn_off = t.tree_off + tree_blob.size();
  t.conn_size = conn_blob.size();
  t.labels_off = t.conn_off + conn_blob.size();
  t.labels_size = labels_blob.size();
  t.dir_off = pages_off + pages.size();
  t.dir_size = directory.size();
  t.graph_off = t.dir_off + directory.size();
  t.graph_size = graph_blob.size();
  t.journal_off = t.graph_off + graph_blob.size();
  t.journal_size = 0;  // a fresh store has no pending edits
  t.num_pages = num_pages;
  t.num_graph_nodes = g.num_nodes();
  if (hints != nullptr) t.hints = *hints;
  t.applied_lsn = applied_lsn;

  std::string file = SerializeHeader(t);
  file += tree_blob;
  file += conn_blob;
  file += labels_blob;
  file += pages;
  file += directory;
  file += graph_blob;
  return graph::WriteStringToFile(file, path);
}

Status GTreeStore::LoadMetadata(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError(StrFormat("cannot open %s", path.c_str()));
  }
  auto read_at = [f](uint64_t off, uint64_t size,
                     std::string* out) -> Status {
    out->resize(size);
    if (std::fseek(f, static_cast<long>(off), SEEK_SET) != 0) {
      return Status::IOError("seek failed");
    }
    if (std::fread(out->data(), 1, size, f) != size) {
      return Status::IOError("short read");
    }
    return Status::OK();
  };
  // The new handle replaces the old one only after the whole load
  // succeeds, so a failed reload leaves the store usable.
  struct Closer {
    std::FILE* f;
    ~Closer() {
      if (f != nullptr) std::fclose(f);
    }
  } closer{f};

  std::fseek(f, 0, SEEK_END);
  const uint64_t file_size = static_cast<uint64_t>(std::ftell(f));

  std::string header;
  GMINE_RETURN_IF_ERROR(read_at(0, kHeaderSize, &header));
  std::string_view in = header;
  uint32_t magic = 0;
  uint32_t version = 0;
  GetFixed32(&in, &magic);
  GetFixed32(&in, &version);
  if (magic != kStoreMagic) {
    return Status::Corruption("gtree store: bad magic");
  }
  if (version != kStoreVersion) {
    return Status::Corruption("gtree store: unsupported version");
  }
  SectionTable t;
  uint64_t checksum = 0;
  GetFixed64(&in, &t.tree_off);
  GetFixed64(&in, &t.tree_size);
  GetFixed64(&in, &t.conn_off);
  GetFixed64(&in, &t.conn_size);
  GetFixed64(&in, &t.labels_off);
  GetFixed64(&in, &t.labels_size);
  GetFixed64(&in, &t.dir_off);
  GetFixed64(&in, &t.dir_size);
  GetFixed64(&in, &t.graph_off);
  GetFixed64(&in, &t.graph_size);
  GetFixed64(&in, &t.journal_off);
  GetFixed64(&in, &t.journal_size);
  GetFixed32(&in, &t.num_pages);
  GetFixed32(&in, &t.num_graph_nodes);
  GetFixed32(&in, &t.hints.levels);
  GetFixed32(&in, &t.hints.fanout);
  GetFixed32(&in, &t.hints.min_partition_size);
  GetFixed64(&in, &t.hints.partition_seed);
  GetFixed64(&in, &t.applied_lsn);
  GetFixed64(&in, &checksum);
  if (Hash64(std::string_view(header.data(), kHeaderSize - 8)) != checksum) {
    return Status::Corruption("gtree store: header checksum mismatch");
  }

  GTree tree;
  ConnectivityIndex conn;
  graph::LabelStore labels;
  std::vector<graph::GraphEdit> journal;
  std::unordered_map<TreeNodeId, PageLocation> directory;

  std::string blob;
  GMINE_RETURN_IF_ERROR(read_at(t.tree_off, t.tree_size, &blob));
  {
    auto parsed = DeserializeTree(blob, t.num_graph_nodes);
    if (!parsed.ok()) return parsed.status();
    tree = std::move(parsed).value();
  }
  GMINE_RETURN_IF_ERROR(read_at(t.conn_off, t.conn_size, &blob));
  {
    auto parsed = ConnectivityIndex::Deserialize(blob);
    if (!parsed.ok()) return parsed.status();
    conn = std::move(parsed).value();
  }
  if (t.labels_size > 0) {
    GMINE_RETURN_IF_ERROR(read_at(t.labels_off, t.labels_size, &blob));
    auto parsed = graph::LabelStore::Deserialize(blob);
    if (!parsed.ok()) return parsed.status();
    labels = std::move(parsed).value();
  }
  GMINE_RETURN_IF_ERROR(read_at(t.dir_off, t.dir_size, &blob));
  {
    std::string_view dir = blob;
    for (uint32_t i = 0; i < t.num_pages; ++i) {
      uint32_t leaf = 0;
      uint64_t off = 0;
      uint64_t size = 0;
      if (!GetVarint32(&dir, &leaf) || !GetVarint64(&dir, &off) ||
          !GetVarint64(&dir, &size)) {
        return Status::Corruption("gtree store: truncated directory");
      }
      if (off + size > file_size) {
        return Status::Corruption("gtree store: page outside the file");
      }
      directory[leaf] = PageLocation{off, size};
    }
  }
  if (t.journal_size > 0) {
    GMINE_RETURN_IF_ERROR(read_at(t.journal_off, t.journal_size, &blob));
    std::string_view body = blob;
    uint32_t count = 0;
    if (!GetVarint32(&body, &count)) {
      return Status::Corruption("gtree store: bad journal count");
    }
    journal.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      std::string_view entry;
      if (!GetLengthPrefixed(&body, &entry)) {
        return Status::Corruption("gtree store: truncated journal");
      }
      auto edit = graph::GraphEdit::Deserialize(entry);
      if (!edit.ok()) return edit.status();
      journal.push_back(std::move(edit).value());
    }
  }

  if (file_ != nullptr) std::fclose(file_);
  file_ = f;
  closer.f = nullptr;
  path_ = path;
  file_size_ = file_size;
  hints_ = t.hints;
  num_graph_nodes_ = t.num_graph_nodes;
  applied_lsn_ = t.applied_lsn;
  tree_ = std::move(tree);
  conn_ = std::move(conn);
  labels_ = std::move(labels);
  journal_ = std::move(journal);
  directory_ = std::move(directory);
  graph_section_ = PageLocation{t.graph_off, t.graph_size};
  labels_section_ = PageLocation{t.labels_off, t.labels_size};
  live_bytes_ = ComputeLiveBytes(t, directory_);
  return Status::OK();
}

gmine::Result<std::unique_ptr<GTreeStore>> GTreeStore::Open(
    const std::string& path, const GTreeStoreOptions& options) {
  std::unique_ptr<GTreeStore> store(new GTreeStore());
  store->options_ = options;
  // Every leaf read goes through a buffer pool: the caller's private
  // one when given, the process-wide pool otherwise. The pool keys
  // frames by (store id, leaf id), so id registration is what keeps
  // two stores' pages apart.
  store->pool_ = options.buffer_pool != nullptr
                     ? options.buffer_pool
                     : &storage::BufferPool::Global();
  store->pool_id_ = store->pool_->RegisterStore();
  GMINE_RETURN_IF_ERROR(store->LoadMetadata(path));
  return store;
}

Status GTreeStore::ReadAt(const PageLocation& loc, std::string* out) const {
  out->resize(loc.size);
  std::lock_guard<std::mutex> lock(file_mu_);
  if (std::fseek(file_, static_cast<long>(loc.offset), SEEK_SET) != 0) {
    return Status::IOError("gtree store: seek failed");
  }
  if (std::fread(out->data(), 1, out->size(), file_) != out->size()) {
    return Status::IOError("gtree store: short read");
  }
  return Status::OK();
}

gmine::Result<graph::Graph> GTreeStore::LoadFullGraph() const {
  if (graph_section_.size == 0) {
    return Status::NotFound("gtree store: no embedded graph section");
  }
  std::string blob;
  GMINE_RETURN_IF_ERROR(ReadAt(graph_section_, &blob));
  {
    std::lock_guard<std::mutex> lock(file_mu_);
    graph_bytes_read_ += blob.size();
  }
  auto g = graph::DeserializeGraph(blob);
  if (!g.ok() || journal_.empty()) return g;
  // Replay the edit journal: the graph section is the base state and
  // each journaled edit was validated when it was applied live.
  graph::Graph current = std::move(g).value();
  for (const graph::GraphEdit& edit : journal_) {
    auto replayed = edit.Apply(current);
    if (!replayed.ok()) {
      return Status::Corruption(
          StrFormat("gtree store: journal replay failed: %s",
                    replayed.status().ToString().c_str()));
    }
    current = std::move(replayed).value().graph;
  }
  return current;
}

gmine::Result<std::shared_ptr<const LeafPayload>> GTreeStore::LoadLeaf(
    TreeNodeId leaf, ReaderTag reader) const {
  if (storage::PagePayload hit = pool_->Lookup(pool_id_, leaf, reader)) {
    return std::static_pointer_cast<const LeafPayload>(hit);
  }
  // directory_ is immutable except under ApplyUpdate, whose contract
  // excludes every concurrent reader, so the miss path reads it
  // latch-free.
  auto it = directory_.find(leaf);
  if (it == directory_.end()) {
    return Status::NotFound(
        StrFormat("leaf %u has no page (not a leaf community?)", leaf));
  }
  // The disk read serializes on the file mutex only, so a load never
  // blocks pool hits on other pages.
  std::string blob;
  GMINE_RETURN_IF_ERROR(ReadAt(it->second, &blob));
  // Deserialization runs outside every latch: it is the expensive part
  // and touches only local state. Two threads racing on the same
  // non-resident leaf both read and decode it; the first Insert wins
  // the frame and the loser's copy simply dies with its shared_ptr.
  auto payload = DeserializeLeafPayload(blob);
  if (!payload.ok()) return payload.status();
  auto shared =
      std::make_shared<const LeafPayload>(std::move(payload).value());
  GMINE_ASSIGN_OR_RETURN(
      storage::PagePayload winner,
      pool_->Insert(pool_id_, leaf, shared, blob.size(), reader));
  return std::static_pointer_cast<const LeafPayload>(winner);
}

Status GTreeStore::ScanLeafPages(
    const std::function<bool(const TreeNode&)>& prune,
    const std::function<Status(const TreeNode&, const LeafPayload&)>& visit,
    LeafScanStats* stats, ReaderTag reader) const {
  LeafScanStats local;
  for (const TreeNode& node : tree_.nodes()) {
    if (!node.IsLeaf()) continue;
    ++local.pages_total;
    if (prune && prune(node)) {
      ++local.pages_pruned;
      continue;
    }
    GMINE_ASSIGN_OR_RETURN(std::shared_ptr<const LeafPayload> payload,
                           LoadLeaf(node.id, reader));
    ++local.pages_scanned;
    GMINE_RETURN_IF_ERROR(visit(node, *payload));
    // The pin (shared_ptr) drops here, before the next page loads:
    // the scan holds at most one frame at a time, so it runs within
    // any pool budget that fits the largest single page.
  }
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Status GTreeStore::ApplyUpdate(GTreeStoreUpdate& update,
                               GTreeStoreUpdateStats* stats) {
  if (streamed()) {
    // Streamed stores have no embedded base graph for the journal to
    // replay against, so in-place edits are off the table by design
    // (docs/OUTOFCORE.md) — rebuild through the streaming pipeline.
    // Checked before update validation: it is a property of the store,
    // not of this particular update.
    return Status::NotSupported(
        "streamed (out-of-core) store is read-only; rebuild to edit");
  }
  if (update.tree == nullptr || update.graph == nullptr) {
    return Status::InvalidArgument("ApplyUpdate: tree and graph required");
  }
  if (update.conn_deltas != nullptr && update.replacement_conn != nullptr) {
    return Status::InvalidArgument(
        "ApplyUpdate: conn_deltas and replacement_conn are exclusive");
  }
  GTreeStoreUpdateStats local;
  GTreeStoreUpdateStats& out = stats != nullptr ? *stats : local;

  // Size-ratio defragmentation trigger: when the dead bytes accumulated
  // by prior appends already dwarf the live set, compact now instead of
  // waiting for the journal to fill — a burst of page-heavy edits can
  // triple the file long before journal_compact_ops edits have landed.
  const bool defrag_due =
      options_.defrag_wasted_ratio > 0 && live_bytes_ > 0 &&
      static_cast<double>(wasted_bytes()) >
          options_.defrag_wasted_ratio * static_cast<double>(live_bytes_);
  const bool compact = update.journal_edit == nullptr ||
                       options_.journal_compact_ops == 0 ||
                       journal_.size() >= options_.journal_compact_ops ||
                       defrag_due;
  if (compact) {
    out.defragmented = defrag_due;
    // Compaction: materialize the post-edit state and rewrite the whole
    // file through Create + atomic rename; memory commits only after
    // the rename so a failure leaves the store on its old state.
    GTree new_tree = std::move(*update.tree);
    ConnectivityIndex new_conn;
    if (update.replacement_conn != nullptr) {
      new_conn = std::move(*update.replacement_conn);
    } else {
      new_conn = conn_;
      if (update.conn_deltas != nullptr) {
        new_conn.ApplyDeltas(*update.conn_deltas);
      }
    }
    const graph::LabelStore& labels =
        update.labels != nullptr ? *update.labels : labels_;
    const std::string tmp = path_ + ".tmp";
    const uint64_t new_lsn =
        update.applied_lsn != 0 ? update.applied_lsn : applied_lsn_;
    Status created = Create(tmp, *update.graph, new_tree, new_conn, labels,
                            &hints_, new_lsn);
    if (!created.ok()) {
      std::remove(tmp.c_str());
      return created;
    }
    if (options_.durable_appends) {
      // Push the replacement to disk before it takes the store's name.
      std::FILE* t = std::fopen(tmp.c_str(), "rb");
      if (t != nullptr) {
        (void)fdatasync(fileno(t));
        std::fclose(t);
      }
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
      std::remove(tmp.c_str());
      return Status::IOError(
          StrFormat("ApplyUpdate: cannot replace %s", path_.c_str()));
    }
    GMINE_RETURN_IF_ERROR(LoadMetadata(path_));
    // Every page was rewritten, so every resident frame of *this*
    // store is stale; other stores' frames are untouched.
    out.pages_invalidated +=
        static_cast<uint32_t>(pool_->DropStore(pool_id_));
    out.compacted = true;
    out.journal_ops = 0;
    return Status::OK();
  }

  // Append path: dirty pages + fresh metadata sections go at the end of
  // the file; the header is rewritten last. Everything fallible
  // (serialization, IO) runs before any in-memory commit.
  std::string tree_blob = SerializeTree(*update.tree);
  ConnectivityIndex new_conn;
  if (update.replacement_conn != nullptr) {
    new_conn = std::move(*update.replacement_conn);
  } else {
    new_conn = conn_;
    if (update.conn_deltas != nullptr) {
      new_conn.ApplyDeltas(*update.conn_deltas);
    }
  }
  std::string conn_blob = new_conn.Serialize();
  std::string labels_blob;
  if (update.labels != nullptr) labels_blob = update.labels->Serialize();
  std::string journal_blob;
  PutVarint32(&journal_blob, static_cast<uint32_t>(journal_.size() + 1));
  for (const graph::GraphEdit& e : journal_) {
    PutLengthPrefixed(&journal_blob, e.Serialize());
  }
  PutLengthPrefixed(&journal_blob, update.journal_edit->Serialize());

  // Layout: dirty pages first, then tree/conn/[labels]/directory/journal.
  const uint64_t append_base = file_size_;
  std::string appended;
  std::unordered_map<TreeNodeId, PageLocation> new_directory;
  std::unordered_set<TreeNodeId> dirty;
  for (auto& [leaf, sub] : update.dirty_pages) {
    std::string page = SerializeLeafPayload(sub);
    new_directory[leaf] =
        PageLocation{append_base + appended.size(), page.size()};
    dirty.insert(leaf);
    appended += page;
    ++out.pages_written;
  }
  // Clean pages carry over at their old offsets under their new ids.
  std::unordered_map<TreeNodeId, TreeNodeId> new_to_old;
  if (update.old_to_new != nullptr) {
    new_to_old.reserve(update.old_to_new->size());
    for (TreeNodeId o = 0;
         o < static_cast<TreeNodeId>(update.old_to_new->size()); ++o) {
      if ((*update.old_to_new)[o] != kInvalidTreeNode) {
        new_to_old[(*update.old_to_new)[o]] = o;
      }
    }
  }
  for (const TreeNode& tn : update.tree->nodes()) {
    if (!tn.IsLeaf() || dirty.count(tn.id) > 0) continue;
    TreeNodeId old_id = tn.id;
    if (update.old_to_new != nullptr) {
      auto mapped = new_to_old.find(tn.id);
      old_id = mapped == new_to_old.end() ? kInvalidTreeNode
                                          : mapped->second;
    }
    auto it = old_id == kInvalidTreeNode ? directory_.end()
                                         : directory_.find(old_id);
    if (it == directory_.end()) {
      return Status::Internal(
          StrFormat("ApplyUpdate: clean leaf %u has no prior page", tn.id));
    }
    new_directory[tn.id] = it->second;
  }
  std::string directory_blob;
  {
    // Deterministic directory order (ascending leaf id).
    std::vector<TreeNodeId> leaves;
    leaves.reserve(new_directory.size());
    for (const auto& [leaf, _] : new_directory) leaves.push_back(leaf);
    std::sort(leaves.begin(), leaves.end());
    for (TreeNodeId leaf : leaves) {
      const PageLocation& loc = new_directory.at(leaf);
      PutVarint32(&directory_blob, leaf);
      PutVarint64(&directory_blob, loc.offset);
      PutVarint64(&directory_blob, loc.size);
    }
  }

  SectionTable t;
  t.tree_off = append_base + appended.size();
  t.tree_size = tree_blob.size();
  appended += tree_blob;
  t.conn_off = append_base + appended.size();
  t.conn_size = conn_blob.size();
  appended += conn_blob;
  if (update.labels != nullptr) {
    t.labels_off = append_base + appended.size();
    t.labels_size = labels_blob.size();
    appended += labels_blob;
  } else {
    t.labels_off = labels_section_.offset;
    t.labels_size = labels_section_.size;
  }
  t.dir_off = append_base + appended.size();
  t.dir_size = directory_blob.size();
  appended += directory_blob;
  t.journal_off = append_base + appended.size();
  t.journal_size = journal_blob.size();
  appended += journal_blob;
  t.graph_off = graph_section_.offset;
  t.graph_size = graph_section_.size;
  t.num_pages = static_cast<uint32_t>(new_directory.size());
  t.num_graph_nodes = update.graph->num_nodes();
  t.hints = hints_;
  t.applied_lsn =
      update.applied_lsn != 0 ? update.applied_lsn : applied_lsn_;
  std::string header = SerializeHeader(t);

  {
    // Appends land before the header write, so a *process* crash in
    // between leaves the old header describing the old sections — the
    // previous consistent state. For power-loss safety the kernel must
    // not reorder the header ahead of the appends: durable_appends
    // inserts fdatasync barriers around the header write (costing
    // milliseconds per edit, hence opt-in).
    std::FILE* w = std::fopen(path_.c_str(), "r+b");
    if (w == nullptr) {
      return Status::IOError(
          StrFormat("ApplyUpdate: cannot reopen %s for writing",
                    path_.c_str()));
    }
    bool ok = std::fseek(w, 0, SEEK_END) == 0 &&
              static_cast<uint64_t>(std::ftell(w)) == append_base &&
              std::fwrite(appended.data(), 1, appended.size(), w) ==
                  appended.size() &&
              std::fflush(w) == 0;
    if (ok && options_.durable_appends) ok = fdatasync(fileno(w)) == 0;
    ok = ok && std::fseek(w, 0, SEEK_SET) == 0 &&
         std::fwrite(header.data(), 1, header.size(), w) ==
             header.size() &&
         std::fflush(w) == 0;
    if (ok && options_.durable_appends) ok = fdatasync(fileno(w)) == 0;
    std::fclose(w);
    if (!ok) {
      return Status::IOError(
          StrFormat("ApplyUpdate: write to %s failed", path_.c_str()));
    }
  }

  // Commit (infallible from here).
  tree_ = std::move(*update.tree);
  conn_ = std::move(new_conn);
  if (update.labels != nullptr) {
    labels_ = *update.labels;
    labels_section_ = PageLocation{t.labels_off, t.labels_size};
  }
  journal_.push_back(*update.journal_edit);
  applied_lsn_ = t.applied_lsn;
  file_size_ = append_base + appended.size();
  out.appended_bytes = appended.size();
  out.journal_ops = journal_.size();
  live_bytes_ = ComputeLiveBytes(t, new_directory);

  // Invalidate only the touched frames; clean frames survive in the
  // pool, re-keyed when the repair renumbered the tree.
  out.pages_invalidated += static_cast<uint32_t>(pool_->RekeyStore(
      pool_id_,
      [&](storage::PageId old_page) -> storage::PageId {
        const TreeNodeId old_id = static_cast<TreeNodeId>(old_page);
        const TreeNodeId new_id =
            update.old_to_new != nullptr
                ? (old_id < update.old_to_new->size()
                       ? (*update.old_to_new)[old_id]
                       : kInvalidTreeNode)
                : old_id;
        if (new_id == kInvalidTreeNode || dirty.count(new_id) > 0 ||
            new_directory.count(new_id) == 0) {
          return storage::kInvalidPage;
        }
        return new_id;
      }));
  directory_ = std::move(new_directory);
  return Status::OK();
}

namespace {
/// Resume-token magic: "GPS1".
constexpr uint32_t kPageScanTokenMagic = 0x47505331;
}  // namespace

/// The store-backed PageScan (storage/page_scan.h): ascending leaf-id
/// walk, one pinned page per Next() call, tokens fingerprinted against
/// the store state they were minted from.
class GTreeLeafPageScan final : public storage::PageScan {
 public:
  GTreeLeafPageScan(const GTreeStore* store, ReaderTag reader)
      : store_(store), reader_(reader) {
    for (const TreeNode& tn : store->tree_.nodes()) {
      if (tn.IsLeaf()) leaves_.push_back(tn.id);
    }
    std::sort(leaves_.begin(), leaves_.end());
    // Any ApplyUpdate changes file_size_ (append or rewrite), so this
    // is enough to invalidate tokens across store mutations.
    std::string fp;
    PutFixed64(&fp, leaves_.size());
    PutFixed32(&fp, store->num_graph_nodes_);
    PutFixed64(&fp, store->applied_lsn_);
    PutFixed64(&fp, store->file_size_);
    PutFixed64(&fp, store->journal_.size());
    fingerprint_ = Hash64(fp);
  }

  gmine::Result<bool> Next(storage::GraphPage* page) override {
    if (next_ >= leaves_.size()) return false;
    const TreeNodeId leaf = leaves_[next_];
    GMINE_ASSIGN_OR_RETURN(std::shared_ptr<const LeafPayload> payload,
                           store_->LoadLeaf(leaf, reader_));
    Convert(leaf, *payload, page);
    ++next_;
    return true;
    // The pin (shared_ptr) drops here: at most one frame is held per
    // call, so the scan runs under any budget fitting one page.
  }

  void Reset() override { next_ = 0; }

  std::string Checkpoint() const override {
    std::string token;
    PutFixed32(&token, kPageScanTokenMagic);
    PutFixed64(&token, fingerprint_);
    PutVarint64(&token, next_);
    return token;
  }

  Status Restore(std::string_view token) override {
    uint32_t magic = 0;
    uint64_t fp = 0;
    uint64_t pos = 0;
    if (!GetFixed32(&token, &magic) || !GetFixed64(&token, &fp) ||
        !GetVarint64(&token, &pos) || !token.empty() ||
        magic != kPageScanTokenMagic) {
      return Status::InvalidArgument("page scan: malformed resume token");
    }
    if (fp != fingerprint_) {
      return Status::InvalidArgument(
          "page scan: resume token does not match this store state");
    }
    if (pos > leaves_.size()) {
      return Status::InvalidArgument("page scan: token position out of range");
    }
    next_ = pos;
    return Status::OK();
  }

  uint32_t num_nodes() const override { return store_->num_graph_nodes_; }
  uint64_t pages_total() const override { return leaves_.size(); }
  bool complete_adjacency() const override { return store_->streamed(); }

 private:
  /// Flattens a leaf payload into global-id CSR rows. Intra arcs map
  /// through to_parent (ascending, so mapped ids stay sorted); boundary
  /// arcs are already global and sorted — a two-way merge keeps each
  /// row sorted by destination.
  static void Convert(TreeNodeId leaf, const LeafPayload& p,
                      storage::GraphPage* out) {
    const Subgraph& sub = p.subgraph;
    const size_t n = sub.to_parent.size();
    out->page_id = leaf;
    out->nodes.assign(sub.to_parent.begin(), sub.to_parent.end());
    out->arc_offsets.clear();
    out->arc_offsets.reserve(n + 1);
    out->arc_offsets.push_back(0);
    out->arc_dst.clear();
    out->arc_weight.clear();
    for (NodeId v = 0; v < n; ++v) {
      std::span<const graph::Neighbor> intra = sub.graph.Neighbors(v);
      size_t ii = 0;
      size_t bi = p.has_boundary() ? p.boundary_offsets[v] : 0;
      const size_t be = p.has_boundary() ? p.boundary_offsets[v + 1] : 0;
      while (ii < intra.size() || bi < be) {
        bool take_intra;
        NodeId intra_global = 0;
        if (ii < intra.size()) intra_global = sub.to_parent[intra[ii].id];
        if (ii >= intra.size()) {
          take_intra = false;
        } else if (bi >= be) {
          take_intra = true;
        } else {
          take_intra = intra_global < p.boundary_arcs[bi].id;
        }
        if (take_intra) {
          out->arc_dst.push_back(intra_global);
          out->arc_weight.push_back(intra[ii].weight);
          ++ii;
        } else {
          out->arc_dst.push_back(p.boundary_arcs[bi].id);
          out->arc_weight.push_back(p.boundary_arcs[bi].weight);
          ++bi;
        }
      }
      out->arc_offsets.push_back(static_cast<uint32_t>(out->arc_dst.size()));
    }
  }

  const GTreeStore* store_;
  ReaderTag reader_;
  std::vector<TreeNodeId> leaves_;
  size_t next_ = 0;
  uint64_t fingerprint_ = 0;
};

std::unique_ptr<storage::PageScan> GTreeStore::NewPageScan(
    ReaderTag reader) const {
  return std::make_unique<GTreeLeafPageScan>(this, reader);
}

gmine::Result<graph::Graph> GTreeStore::MaterializeFullGraph() const {
  if (!streamed()) return LoadFullGraph();
  // Streamed store: every node's complete adjacency lives in its own
  // page, so two page scans rebuild the CSR — degrees first, then fill.
  // O(n + m) memory in the *result*, by definition of materializing.
  const uint32_t n = num_graph_nodes_;
  std::vector<uint64_t> offsets(n + 1, 0);
  std::unique_ptr<storage::PageScan> scan = NewPageScan();
  storage::GraphPage page;
  while (true) {
    GMINE_ASSIGN_OR_RETURN(bool more, scan->Next(&page));
    if (!more) break;
    for (size_t i = 0; i < page.nodes.size(); ++i) {
      offsets[page.nodes[i] + 1] =
          page.arc_offsets[i + 1] - page.arc_offsets[i];
    }
  }
  for (uint32_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  std::vector<graph::Neighbor> arcs(offsets[n]);
  scan->Reset();
  while (true) {
    GMINE_ASSIGN_OR_RETURN(bool more, scan->Next(&page));
    if (!more) break;
    for (size_t i = 0; i < page.nodes.size(); ++i) {
      uint64_t at = offsets[page.nodes[i]];
      for (uint32_t a = page.arc_offsets[i]; a < page.arc_offsets[i + 1];
           ++a) {
        arcs[at++] = graph::Neighbor{page.arc_dst[a], page.arc_weight[a]};
      }
    }
  }
  return graph::Graph(std::move(offsets), std::move(arcs), {},
                      /*directed=*/false);
}

gmine::Result<std::unique_ptr<GTreeStoreWriter>> GTreeStoreWriter::Begin(
    const std::string& path) {
  std::unique_ptr<GTreeStoreWriter> w(new GTreeStoreWriter());
  w->path_ = path;
  w->file_ = std::fopen(path.c_str(), "wb");
  if (w->file_ == nullptr) {
    return Status::IOError(
        StrFormat("gtree writer: cannot create %s", path.c_str()));
  }
  // Header placeholder; the real header lands last (crash safety: a
  // zeroed header never parses as a store).
  const std::string placeholder(kHeaderSize, '\0');
  GMINE_RETURN_IF_ERROR(w->Append(placeholder));
  return w;
}

GTreeStoreWriter::~GTreeStoreWriter() {
  if (file_ != nullptr) std::fclose(file_);
  // An abandoned (unfinished) build leaves no half-written store behind.
  if (!finished_ && !path_.empty()) std::remove(path_.c_str());
}

Status GTreeStoreWriter::Append(std::string_view blob) {
  if (std::fwrite(blob.data(), 1, blob.size(), file_) != blob.size()) {
    return Status::IOError(
        StrFormat("gtree writer: write to %s failed", path_.c_str()));
  }
  offset_ += blob.size();
  return Status::OK();
}

Status GTreeStoreWriter::AddLeafPage(
    TreeNodeId leaf, const graph::Subgraph& sub,
    const std::vector<uint32_t>& boundary_offsets,
    const std::vector<graph::Neighbor>& boundary_arcs) {
  if (finished_) {
    return Status::InvalidArgument("gtree writer: AddLeafPage after Finish");
  }
  const std::string page =
      SerializeLeafPayload(sub, &boundary_offsets, &boundary_arcs);
  PutVarint32(&directory_, leaf);
  PutVarint64(&directory_, offset_);  // absolute, like Create's directory
  PutVarint64(&directory_, page.size());
  ++num_pages_;
  return Append(page);
}

Status GTreeStoreWriter::Finish(const GTree& tree,
                                const ConnectivityIndex& conn,
                                const graph::LabelStore& labels,
                                uint32_t num_graph_nodes,
                                const GTreeBuildHints* hints,
                                uint64_t applied_lsn) {
  if (finished_) {
    return Status::InvalidArgument("gtree writer: Finish called twice");
  }
  if (num_pages_ != tree.num_leaves()) {
    return Status::InvalidArgument(
        StrFormat("gtree writer: %u pages for %u leaves", num_pages_,
                  tree.num_leaves()));
  }
  SectionTable t;
  const std::string tree_blob = SerializeTree(tree);
  t.tree_off = offset_;
  t.tree_size = tree_blob.size();
  GMINE_RETURN_IF_ERROR(Append(tree_blob));
  const std::string conn_blob = conn.Serialize();
  t.conn_off = offset_;
  t.conn_size = conn_blob.size();
  GMINE_RETURN_IF_ERROR(Append(conn_blob));
  const std::string labels_blob = labels.Serialize();
  t.labels_off = offset_;
  t.labels_size = labels_blob.size();
  GMINE_RETURN_IF_ERROR(Append(labels_blob));
  t.dir_off = offset_;
  t.dir_size = directory_.size();
  GMINE_RETURN_IF_ERROR(Append(directory_));
  // No embedded graph and no journal: the pages (with their boundary
  // arcs) *are* the graph — that is what GTreeStore::streamed() keys on.
  t.graph_off = offset_;
  t.graph_size = 0;
  t.journal_off = offset_;
  t.journal_size = 0;
  t.num_pages = num_pages_;
  t.num_graph_nodes = num_graph_nodes;
  if (hints != nullptr) t.hints = *hints;
  t.applied_lsn = applied_lsn;

  const std::string header = SerializeHeader(t);
  bool ok = std::fflush(file_) == 0 && std::fseek(file_, 0, SEEK_SET) == 0 &&
            std::fwrite(header.data(), 1, header.size(), file_) ==
                header.size() &&
            std::fflush(file_) == 0;
  ok = std::fclose(file_) == 0 && ok;
  file_ = nullptr;
  if (!ok) {
    std::remove(path_.c_str());
    return Status::IOError(
        StrFormat("gtree writer: sealing %s failed", path_.c_str()));
  }
  finished_ = true;
  return Status::OK();
}

bool GTreeStore::IsCached(TreeNodeId leaf) const {
  return pool_->Contains(pool_id_, leaf);
}

GTreeStoreStats GTreeStore::stats() const {
  const storage::BufferPoolStoreStats pool = pool_->store_stats(pool_id_);
  GTreeStoreStats total;
  total.leaf_loads = pool.loads;
  total.cache_hits = pool.hits;
  total.shared_hits = pool.shared_hits;
  total.bytes_read = pool.bytes_loaded;
  total.evictions = pool.evictions;
  total.resident_bytes = pool.resident_bytes;
  total.pinned_bytes = pool.pinned_bytes;
  std::lock_guard<std::mutex> lock(file_mu_);
  total.bytes_read += graph_bytes_read_;
  return total;
}

void GTreeStore::ClearCache() { pool_->DropStore(pool_id_); }

}  // namespace gmine::gtree
