// Connectivity edges (§III-B, Fig. 2): "connectivity edges ... represent
// the number of edges between nodes from the original graph, but that are
// in different communities."
//
// For every original edge whose endpoints fall in different leaves, the
// edge contributes to the connectivity weight of every pair (x, y) where
// x lies on the path leaf(u)..child-of-LCA and y on leaf(v)..child-of-LCA
// — i.e. between any two communities on opposite sides of the edge's
// lowest common ancestor. This generalized aggregation lets the display
// draw connectivity edges between any two visible communities (siblings,
// or a community and its "uncle") without touching the original graph.

#ifndef GMINE_GTREE_CONNECTIVITY_H_
#define GMINE_GTREE_CONNECTIVITY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "gtree/gtree.h"

namespace gmine::gtree {

/// One aggregated connectivity edge between two communities.
struct ConnectivityEdge {
  TreeNodeId a = kInvalidTreeNode;
  TreeNodeId b = kInvalidTreeNode;
  /// Number of original cross edges.
  uint64_t count = 0;
  /// Sum of original edge weights.
  double weight = 0.0;
};

/// One pending mutation of a connectivity pair, produced by the edit
/// repair (gtree/edit_repair.h): `count`/`weight` are signed deltas.
struct ConnectivityDelta {
  TreeNodeId a = kInvalidTreeNode;
  TreeNodeId b = kInvalidTreeNode;
  int64_t count = 0;
  double weight = 0.0;
};

/// Aggregated cross-community edge counts for a G-Tree.
class ConnectivityIndex {
 private:
  struct PairStats {
    uint64_t count = 0;
    double weight = 0.0;
  };

 public:
  ConnectivityIndex() = default;

  /// Builds the index by a pass over the graph edges. The pass is split
  /// into fixed node chunks processed in parallel; per-chunk partials
  /// merge in ascending chunk order, so counts and weights are identical
  /// at every thread count (0 = auto, 1 = serial). This is also how the
  /// sharded G-Tree build reconciles edges crossing shard boundaries:
  /// every cross-leaf edge aggregates onto the community pairs either
  /// side of its LCA, wherever the two leaves were built.
  static ConnectivityIndex Build(const graph::Graph& g, const GTree& tree,
                                 int threads = 1);

  /// Cross-edge count between the member sets of two communities
  /// (neither may be an ancestor of the other; otherwise returns 0).
  uint64_t CountBetween(TreeNodeId a, TreeNodeId b) const;

  /// Cross-edge weight between two communities.
  double WeightBetween(TreeNodeId a, TreeNodeId b) const;

  /// All connectivity edges incident to `id`, heaviest first.
  std::vector<ConnectivityEdge> EdgesOf(TreeNodeId id) const;

  /// Connectivity edges among the given set of communities (the display
  /// set of a Tomahawk context), heaviest first.
  std::vector<ConnectivityEdge> EdgesAmong(
      const std::vector<TreeNodeId>& ids) const;

  /// Total number of distinct community pairs with nonzero connectivity.
  size_t num_pairs() const { return pairs_.size(); }

  /// Applies signed pair deltas in order (the incremental edit path:
  /// adding/removing one cross-leaf edge contributes ±1/±w to every pair
  /// on the leaf-to-LCA path product — see edit_repair.cc). Pairs whose
  /// count reaches zero are erased, including their adjacency rows, so a
  /// delta-maintained index answers exactly like a from-scratch Build
  /// (weights may differ by float-summation rounding only). Infallible:
  /// a delta driving a count negative clamps to erase (repair never
  /// produces one).
  void ApplyDeltas(const std::vector<ConnectivityDelta>& deltas);

  /// Serialization for the single-file store.
  std::string Serialize() const;
  static gmine::Result<ConnectivityIndex> Deserialize(std::string_view blob);

  /// Streaming accumulation for out-of-core builds (gtree/
  /// stream_build.h): the same LCA path-product aggregation as Build,
  /// fed one cross-leaf edge at a time instead of scanning a resident
  /// graph. Feed each undirected edge exactly once (the builder uses
  /// u < v) and fold the result with ConnectivityIndex::FromAccumulator.
  /// Memory is O(distinct community pairs), never O(edges).
  class Accumulator {
   public:
    explicit Accumulator(const GTree* tree) : tree_(tree) {}

    /// Folds one original edge whose endpoints sit in different leaves.
    /// Intra-leaf edges are skipped internally, so callers may simply
    /// feed every edge once.
    void AddEdge(graph::NodeId u, graph::NodeId v, float weight);

    /// Edges that crossed leaves (diagnostics).
    uint64_t cross_edges() const { return cross_edges_; }

   private:
    friend class ConnectivityIndex;
    const GTree* tree_;
    std::unordered_map<uint64_t, PairStats> pairs_;
    std::vector<TreeNodeId> path_u_;  // scratch, reused per edge
    std::vector<TreeNodeId> path_v_;
    uint64_t cross_edges_ = 0;
  };

  /// Builds an index from a streaming accumulation.
  static ConnectivityIndex FromAccumulator(Accumulator&& acc);

 private:
  static uint64_t Key(TreeNodeId a, TreeNodeId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  /// Merges a partial pair map into this index, maintaining adjacency.
  void AbsorbPairs(const std::unordered_map<uint64_t, PairStats>& pairs);
  std::unordered_map<uint64_t, PairStats> pairs_;
  /// Adjacency: community -> communities it has connectivity with.
  std::unordered_map<TreeNodeId, std::vector<TreeNodeId>> adjacent_;
};

}  // namespace gmine::gtree

#endif  // GMINE_GTREE_CONNECTIVITY_H_
