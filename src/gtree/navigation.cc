#include "gtree/navigation.h"

#include "util/string_util.h"
#include "util/timer.h"

namespace gmine::gtree {

using graph::NodeId;

NavigationSession::NavigationSession(const GTreeStore* store,
                                     TomahawkOptions tomahawk)
    : store_(store), reader_(store->NewReaderTag()), tomahawk_(tomahawk) {
  FocusRoot();
}

void NavigationSession::Record(std::string op, int64_t micros) {
  events_.push_back(InteractionEvent{std::move(op), micros,
                                     context_.DisplaySize(), focus_});
}

Status NavigationSession::SetFocus(TreeNodeId id, const char* op,
                                   bool push_history) {
  if (id >= store_->tree().size()) {
    return Status::InvalidArgument(
        StrFormat("focus %u out of range %u", id, store_->tree().size()));
  }
  StopWatch watch;
  if (push_history && focus_ != kInvalidTreeNode && focus_ != id) {
    back_stack_.push_back(focus_);
  }
  focus_ = id;
  context_ = ComputeTomahawk(store_->tree(), focus_, tomahawk_);
  Record(op, watch.ElapsedMicros());
  return Status::OK();
}

Status NavigationSession::FocusRoot() {
  return SetFocus(store_->tree().root(), "focus_root", focus_ !=
                                                            kInvalidTreeNode);
}

Status NavigationSession::FocusNode(TreeNodeId id) {
  return SetFocus(id, "focus", true);
}

Status NavigationSession::FocusParent() {
  const TreeNode& f = store_->tree().node(focus_);
  if (f.parent == kInvalidTreeNode) return Status::OK();  // at the root
  return SetFocus(f.parent, "focus_parent", true);
}

Status NavigationSession::FocusChild(size_t index) {
  const TreeNode& f = store_->tree().node(focus_);
  if (index >= f.children.size()) {
    return Status::OutOfRange(
        StrFormat("child %zu of %zu", index, f.children.size()));
  }
  return SetFocus(f.children[index], "focus_child", true);
}

Status NavigationSession::Back() {
  if (back_stack_.empty()) return Status::OK();
  TreeNodeId prev = back_stack_.back();
  back_stack_.pop_back();
  return SetFocus(prev, "back", false);
}

gmine::Result<NodeId> NavigationSession::LocateByLabel(
    std::string_view label) {
  StopWatch watch;
  NodeId v = store_->labels().Find(label);
  if (v == graph::kInvalidNode) {
    return Status::NotFound(
        StrFormat("label '%.*s' not found", static_cast<int>(label.size()),
                  label.data()));
  }
  GMINE_RETURN_IF_ERROR(FocusGraphNode(v));
  // FocusGraphNode recorded a "focus_graph_node" event; amend the op so
  // label queries are distinguishable in the latency log.
  events_.back().op = "label_query";
  events_.back().micros = watch.ElapsedMicros();
  return v;
}

std::vector<std::pair<NodeId, std::string>>
NavigationSession::SearchByPrefix(std::string_view prefix, size_t limit) {
  StopWatch watch;
  std::vector<std::pair<NodeId, std::string>> out;
  for (NodeId v : store_->labels().FindByPrefix(prefix, limit)) {
    out.emplace_back(v, std::string(store_->labels().Label(v)));
  }
  Record("prefix_query", watch.ElapsedMicros());
  return out;
}

Status NavigationSession::FocusGraphNode(NodeId v) {
  TreeNodeId leaf = store_->tree().LeafOf(v);
  if (leaf == kInvalidTreeNode) {
    return Status::NotFound(StrFormat("graph node %u not in tree", v));
  }
  return SetFocus(leaf, "focus_graph_node", true);
}

gmine::Result<std::shared_ptr<const LeafPayload>>
NavigationSession::LoadFocusSubgraph() {
  const TreeNode& f = store_->tree().node(focus_);
  if (!f.IsLeaf()) {
    return Status::InvalidArgument(
        StrFormat("focus %u is not a leaf community", focus_));
  }
  StopWatch watch;
  auto payload = store_->LoadLeaf(focus_, reader_);
  if (!payload.ok()) return payload.status();
  Record("load_subgraph", watch.ElapsedMicros());
  return payload;
}

std::vector<ConnectivityEdge> NavigationSession::ContextConnectivity()
    const {
  return store_->connectivity().EdgesAmong(context_.DisplaySet());
}

Status NavigationSession::Zoom(double factor) {
  if (factor <= 0.0) {
    return Status::InvalidArgument("zoom factor must be positive");
  }
  StopWatch watch;
  view_.zoom *= factor;
  Record("zoom", watch.ElapsedMicros());
  return Status::OK();
}

void NavigationSession::Pan(double dx, double dy) {
  StopWatch watch;
  view_.pan_x += dx;
  view_.pan_y += dy;
  Record("pan", watch.ElapsedMicros());
}

void NavigationSession::ResetView() {
  StopWatch watch;
  view_ = ViewState{};
  Record("reset_view", watch.ElapsedMicros());
}

}  // namespace gmine::gtree
