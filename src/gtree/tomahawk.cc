#include "gtree/tomahawk.h"

#include <algorithm>

namespace gmine::gtree {

std::vector<TreeNodeId> TomahawkContext::DisplaySet() const {
  std::vector<TreeNodeId> out;
  out.reserve(1 + ancestors.size() + children.size() + siblings.size() +
              ancestor_siblings.size());
  out.push_back(focus);
  out.insert(out.end(), ancestors.begin(), ancestors.end());
  out.insert(out.end(), children.begin(), children.end());
  out.insert(out.end(), siblings.begin(), siblings.end());
  out.insert(out.end(), ancestor_siblings.begin(), ancestor_siblings.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

size_t TomahawkContext::DisplaySize() const {
  // Sets are disjoint by construction (ancestor_siblings excludes the
  // focus's own siblings, which live one level below the last ancestor).
  return 1 + ancestors.size() + children.size() + siblings.size() +
         ancestor_siblings.size();
}

TomahawkContext ComputeTomahawk(const GTree& tree, TreeNodeId focus,
                                const TomahawkOptions& options) {
  TomahawkContext ctx;
  ctx.focus = focus;
  const TreeNode& f = tree.node(focus);
  ctx.children = f.children;
  ctx.siblings = tree.Siblings(focus);
  std::vector<TreeNodeId> path = tree.PathFromRoot(focus);
  // path = root..focus; ancestors exclude the focus itself.
  ctx.ancestors.assign(path.begin(), path.end() - 1);
  if (options.include_ancestor_siblings) {
    for (TreeNodeId anc : ctx.ancestors) {
      if (anc == tree.root()) continue;
      for (TreeNodeId s : tree.Siblings(anc)) {
        ctx.ancestor_siblings.push_back(s);
      }
    }
  }
  return ctx;
}

uint64_t FullExpansionSize(const GTree& tree, TreeNodeId focus) {
  // Subtree under the focus plus the ancestor path that must stay
  // visible for context.
  uint64_t subtree = tree.SubtreeNodeCount(focus);
  uint64_t above = tree.node(focus).depth;  // ancestors on the path
  return subtree + above;
}

}  // namespace gmine::gtree
