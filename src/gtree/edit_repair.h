// Incremental G-Tree maintenance under graph edits (docs/EDITS.md).
//
// A full rebuild re-partitions the whole graph on every ApplyEdit; this
// module instead classifies each queued graph::GraphEdit operation
// against the live hierarchy and computes the minimal repair:
//
//   edge add/remove inside one leaf   -> rewrite that leaf's page only
//   edge add/remove across two leaves -> exact connectivity-row deltas
//                                        along the leaf-to-LCA paths
//   vertex add                        -> adopt into the leaf holding the
//                                        plurality of its edges; re-split
//                                        the leaf with its lineage-salted
//                                        seed when it overflows
//   vertex remove                     -> shrink its leaf (pruning emptied
//                                        subtrees); graph ids compact, so
//                                        the store must rewrite pages
//
// The repair is deterministic: overflow re-splits run the same builder
// with partition::ChildLineageSalt-derived seeds, which depend only on
// the community's path from the root, so any sequence of edits yields
// the same hierarchy regardless of thread count or batch grouping.
//
// Correctness contract: the repaired (tree, connectivity) pair is
// navigation-equivalent to re-deriving every structure from scratch over
// the post-edit graph and the repaired hierarchy — same leaf membership,
// same parent/child traversals, same connectivity counts (weights up to
// float-summation rounding). Verified by gtree_edit_incremental_test.

#ifndef GMINE_GTREE_EDIT_REPAIR_H_
#define GMINE_GTREE_EDIT_REPAIR_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_edit.h"
#include "gtree/builder.h"
#include "gtree/connectivity.h"
#include "gtree/gtree.h"
#include "util/status.h"

namespace gmine::gtree {

/// Operation counts by repair class (reported by `gmine edit`).
struct EditClassification {
  uint64_t intra_leaf_edge_ops = 0;  // edge deltas inside one leaf
  uint64_t cross_leaf_edge_ops = 0;  // edge deltas across two leaves
  uint64_t added_vertices = 0;
  uint64_t removed_vertices = 0;
  /// Vertex removal compacts graph ids: every page's global-id mapping
  /// shifts, so the store must take its rewrite path.
  bool needs_remap = false;
};

/// Repair tunables.
struct RepairOptions {
  /// The knobs the hierarchy was originally built with — overflow
  /// re-splits must use the same fanout/levels/partition settings to
  /// stay consistent with the rest of the tree.
  GTreeBuildOptions build;
  /// A leaf exceeding this many members after an edit is re-split
  /// (when its depth still allows children). 0 = auto: 4x the builder's
  /// granularity floor (min_partition_size, itself defaulting to
  /// 2 * fanout).
  uint32_t max_leaf_size = 0;
};

/// Outcome of one repair: the post-edit hierarchy plus everything the
/// store needs to invalidate only what changed.
struct RepairResult {
  GTree tree;
  /// Old tree id -> new tree id; kInvalidTreeNode for pruned nodes.
  /// Identity when the topology did not change.
  std::vector<TreeNodeId> old_to_new;
  /// New-id leaves whose pages must be rewritten (membership or
  /// intra-leaf edge change, or a leaf minted by a re-split). Sorted.
  std::vector<TreeNodeId> dirty_leaves;
  /// Exact connectivity-row deltas, valid only when
  /// `rebuild_connectivity` is false; apply with
  /// ConnectivityIndex::ApplyDeltas.
  std::vector<ConnectivityDelta> conn_deltas;
  /// True when the tree topology changed (re-split or prune): tree ids
  /// shifted, so the connectivity index must be rebuilt over the new
  /// tree instead of delta-patched.
  bool rebuild_connectivity = false;
  bool topology_changed = false;
  EditClassification classification;
  /// Leaves re-split through BuildRegionSubtree.
  uint32_t subtree_rebuilds = 0;
};

/// Computes the minimal repair of `tree` for `edit`. `base` is the
/// pre-edit graph the edit was built against and `applied` the result of
/// edit.Apply(base) / ApplyFast(base) — the caller already needs both,
/// so the repair never re-applies the edit. Fails when the edit empties
/// the graph.
gmine::Result<RepairResult> RepairGTree(const GTree& tree,
                                        const graph::Graph& base,
                                        const graph::GraphEdit& edit,
                                        const graph::EditResult& applied,
                                        const RepairOptions& options);

/// The lineage salt of `id` derived from its path ordinals in `tree`
/// (partition::ChildLineageSalt folded from the root). Exposed so tests
/// can verify a re-split equals a from-scratch build of that region.
uint64_t LineageSaltOf(const GTree& tree, TreeNodeId id);

}  // namespace gmine::gtree

#endif  // GMINE_GTREE_EDIT_REPAIR_H_
