// Hierarchy statistics: the per-level profile of a G-Tree (community
// counts and sizes per depth, cross edges resolved at each level). The
// paper quotes exactly these numbers for its DBLP hierarchy ("626
// communities with an average of 500 nodes per community"); this module
// computes them for any tree and backs the F1 report.

#ifndef GMINE_GTREE_STATS_H_
#define GMINE_GTREE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "gtree/gtree.h"

namespace gmine::gtree {

/// One hierarchy level (depth d).
struct LevelStats {
  uint32_t depth = 0;
  uint32_t communities = 0;
  uint64_t min_size = 0;       // graph nodes under the smallest community
  uint64_t max_size = 0;
  double mean_size = 0.0;
  /// Leaves at this depth (trees need not be balanced).
  uint32_t leaves = 0;
};

/// Full hierarchy profile.
struct HierarchyStats {
  std::vector<LevelStats> levels;  // index = depth
  /// cross_edges_at[d] = graph edges whose endpoints' leaves have their
  /// lowest common ancestor at depth d (d < height); index 0 counts the
  /// edges crossing top-level communities. Intra-leaf edges are in
  /// intra_leaf_edges.
  std::vector<uint64_t> cross_edges_at;
  uint64_t intra_leaf_edges = 0;

  /// Multi-line table for reports.
  std::string ToString() const;
};

/// Computes the profile (one pass over tree + edges).
HierarchyStats ComputeHierarchyStats(const graph::Graph& g,
                                     const GTree& tree);

}  // namespace gmine::gtree

#endif  // GMINE_GTREE_STATS_H_
