#include "gtree/gtree.h"

#include <algorithm>

#include "util/string_util.h"

namespace gmine::gtree {

using graph::NodeId;

gmine::Result<GTree> GTree::FromNodes(std::vector<TreeNode> nodes,
                                      uint32_t num_graph_nodes) {
  GTree tree;
  if (nodes.empty()) {
    return Status::InvalidArgument("GTree: no nodes");
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].id != i) {
      return Status::InvalidArgument(
          StrFormat("GTree: node %zu has id %u", i, nodes[i].id));
    }
  }
  if (nodes[0].parent != kInvalidTreeNode) {
    return Status::InvalidArgument("GTree: node 0 must be the root");
  }
  // Validate parent/child symmetry and compute height/leaf count.
  for (const TreeNode& tn : nodes) {
    if (tn.id != 0) {
      if (tn.parent >= nodes.size()) {
        return Status::InvalidArgument("GTree: bad parent id");
      }
      const TreeNode& p = nodes[tn.parent];
      if (std::find(p.children.begin(), p.children.end(), tn.id) ==
          p.children.end()) {
        return Status::InvalidArgument(
            StrFormat("GTree: node %u missing from parent %u child list",
                      tn.id, tn.parent));
      }
      if (tn.depth != p.depth + 1) {
        return Status::InvalidArgument("GTree: inconsistent depth");
      }
    }
    if (!tn.IsLeaf() && !tn.members.empty()) {
      return Status::InvalidArgument(
          "GTree: interior nodes must not hold members");
    }
  }

  tree.leaf_of_.assign(num_graph_nodes, kInvalidTreeNode);
  for (const TreeNode& tn : nodes) {
    if (!tn.IsLeaf()) continue;
    ++tree.num_leaves_;
    tree.height_ = std::max(tree.height_, tn.depth);
    for (NodeId v : tn.members) {
      if (v >= num_graph_nodes) {
        return Status::InvalidArgument("GTree: member out of graph range");
      }
      if (tree.leaf_of_[v] != kInvalidTreeNode) {
        return Status::InvalidArgument(
            StrFormat("GTree: graph node %u in two leaves", v));
      }
      tree.leaf_of_[v] = tn.id;
    }
  }
  for (NodeId v = 0; v < num_graph_nodes; ++v) {
    if (tree.leaf_of_[v] == kInvalidTreeNode) {
      return Status::InvalidArgument(
          StrFormat("GTree: graph node %u unassigned", v));
    }
  }
  tree.nodes_ = std::move(nodes);
  return tree;
}

std::vector<TreeNodeId> GTree::PathFromRoot(TreeNodeId id) const {
  std::vector<TreeNodeId> path;
  for (TreeNodeId cur = id; cur != kInvalidTreeNode;
       cur = nodes_[cur].parent) {
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

TreeNodeId GTree::LowestCommonAncestor(TreeNodeId a, TreeNodeId b) const {
  while (a != b) {
    if (nodes_[a].depth >= nodes_[b].depth) {
      a = nodes_[a].parent;
    } else {
      b = nodes_[b].parent;
    }
    if (a == kInvalidTreeNode) return b;
    if (b == kInvalidTreeNode) return a;
  }
  return a;
}

std::vector<TreeNodeId> GTree::Siblings(TreeNodeId id) const {
  std::vector<TreeNodeId> out;
  TreeNodeId p = nodes_[id].parent;
  if (p == kInvalidTreeNode) return out;
  for (TreeNodeId c : nodes_[p].children) {
    if (c != id) out.push_back(c);
  }
  return out;
}

std::vector<TreeNodeId> GTree::LeavesUnder(TreeNodeId id) const {
  std::vector<TreeNodeId> out;
  std::vector<TreeNodeId> stack = {id};
  while (!stack.empty()) {
    TreeNodeId cur = stack.back();
    stack.pop_back();
    const TreeNode& tn = nodes_[cur];
    if (tn.IsLeaf()) {
      out.push_back(cur);
    } else {
      for (TreeNodeId c : tn.children) stack.push_back(c);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> GTree::MembersUnder(TreeNodeId id) const {
  std::vector<NodeId> out;
  for (TreeNodeId leaf : LeavesUnder(id)) {
    const auto& m = nodes_[leaf].members;
    out.insert(out.end(), m.begin(), m.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t GTree::SubtreeNodeCount(TreeNodeId id) const {
  uint64_t count = 0;
  std::vector<TreeNodeId> stack = {id};
  while (!stack.empty()) {
    TreeNodeId cur = stack.back();
    stack.pop_back();
    ++count;
    for (TreeNodeId c : nodes_[cur].children) stack.push_back(c);
  }
  return count;
}

TreeNodeId GTree::FindByName(std::string_view name) const {
  for (const TreeNode& tn : nodes_) {
    if (tn.name == name) return tn.id;
  }
  return kInvalidTreeNode;
}

bool GTree::SameLeafMembership(const GTree& other) const {
  if (leaf_of_.size() != other.leaf_of_.size()) return false;
  // Canonical form: every node maps to the smallest member of its leaf.
  // Two trees agree iff the representative arrays agree.
  auto representatives = [](const GTree& t) {
    std::vector<NodeId> leaf_min(t.nodes_.size(), graph::kInvalidNode);
    std::vector<NodeId> rep(t.leaf_of_.size(), graph::kInvalidNode);
    for (NodeId v = 0; v < t.leaf_of_.size(); ++v) {
      TreeNodeId leaf = t.leaf_of_[v];
      if (leaf_min[leaf] == graph::kInvalidNode) leaf_min[leaf] = v;
      rep[v] = leaf_min[leaf];
    }
    return rep;
  };
  return representatives(*this) == representatives(other);
}

double GTree::MeanLeafSize() const {
  if (num_leaves_ == 0) return 0.0;
  uint64_t total = 0;
  for (const TreeNode& tn : nodes_) {
    if (tn.IsLeaf()) total += tn.members.size();
  }
  return static_cast<double>(total) / num_leaves_;
}

std::string GTree::DebugString() const {
  return StrFormat(
      "GTree{communities=%u, height=%u, leaves=%u, mean_leaf=%.1f}", size(),
      height(), num_leaves(), MeanLeafSize());
}

}  // namespace gmine::gtree
