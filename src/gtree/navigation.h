// Interactive navigation session over a G-Tree store (§III-B): "the
// system keeps track of the connectivity among communities ... When the
// user changes the focus position on the tree structure, the system works
// on demand to calculate and present contextual information."
//
// Every user gesture is an API call here; each call records an
// InteractionEvent with its latency and resulting display-set size —
// the raw data behind bench_navigation (Fig. 3) and bench_tomahawk
// (Fig. 4).

#ifndef GMINE_GTREE_NAVIGATION_H_
#define GMINE_GTREE_NAVIGATION_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "gtree/connectivity.h"
#include "gtree/store.h"
#include "gtree/tomahawk.h"
#include "util/status.h"

namespace gmine::gtree {

/// One recorded user interaction.
struct InteractionEvent {
  std::string op;            // "focus", "expand", "label_query", ...
  int64_t micros = 0;        // wall time of the operation
  size_t display_size = 0;   // Tomahawk display-set size afterwards
  TreeNodeId focus = kInvalidTreeNode;
};

/// Camera state of the session ("zoom, pan" in §III-B's basic
/// interaction list). Applied by the engine when rendering views.
struct ViewState {
  double zoom = 1.0;
  double pan_x = 0.0;
  double pan_y = 0.0;
};

/// A navigation session: focus + context + history over an open store.
///
/// Self-contained per-user state over a shared read-only store: the
/// session never mutates the store beyond its internally-synchronized
/// page cache, so any number of sessions can run against one store
/// concurrently — each individual session must still be driven from one
/// thread at a time (core::SessionManager enforces this for pools).
class NavigationSession {
 public:
  /// Starts at the root. Does not own the store, which must outlive the
  /// session.
  explicit NavigationSession(const GTreeStore* store,
                             TomahawkOptions tomahawk = {});

  /// Current focus community.
  TreeNodeId focus() const { return focus_; }

  /// Current Tomahawk context (recomputed on every focus change).
  const TomahawkContext& context() const { return context_; }

  /// Moves the focus to the root.
  Status FocusRoot();

  /// Moves the focus to an arbitrary community.
  Status FocusNode(TreeNodeId id);

  /// Moves the focus to the parent ("zoom out"). No-op at the root.
  Status FocusParent();

  /// Moves the focus to the `index`-th child ("zoom in").
  Status FocusChild(size_t index);

  /// Returns to the previous focus (interaction history).
  Status Back();

  /// Locates a graph node by exact label and focuses its leaf community
  /// (the §III-B label query). Returns the graph node id.
  gmine::Result<graph::NodeId> LocateByLabel(std::string_view label);

  /// Autocomplete support: labels starting with `prefix` (with node
  /// ids), capped at `limit`, in label order. Recorded as
  /// "prefix_query"; does not move the focus.
  std::vector<std::pair<graph::NodeId, std::string>> SearchByPrefix(
      std::string_view prefix, size_t limit = 10);

  /// Focuses the leaf community containing graph node `v`.
  Status FocusGraphNode(graph::NodeId v);

  /// Loads the focused leaf's subgraph from the store ("the system brings
  /// the correspondent graph nodes from disk to memory"). Focus must be
  /// a leaf.
  gmine::Result<std::shared_ptr<const LeafPayload>> LoadFocusSubgraph();

  /// Connectivity edges among the current display set, heaviest first.
  std::vector<ConnectivityEdge> ContextConnectivity() const;

  /// Current camera state.
  const ViewState& view() const { return view_; }

  /// Multiplies the zoom by `factor` (> 0); recorded as "zoom".
  Status Zoom(double factor);

  /// Pans by a device-space delta; recorded as "pan".
  void Pan(double dx, double dy);

  /// Resets zoom and pan; recorded as "reset_view".
  void ResetView();

  /// All recorded interactions, oldest first.
  const std::vector<InteractionEvent>& history() const { return events_; }

  /// Underlying store (for rendering and stats).
  const GTreeStore* store() const { return store_; }

  /// This session's identity in the store's cross-session cache
  /// accounting (GTreeStoreStats::shared_hits).
  ReaderTag reader_tag() const { return reader_; }

 private:
  void Record(std::string op, int64_t micros);
  Status SetFocus(TreeNodeId id, const char* op, bool push_history);

  const GTreeStore* store_;
  ReaderTag reader_ = 0;
  TomahawkOptions tomahawk_;
  TreeNodeId focus_ = kInvalidTreeNode;
  TomahawkContext context_;
  ViewState view_;
  std::vector<TreeNodeId> back_stack_;
  std::vector<InteractionEvent> events_;
};

}  // namespace gmine::gtree

#endif  // GMINE_GTREE_NAVIGATION_H_
