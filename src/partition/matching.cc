#include "partition/matching.h"

namespace gmine::partition {

using graph::Graph;
using graph::Neighbor;
using graph::NodeId;

namespace {
std::vector<NodeId> RandomOrder(uint32_t n, Rng* rng) {
  std::vector<NodeId> order(n);
  for (uint32_t v = 0; v < n; ++v) order[v] = v;
  rng->Shuffle(&order);
  return order;
}
}  // namespace

Matching HeavyEdgeMatching(const Graph& g, Rng* rng) {
  const uint32_t n = g.num_nodes();
  Matching match(n);
  for (uint32_t v = 0; v < n; ++v) match[v] = v;
  for (NodeId v : RandomOrder(n, rng)) {
    if (match[v] != v) continue;  // already matched
    NodeId best = graph::kInvalidNode;
    float best_w = -1.0f;
    for (const Neighbor& nb : g.Neighbors(v)) {
      if (nb.id == v || match[nb.id] != nb.id) continue;
      if (nb.weight > best_w) {
        best_w = nb.weight;
        best = nb.id;
      }
    }
    if (best != graph::kInvalidNode) {
      match[v] = best;
      match[best] = v;
    }
  }
  return match;
}

Matching RandomMatching(const Graph& g, Rng* rng) {
  const uint32_t n = g.num_nodes();
  Matching match(n);
  for (uint32_t v = 0; v < n; ++v) match[v] = v;
  for (NodeId v : RandomOrder(n, rng)) {
    if (match[v] != v) continue;
    // Reservoir-sample one unmatched neighbor.
    NodeId pick = graph::kInvalidNode;
    uint64_t seen = 0;
    for (const Neighbor& nb : g.Neighbors(v)) {
      if (nb.id == v || match[nb.id] != nb.id) continue;
      ++seen;
      if (rng->Uniform(seen) == 0) pick = nb.id;
    }
    if (pick != graph::kInvalidNode) {
      match[v] = pick;
      match[pick] = v;
    }
  }
  return match;
}

size_t MatchedPairCount(const Matching& m) {
  size_t pairs = 0;
  for (size_t v = 0; v < m.size(); ++v) {
    if (m[v] != v && m[v] > v) ++pairs;
  }
  return pairs;
}

bool ValidateMatching(const graph::Graph& g, const Matching& m) {
  if (m.size() != g.num_nodes()) return false;
  for (NodeId v = 0; v < m.size(); ++v) {
    NodeId u = m[v];
    if (u >= m.size()) return false;
    if (m[u] != v) return false;
    if (u != v && !g.HasEdge(v, u)) return false;
  }
  return true;
}

}  // namespace gmine::partition
