// Partition quality metrics: edge cut, balance, modularity. Shared by the
// partitioner (objective tracking), the tests (invariants) and the
// ablation benchmark bench_partition_quality.

#ifndef GMINE_PARTITION_QUALITY_H_
#define GMINE_PARTITION_QUALITY_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace gmine::partition {

/// Total weight of edges whose endpoints lie in different parts
/// (undirected edges counted once).
double EdgeCut(const graph::Graph& g, const std::vector<uint32_t>& assignment);

/// Parallel edge cut over fixed node chunks. The per-chunk partials are
/// folded in ascending chunk order, so the sum is bit-identical at every
/// thread count (the chunking depends only on the grain, never on
/// `threads`; it may differ in the last ulps from the serial overload).
double EdgeCut(const graph::Graph& g, const std::vector<uint32_t>& assignment,
               int threads);

/// Number (not weight) of cut edges.
uint64_t CutEdgeCount(const graph::Graph& g,
                      const std::vector<uint32_t>& assignment);

/// Sum of node weights per part.
std::vector<double> PartWeights(const graph::Graph& g,
                                const std::vector<uint32_t>& assignment,
                                uint32_t k);

/// max part weight / (total weight / k); 1.0 = perfectly balanced.
double Imbalance(const graph::Graph& g,
                 const std::vector<uint32_t>& assignment, uint32_t k);

/// Newman modularity Q of the partition on the weighted graph.
double Modularity(const graph::Graph& g,
                  const std::vector<uint32_t>& assignment, uint32_t k);

/// Number of non-empty parts.
uint32_t NonEmptyParts(const std::vector<uint32_t>& assignment, uint32_t k);

}  // namespace gmine::partition

#endif  // GMINE_PARTITION_QUALITY_H_
