// Graph contraction for the multilevel partitioner: collapse each matched
// pair into one coarse node whose weight is the sum of the pair's weights;
// parallel coarse edges merge by summing weights.

#ifndef GMINE_PARTITION_COARSEN_H_
#define GMINE_PARTITION_COARSEN_H_

#include <vector>

#include "graph/graph.h"
#include "partition/matching.h"

namespace gmine::partition {

/// A coarsened graph plus the fine->coarse projection map.
struct CoarseLevel {
  graph::Graph graph;
  /// fine node id -> coarse node id.
  std::vector<graph::NodeId> fine_to_coarse;
};

/// Contracts `g` along `match`. Coarse ids are assigned in order of the
/// smaller endpoint. Self-edges created by contraction (intra-pair edges)
/// are dropped; their weight disappears from the coarse graph, which is
/// correct for cut computation (they can never be cut again).
CoarseLevel ContractMatching(const graph::Graph& g, const Matching& match);

/// Projects a coarse-level partition assignment back to the fine level.
/// Element-wise, so the result is independent of `threads`.
std::vector<uint32_t> ProjectAssignment(
    const std::vector<graph::NodeId>& fine_to_coarse,
    const std::vector<uint32_t>& coarse_assignment, int threads = 1);

}  // namespace gmine::partition

#endif  // GMINE_PARTITION_COARSEN_H_
