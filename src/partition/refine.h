// Fiduccia–Mattheyses boundary refinement for bisections, with hill
// climbing and rollback to the best prefix — the uncoarsening refinement
// step of the multilevel scheme.

#ifndef GMINE_PARTITION_REFINE_H_
#define GMINE_PARTITION_REFINE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace gmine::partition {

/// Tunables for FM refinement.
struct FmOptions {
  /// Maximum alternating passes; each pass moves every node at most once.
  int max_passes = 8;
  /// Allowed imbalance: max side weight <= ideal * imbalance.
  double imbalance = 1.05;
  /// Abort a pass after this many consecutive non-improving moves
  /// (classic FM early exit; 0 = move all nodes).
  uint32_t stall_limit = 64;
};

/// Statistics returned by FM refinement.
struct FmStats {
  int passes = 0;
  uint64_t moves_attempted = 0;
  uint64_t moves_kept = 0;
  double initial_cut = 0.0;
  double final_cut = 0.0;
};

/// Refines a 0/1 `assignment` in place toward lower edge cut while keeping
/// side 0 near `target_fraction` of total node weight (within
/// options.imbalance). Returns move statistics.
FmStats FmRefineBisection(const graph::Graph& g,
                          std::vector<uint32_t>* assignment,
                          double target_fraction, const FmOptions& options);

}  // namespace gmine::partition

#endif  // GMINE_PARTITION_REFINE_H_
