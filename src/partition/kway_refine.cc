#include "partition/kway_refine.h"

#include <algorithm>
#include <queue>

#include "partition/quality.h"

namespace gmine::partition {

using graph::Graph;
using graph::Neighbor;
using graph::NodeId;

KwayRefineStats KwayRefine(const Graph& g, uint32_t k,
                           std::vector<uint32_t>* assignment,
                           const KwayRefineOptions& options) {
  KwayRefineStats stats;
  std::vector<uint32_t>& part = *assignment;
  const uint32_t n = g.num_nodes();
  stats.initial_cut = EdgeCut(g, part);
  stats.final_cut = stats.initial_cut;
  if (n == 0 || k < 2) return stats;

  std::vector<double> weights = PartWeights(g, part, k);
  const double total = g.TotalNodeWeight();
  const double cap = total / k * options.imbalance;

  // Per-node connection weight to each part, rebuilt lazily per pass via
  // a scratch array (k is small: the paper uses k = 5).
  std::vector<double> conn(k, 0.0);

  for (int pass = 0; pass < options.max_passes; ++pass) {
    stats.passes = pass + 1;
    uint64_t moves_this_pass = 0;
    uint32_t stall = 0;
    for (NodeId v = 0; v < n; ++v) {
      uint32_t from = part[v];
      // Compute connectivity to each part and check boundary status.
      std::fill(conn.begin(), conn.end(), 0.0);
      bool boundary = false;
      for (const Neighbor& nb : g.Neighbors(v)) {
        conn[part[nb.id]] += nb.weight;
        if (part[nb.id] != from) boundary = true;
      }
      if (!boundary) continue;
      // Best destination: maximal gain = conn[to] - conn[from], balance
      // respected.
      uint32_t best_to = from;
      double best_gain = 0.0;
      double wv = g.NodeWeight(v);
      for (uint32_t to = 0; to < k; ++to) {
        if (to == from) continue;
        if (weights[to] + wv > cap) continue;
        double gain = conn[to] - conn[from];
        if (gain > best_gain + 1e-12 ||
            (gain > best_gain - 1e-12 && gain > 0 &&
             weights[to] < weights[best_to])) {
          best_gain = gain;
          best_to = to;
        }
      }
      if (best_to != from && best_gain > 1e-12) {
        part[v] = best_to;
        weights[from] -= wv;
        weights[best_to] += wv;
        stats.final_cut -= best_gain;
        ++moves_this_pass;
        stall = 0;
      } else if (options.stall_limit > 0 &&
                 ++stall >= options.stall_limit) {
        break;
      }
    }
    stats.moves += moves_this_pass;
    if (moves_this_pass == 0) break;
  }
  // Recompute exactly to eliminate floating-point drift from the
  // incremental accounting.
  stats.final_cut = EdgeCut(g, part);
  return stats;
}

bool KwayBalanced(const Graph& g, const std::vector<uint32_t>& assignment,
                  uint32_t k, double imbalance) {
  std::vector<double> weights = PartWeights(g, assignment, k);
  double cap = g.TotalNodeWeight() / k * imbalance;
  for (double w : weights) {
    if (w > cap + 1e-9) return false;
  }
  return true;
}

}  // namespace gmine::partition
