#include "partition/refine.h"

#include <algorithm>
#include <queue>

#include "partition/quality.h"

namespace gmine::partition {

using graph::Graph;
using graph::Neighbor;
using graph::NodeId;

namespace {

// Lazy max-heap of (gain, node) with validation against the gain array.
struct GainHeap {
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry> heap;

  void Push(double gain, NodeId v) { heap.emplace(gain, v); }

  // Pops the best valid entry or returns kInvalidNode.
  NodeId PopValid(const std::vector<double>& gain,
                  const std::vector<char>& locked,
                  const std::vector<uint32_t>& side, uint32_t want_side) {
    while (!heap.empty()) {
      auto [gval, v] = heap.top();
      if (locked[v] || side[v] != want_side || gval != gain[v]) {
        heap.pop();
        continue;
      }
      heap.pop();
      return v;
    }
    return graph::kInvalidNode;
  }

  bool Empty() const { return heap.empty(); }
};

}  // namespace

FmStats FmRefineBisection(const Graph& g, std::vector<uint32_t>* assignment,
                          double target_fraction, const FmOptions& options) {
  const uint32_t n = g.num_nodes();
  std::vector<uint32_t>& side = *assignment;
  FmStats stats;
  stats.initial_cut = EdgeCut(g, side);
  stats.final_cut = stats.initial_cut;
  if (n == 0) return stats;

  const double total = g.TotalNodeWeight();
  const double ideal0 = total * target_fraction;
  const double ideal1 = total - ideal0;
  const double max0 = ideal0 * options.imbalance;
  const double max1 = ideal1 * options.imbalance;

  std::vector<double> gain(n, 0.0);
  std::vector<char> locked(n, 0);

  auto compute_gain = [&](NodeId v) {
    double ext = 0.0;
    double in = 0.0;
    for (const Neighbor& nb : g.Neighbors(v)) {
      if (side[nb.id] == side[v]) {
        in += nb.weight;
      } else {
        ext += nb.weight;
      }
    }
    return ext - in;
  };

  for (int pass = 0; pass < options.max_passes; ++pass) {
    stats.passes = pass + 1;
    double w0 = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      if (side[v] == 0) w0 += g.NodeWeight(v);
    }
    double w1 = total - w0;

    std::fill(locked.begin(), locked.end(), 0);
    GainHeap heap0;  // candidates currently on side 0
    GainHeap heap1;  // candidates currently on side 1
    for (NodeId v = 0; v < n; ++v) {
      gain[v] = compute_gain(v);
      (side[v] == 0 ? heap0 : heap1).Push(gain[v], v);
    }

    double cur_cut = stats.final_cut;
    double best_cut = cur_cut;
    std::vector<NodeId> moved;  // move sequence for rollback
    size_t best_prefix = 0;
    uint32_t stall = 0;

    while (true) {
      // Candidate from each side, subject to the balance cap after the
      // move; prefer the higher gain among feasible candidates.
      NodeId c0 = heap0.PopValid(gain, locked, side, 0);
      NodeId c1 = heap1.PopValid(gain, locked, side, 1);
      // Feasibility: moving from side 0 grows side 1 and vice versa.
      bool ok0 = c0 != graph::kInvalidNode &&
                 (w1 + g.NodeWeight(c0) <= max1 || w1 < w0);
      bool ok1 = c1 != graph::kInvalidNode &&
                 (w0 + g.NodeWeight(c1) <= max0 || w0 < w1);
      NodeId v = graph::kInvalidNode;
      if (ok0 && ok1) {
        v = gain[c0] >= gain[c1] ? c0 : c1;
        // Re-queue the loser so it stays eligible.
        if (v == c0) {
          heap1.Push(gain[c1], c1);
        } else {
          heap0.Push(gain[c0], c0);
        }
      } else if (ok0) {
        v = c0;
        if (c1 != graph::kInvalidNode) heap1.Push(gain[c1], c1);
      } else if (ok1) {
        v = c1;
        if (c0 != graph::kInvalidNode) heap0.Push(gain[c0], c0);
      } else {
        break;  // no feasible move
      }

      // Apply the move.
      ++stats.moves_attempted;
      locked[v] = 1;
      cur_cut -= gain[v];
      double wv = g.NodeWeight(v);
      if (side[v] == 0) {
        side[v] = 1;
        w0 -= wv;
        w1 += wv;
      } else {
        side[v] = 0;
        w1 -= wv;
        w0 += wv;
      }
      moved.push_back(v);
      // Update neighbor gains (delta rule: +-2w depending on sides).
      for (const Neighbor& nb : g.Neighbors(v)) {
        if (locked[nb.id]) continue;
        if (side[nb.id] == side[v]) {
          gain[nb.id] -= 2.0 * nb.weight;  // edge became internal
        } else {
          gain[nb.id] += 2.0 * nb.weight;  // edge became external
        }
        (side[nb.id] == 0 ? heap0 : heap1).Push(gain[nb.id], nb.id);
      }

      if (cur_cut < best_cut - 1e-12) {
        best_cut = cur_cut;
        best_prefix = moved.size();
        stall = 0;
      } else if (options.stall_limit > 0 && ++stall >= options.stall_limit) {
        break;
      }
    }

    // Roll back moves beyond the best prefix.
    for (size_t i = moved.size(); i > best_prefix; --i) {
      NodeId v = moved[i - 1];
      side[v] = side[v] == 0 ? 1 : 0;
    }
    stats.moves_kept += best_prefix;

    if (best_cut >= stats.final_cut - 1e-12) {
      stats.final_cut = std::min(stats.final_cut, best_cut);
      break;  // pass produced no improvement
    }
    stats.final_cut = best_cut;
  }
  return stats;
}

}  // namespace gmine::partition
