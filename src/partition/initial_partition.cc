#include "partition/initial_partition.h"

#include <queue>

#include "partition/quality.h"
#include "util/parallel.h"

namespace gmine::partition {

using graph::Graph;
using graph::Neighbor;
using graph::NodeId;

std::vector<uint32_t> GreedyGrowBisection(const Graph& g,
                                          double target_fraction, Rng* rng) {
  const uint32_t n = g.num_nodes();
  std::vector<uint32_t> side(n, 1);
  if (n == 0) return side;
  double total = g.TotalNodeWeight();
  double target = total * target_fraction;
  double grown = 0.0;

  // gain[v] = (weight to part 0) - (weight to part 1) for v in part 1.
  std::vector<double> gain(n, 0.0);
  std::vector<char> in_region(n, 0);
  using Entry = std::pair<double, NodeId>;  // (gain, node), max-heap
  std::priority_queue<Entry> heap;

  auto absorb = [&](NodeId v) {
    side[v] = 0;
    in_region[v] = 1;
    grown += g.NodeWeight(v);
    for (const Neighbor& nb : g.Neighbors(v)) {
      if (in_region[nb.id]) continue;
      gain[nb.id] += 2.0 * nb.weight;  // nb's edge to v flips sides
      heap.emplace(gain[nb.id], nb.id);
    }
  };

  while (grown < target) {
    NodeId next = graph::kInvalidNode;
    // Pop until a fresh entry (lazy deletion).
    while (!heap.empty()) {
      auto [gval, v] = heap.top();
      heap.pop();
      if (!in_region[v] && gval == gain[v]) {
        next = v;
        break;
      }
    }
    if (next == graph::kInvalidNode) {
      // Frontier exhausted (disconnected graph): restart from a random
      // node outside the region.
      uint32_t remaining = 0;
      for (NodeId v = 0; v < n; ++v) remaining += !in_region[v];
      if (remaining == 0) break;
      uint64_t pick = rng->Uniform(remaining);
      for (NodeId v = 0; v < n; ++v) {
        if (!in_region[v] && pick-- == 0) {
          next = v;
          break;
        }
      }
    }
    if (next == graph::kInvalidNode) break;
    // Stop before overshooting badly: absorbing must not push part 0
    // further from the target than staying.
    double w = g.NodeWeight(next);
    if (grown > 0 && grown + w - target > target - grown) break;
    absorb(next);
  }
  return side;
}

std::vector<uint32_t> BestGreedyGrowBisection(const Graph& g,
                                              double target_fraction,
                                              int tries, Rng* rng) {
  std::vector<uint32_t> best;
  double best_cut = -1.0;
  for (int t = 0; t < tries; ++t) {
    std::vector<uint32_t> cand = GreedyGrowBisection(g, target_fraction, rng);
    double cut = EdgeCut(g, cand);
    if (best_cut < 0 || cut < best_cut) {
      best_cut = cut;
      best = std::move(cand);
    }
  }
  return best;
}

std::vector<uint32_t> BestGreedyGrowBisection(const Graph& g,
                                              double target_fraction,
                                              int tries, uint64_t seed,
                                              int threads) {
  if (tries < 1) tries = 1;
  std::vector<std::vector<uint32_t>> cand(tries);
  std::vector<double> cut(tries, 0.0);
  ParallelFor(0, static_cast<size_t>(tries), 1, threads, [&](size_t t) {
    uint64_t mix = seed;
    for (size_t i = 0; i <= t; ++i) SplitMix64(&mix);
    Rng rng(mix);
    cand[t] = GreedyGrowBisection(g, target_fraction, &rng);
    cut[t] = EdgeCut(g, cand[t]);
  });
  size_t best = 0;
  for (size_t t = 1; t < cand.size(); ++t) {
    if (cut[t] < cut[best]) best = t;
  }
  return std::move(cand[best]);
}

std::vector<uint32_t> RandomBisection(const Graph& g, double target_fraction,
                                      Rng* rng) {
  const uint32_t n = g.num_nodes();
  std::vector<NodeId> order(n);
  for (NodeId v = 0; v < n; ++v) order[v] = v;
  rng->Shuffle(&order);
  std::vector<uint32_t> side(n, 1);
  double total = g.TotalNodeWeight();
  double target = total * target_fraction;
  double grown = 0.0;
  for (NodeId v : order) {
    if (grown >= target) break;
    side[v] = 0;
    grown += g.NodeWeight(v);
  }
  return side;
}

}  // namespace gmine::partition
