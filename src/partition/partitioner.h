// Multilevel k-way graph partitioner — the repo's METIS substitute.
//
// Pipeline (Karypis–Kumar multilevel scheme):
//   1. coarsen:   heavy-edge matching + contraction until the graph is
//                 small or stops shrinking;
//   2. initial:   greedy graph growing bisection on the coarsest graph,
//                 best of several random seeds;
//   3. uncoarsen: project the bisection back level by level, running
//                 boundary Fiduccia–Mattheyses refinement at each level.
//
// k-way partitions are produced by recursive bisection with weight-
// proportional targets (left side gets ceil(k/2)/k of the weight), which
// supports arbitrary k. The paper's §III-A only requires *a* balanced
// min-cut partitioner ("any partitioning methodology fits our system").

#ifndef GMINE_PARTITION_PARTITIONER_H_
#define GMINE_PARTITION_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace gmine::partition {

/// Tunables for PartitionGraph.
struct PartitionOptions {
  /// Number of parts (>= 1).
  uint32_t k = 2;
  /// Allowed imbalance: max part weight <= imbalance * ideal.
  double imbalance = 1.08;
  /// Coarsening stops when the graph has at most this many nodes.
  uint32_t coarsen_to = 64;
  /// Random restarts of the initial bisection.
  int initial_tries = 6;
  /// FM passes per uncoarsening level.
  int refine_passes = 6;
  /// Run a direct k-way boundary refinement pass over the final
  /// assignment (kmetis-style), repairing cuts that recursive bisection
  /// cannot see across sibling boundaries.
  bool kway_refine = true;
  /// Seed for all randomized steps.
  uint64_t seed = 1;
  /// Parallelism (see util/parallel.h): 0 = auto, 1 = serial, N = up to
  /// N participants. The assignment is identical at every thread count:
  /// initial bisection tries carry independent per-try seeds, recursive
  /// bisection branches write disjoint node sets, and all reductions use
  /// the deterministic fixed-chunk scheme.
  int threads = 0;
};

/// Result of a k-way partitioning.
struct PartitionResult {
  /// node -> part id in [0, k).
  std::vector<uint32_t> assignment;
  uint32_t k = 0;
  /// Total weight of cut edges.
  double edge_cut = 0.0;
  /// max part weight / ideal part weight.
  double imbalance = 1.0;
  /// Coarsening levels used by the deepest bisection (diagnostics).
  int levels_used = 0;
};

/// Partitions `g` into `options.k` parts by multilevel recursive
/// bisection. Works on weighted graphs (node and edge weights).
/// Guarantees every node receives a part id in [0, k); parts may be empty
/// when k > num_nodes.
gmine::Result<PartitionResult> PartitionGraph(const graph::Graph& g,
                                              const PartitionOptions& options);

/// Baseline: uniformly random balanced assignment (ablation A1).
gmine::Result<PartitionResult> RandomPartition(const graph::Graph& g,
                                               uint32_t k, uint64_t seed);

/// Baseline: BFS region growing — grow part after part from random seeds
/// until each holds ~1/k of the node weight (ablation A1; no refinement).
gmine::Result<PartitionResult> BfsGrowPartition(const graph::Graph& g,
                                                uint32_t k, uint64_t seed);

/// Multilevel bisection building block (exposed for tests): partitions
/// `g` into two sides where side 0 receives `target_fraction` of the
/// total node weight. Returns the 0/1 assignment.
std::vector<uint32_t> MultilevelBisection(const graph::Graph& g,
                                          double target_fraction,
                                          const PartitionOptions& options,
                                          int* levels_used);

// ------------------------------------------------------------ lineage salts
// Deterministic per-community seeding shared by the G-Tree builder and
// the incremental edit repair: a community's salt depends only on its
// path from the root (child ordinals), never on construction order or
// thread count, so re-partitioning a single region in isolation
// reproduces exactly the splits a build of that lineage would make.

/// Salt of the hierarchy root.
uint64_t RootLineageSalt();

/// Salt of the `ordinal`-th child of a community with salt `salt`.
uint64_t ChildLineageSalt(uint64_t salt, uint32_t ordinal);

/// Partitioner seed for a community: mixes the caller's base seed with
/// the community's lineage salt and depth.
uint64_t LineageSeed(uint64_t base_seed, uint64_t salt, uint32_t depth);

}  // namespace gmine::partition

#endif  // GMINE_PARTITION_PARTITIONER_H_
