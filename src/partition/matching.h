// Matchings for multilevel coarsening.
//
// Heavy-edge matching (HEM) visits nodes in random order and matches each
// unmatched node with its unmatched neighbor of maximum edge weight —
// the coarsening rule METIS uses, which preserves heavy intra-community
// edges so communities survive coarsening.

#ifndef GMINE_PARTITION_MATCHING_H_
#define GMINE_PARTITION_MATCHING_H_

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace gmine::partition {

/// A matching: match[v] is v's partner, or v itself when unmatched.
using Matching = std::vector<graph::NodeId>;

/// Heavy-edge matching in random node order. Guarantees match[match[v]]
/// == v and match[v] != v implies the edge (v, match[v]) exists.
Matching HeavyEdgeMatching(const graph::Graph& g, Rng* rng);

/// Random matching (baseline for the coarsening ablation): matches each
/// node with a uniformly random unmatched neighbor.
Matching RandomMatching(const graph::Graph& g, Rng* rng);

/// Number of matched pairs in `m`.
size_t MatchedPairCount(const Matching& m);

/// Validates matching invariants (symmetry, edge existence); returns true
/// when consistent. Used by tests and debug assertions.
bool ValidateMatching(const graph::Graph& g, const Matching& m);

}  // namespace gmine::partition

#endif  // GMINE_PARTITION_MATCHING_H_
