#include "partition/coarsen.h"

#include <cassert>
#include <unordered_map>

#include "graph/graph_builder.h"
#include "util/parallel.h"

namespace gmine::partition {

using graph::Graph;
using graph::GraphBuilder;
using graph::Neighbor;
using graph::NodeId;

CoarseLevel ContractMatching(const Graph& g, const Matching& match) {
  const uint32_t n = g.num_nodes();
  CoarseLevel out;
  out.fine_to_coarse.assign(n, graph::kInvalidNode);
  NodeId next = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (out.fine_to_coarse[v] != graph::kInvalidNode) continue;
    NodeId u = match[v];
    out.fine_to_coarse[v] = next;
    if (u != v) out.fine_to_coarse[u] = next;
    ++next;
  }

  GraphBuilder builder;
  builder.ReserveNodes(next);
  // Coarse node weights = sum of member fine weights.
  std::vector<float> cw(next, 0.0f);
  for (NodeId v = 0; v < n; ++v) {
    cw[out.fine_to_coarse[v]] += g.NodeWeight(v);
  }
  for (NodeId c = 0; c < next; ++c) builder.SetNodeWeight(c, cw[c]);

  // Coarse edges: emit each fine undirected edge once from the smaller
  // coarse endpoint; builder merges parallels by summing.
  for (NodeId v = 0; v < n; ++v) {
    NodeId cv = out.fine_to_coarse[v];
    for (const Neighbor& nb : g.Neighbors(v)) {
      if (nb.id < v) continue;  // visit each undirected edge once
      NodeId cu = out.fine_to_coarse[nb.id];
      if (cu == cv) continue;  // contracted away
      builder.AddEdge(cv, cu, nb.weight);
    }
  }
  auto built = builder.Build();
  assert(built.ok());
  out.graph = std::move(built).value();
  return out;
}

std::vector<uint32_t> ProjectAssignment(
    const std::vector<NodeId>& fine_to_coarse,
    const std::vector<uint32_t>& coarse_assignment, int threads) {
  std::vector<uint32_t> fine(fine_to_coarse.size());
  ParallelForRange(0, fine_to_coarse.size(), 8192, threads,
                   [&](size_t b, size_t e) {
                     for (size_t v = b; v < e; ++v) {
                       fine[v] = coarse_assignment[fine_to_coarse[v]];
                     }
                   });
  return fine;
}

}  // namespace gmine::partition
