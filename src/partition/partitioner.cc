#include "partition/partitioner.h"

#include <algorithm>
#include <queue>

#include "graph/subgraph.h"
#include "partition/coarsen.h"
#include "partition/initial_partition.h"
#include "partition/kway_refine.h"
#include "partition/matching.h"
#include "partition/quality.h"
#include "partition/refine.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace gmine::partition {

using graph::Graph;
using graph::Neighbor;
using graph::NodeId;
using graph::Subgraph;

std::vector<uint32_t> MultilevelBisection(const Graph& g,
                                          double target_fraction,
                                          const PartitionOptions& options,
                                          int* levels_used) {
  Rng rng(options.seed);
  FmOptions fm;
  fm.max_passes = options.refine_passes;
  fm.imbalance = options.imbalance;

  // Coarsening phase.
  std::vector<CoarseLevel> levels;
  const Graph* cur = &g;
  while (cur->num_nodes() > options.coarsen_to) {
    Matching match = HeavyEdgeMatching(*cur, &rng);
    size_t pairs = MatchedPairCount(match);
    // Stop when matching no longer shrinks the graph meaningfully
    // (< 5% reduction) — typical on star-like graphs.
    if (pairs * 20 < cur->num_nodes()) break;
    levels.push_back(ContractMatching(*cur, match));
    cur = &levels.back().graph;
  }
  if (levels_used != nullptr) {
    *levels_used = static_cast<int>(levels.size());
  }

  // Initial partition on the coarsest graph: tries run in parallel with
  // independent per-try seeds, so the winner does not depend on the
  // thread count.
  std::vector<uint32_t> side = BestGreedyGrowBisection(
      *cur, target_fraction, options.initial_tries,
      options.seed ^ 0x8f2d3a9c5b71e604ULL, options.threads);
  FmRefineBisection(*cur, &side, target_fraction, fm);

  // Uncoarsening with per-level refinement (FM itself is sequential by
  // nature; the projection between levels is element-parallel).
  for (size_t i = levels.size(); i > 0; --i) {
    side = ProjectAssignment(levels[i - 1].fine_to_coarse, side,
                             options.threads);
    const Graph& fine =
        (i >= 2) ? levels[i - 2].graph : g;
    FmRefineBisection(fine, &side, target_fraction, fm);
  }
  return side;
}

namespace {

// Recursively bisects the subset `nodes` of `g` into parts
// [first_part, first_part + k), writing into `assignment`.
Status RecursiveBisect(const Graph& g, const std::vector<NodeId>& nodes,
                       uint32_t k, uint32_t first_part,
                       const PartitionOptions& options, uint64_t salt,
                       std::vector<uint32_t>* assignment, int* levels_used) {
  if (k <= 1 || nodes.empty()) {
    for (NodeId v : nodes) (*assignment)[v] = first_part;
    return Status::OK();
  }
  auto sub = InducedSubgraph(g, nodes);
  if (!sub.ok()) return sub.status();
  const Subgraph& s = sub.value();

  uint32_t kl = (k + 1) / 2;  // left gets the larger half for odd k
  uint32_t kr = k - kl;
  double target_left = static_cast<double>(kl) / static_cast<double>(k);

  PartitionOptions sub_opts = options;
  sub_opts.seed = options.seed ^ (salt * 0x9e3779b97f4a7c15ULL + k);
  int lv = 0;
  std::vector<uint32_t> side =
      MultilevelBisection(s.graph, target_left, sub_opts, &lv);
  if (levels_used != nullptr) *levels_used = std::max(*levels_used, lv);

  std::vector<NodeId> left;
  std::vector<NodeId> right;
  left.reserve(nodes.size());
  right.reserve(nodes.size());
  for (uint32_t local = 0; local < side.size(); ++local) {
    (side[local] == 0 ? left : right).push_back(s.ParentId(local));
  }
  // Degenerate split (all nodes one side): force a weight-balanced split
  // so recursion terminates and no part ends up empty unnecessarily.
  if (left.empty() || right.empty()) {
    std::vector<NodeId> all = nodes;
    size_t cut_at = all.size() * kl / k;
    left.assign(all.begin(), all.begin() + cut_at);
    right.assign(all.begin() + cut_at, all.end());
  }
  // The two halves touch disjoint node sets and carry lineage-derived
  // salts, so they can recurse concurrently without changing the result.
  constexpr size_t kParallelBisectMin = 2048;
  if (ResolveThreads(options.threads) > 1 &&
      std::min(left.size(), right.size()) >= kParallelBisectMin) {
    Status status[2];
    int lv_branch[2] = {0, 0};
    ParallelRun(2, [&](int rank, int /*ranks*/) {
      if (rank == 0) {
        status[0] = RecursiveBisect(g, left, kl, first_part, options,
                                    salt * 2 + 1, assignment, &lv_branch[0]);
      } else {
        status[1] = RecursiveBisect(g, right, kr, first_part + kl, options,
                                    salt * 2 + 2, assignment, &lv_branch[1]);
      }
    });
    if (levels_used != nullptr) {
      *levels_used = std::max({*levels_used, lv_branch[0], lv_branch[1]});
    }
    GMINE_RETURN_IF_ERROR(status[0]);
    return status[1];
  }
  GMINE_RETURN_IF_ERROR(RecursiveBisect(g, left, kl, first_part, options,
                                        salt * 2 + 1, assignment,
                                        levels_used));
  return RecursiveBisect(g, right, kr, first_part + kl, options,
                         salt * 2 + 2, assignment, levels_used);
}

PartitionResult FinishResult(const Graph& g, std::vector<uint32_t> assignment,
                             uint32_t k, int levels_used, int threads = 1) {
  PartitionResult out;
  out.k = k;
  out.edge_cut = EdgeCut(g, assignment, threads);
  out.imbalance = Imbalance(g, assignment, k);
  out.levels_used = levels_used;
  out.assignment = std::move(assignment);
  return out;
}

}  // namespace

gmine::Result<PartitionResult> PartitionGraph(const Graph& g,
                                              const PartitionOptions& options) {
  if (options.k == 0) {
    return Status::InvalidArgument("PartitionGraph: k must be >= 1");
  }
  if (options.imbalance < 1.0) {
    return Status::InvalidArgument("PartitionGraph: imbalance must be >= 1");
  }
  if (g.directed()) {
    return Status::InvalidArgument(
        "PartitionGraph: directed graphs not supported (symmetrize first)");
  }
  const uint32_t n = g.num_nodes();
  std::vector<uint32_t> assignment(n, 0);
  if (options.k == 1 || n <= 1) {
    return FinishResult(g, std::move(assignment), options.k, 0);
  }
  if (options.k >= n) {
    for (NodeId v = 0; v < n; ++v) assignment[v] = v;
    return FinishResult(g, std::move(assignment), options.k, 0);
  }
  std::vector<NodeId> all(n);
  for (NodeId v = 0; v < n; ++v) all[v] = v;
  int levels_used = 0;
  GMINE_RETURN_IF_ERROR(RecursiveBisect(g, all, options.k, 0, options, 1,
                                        &assignment, &levels_used));
  if (options.kway_refine && options.k >= 2) {
    KwayRefineOptions kopts;
    kopts.max_passes = options.refine_passes;
    kopts.imbalance = options.imbalance * 1.02;  // slight slack over RB
    KwayRefine(g, options.k, &assignment, kopts);
  }
  return FinishResult(g, std::move(assignment), options.k, levels_used,
                      options.threads);
}

gmine::Result<PartitionResult> RandomPartition(const Graph& g, uint32_t k,
                                               uint64_t seed) {
  if (k == 0) return Status::InvalidArgument("RandomPartition: k >= 1");
  const uint32_t n = g.num_nodes();
  std::vector<NodeId> order(n);
  for (NodeId v = 0; v < n; ++v) order[v] = v;
  Rng rng(seed);
  rng.Shuffle(&order);
  std::vector<uint32_t> assignment(n, 0);
  for (uint32_t i = 0; i < n; ++i) {
    assignment[order[i]] = i % k;  // round-robin over shuffled order
  }
  return FinishResult(g, std::move(assignment), k, 0);
}

gmine::Result<PartitionResult> BfsGrowPartition(const Graph& g, uint32_t k,
                                                uint64_t seed) {
  if (k == 0) return Status::InvalidArgument("BfsGrowPartition: k >= 1");
  const uint32_t n = g.num_nodes();
  std::vector<uint32_t> assignment(n, k - 1);  // leftovers go to last part
  std::vector<char> taken(n, 0);
  Rng rng(seed);
  double total = g.TotalNodeWeight();
  double per_part = total / k;
  uint32_t assigned = 0;

  for (uint32_t part = 0; part + 1 < k && assigned < n; ++part) {
    double grown = 0.0;
    std::queue<NodeId> frontier;
    while (grown < per_part && assigned < n) {
      if (frontier.empty()) {
        // Seed from a random untaken node.
        uint32_t remaining = n - assigned;
        uint64_t pick = rng.Uniform(remaining);
        for (NodeId v = 0; v < n; ++v) {
          if (!taken[v] && pick-- == 0) {
            frontier.push(v);
            break;
          }
        }
      }
      NodeId v = frontier.front();
      frontier.pop();
      if (taken[v]) continue;
      taken[v] = 1;
      assignment[v] = part;
      grown += g.NodeWeight(v);
      ++assigned;
      for (const Neighbor& nb : g.Neighbors(v)) {
        if (!taken[nb.id]) frontier.push(nb.id);
      }
    }
  }
  return FinishResult(g, std::move(assignment), k, 0);
}

namespace {
// 2^64 / golden ratio — the Fibonacci-hashing multiplier. Changing it
// changes every store built with lineage-salted seeds.
constexpr uint64_t kLineageSaltMix = 0x9e3779b97f4a7c15ULL;
}  // namespace

uint64_t RootLineageSalt() { return 1; }

uint64_t ChildLineageSalt(uint64_t salt, uint32_t ordinal) {
  return (salt + ordinal + 1) * kLineageSaltMix;
}

uint64_t LineageSeed(uint64_t base_seed, uint64_t salt, uint32_t depth) {
  return base_seed ^ (salt * kLineageSaltMix + depth);
}

}  // namespace gmine::partition
