#include "partition/quality.h"

#include <algorithm>

#include "util/parallel.h"

namespace gmine::partition {

using graph::Graph;
using graph::Neighbor;
using graph::NodeId;

double EdgeCut(const Graph& g, const std::vector<uint32_t>& assignment) {
  double cut = 0.0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const Neighbor& nb : g.Neighbors(u)) {
      if (nb.id > u && assignment[u] != assignment[nb.id]) {
        cut += nb.weight;
      }
    }
  }
  return cut;
}

double EdgeCut(const Graph& g, const std::vector<uint32_t>& assignment,
               int threads) {
  constexpr size_t kGrain = 4096;
  return ParallelReduce<double>(
      0, g.num_nodes(), kGrain, threads, 0.0,
      [&](size_t b, size_t e) {
        double cut = 0.0;
        for (NodeId u = static_cast<NodeId>(b); u < e; ++u) {
          for (const Neighbor& nb : g.Neighbors(u)) {
            if (nb.id > u && assignment[u] != assignment[nb.id]) {
              cut += nb.weight;
            }
          }
        }
        return cut;
      },
      [](double a, double b) { return a + b; });
}

uint64_t CutEdgeCount(const Graph& g,
                      const std::vector<uint32_t>& assignment) {
  uint64_t cut = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const Neighbor& nb : g.Neighbors(u)) {
      if (nb.id > u && assignment[u] != assignment[nb.id]) ++cut;
    }
  }
  return cut;
}

std::vector<double> PartWeights(const Graph& g,
                                const std::vector<uint32_t>& assignment,
                                uint32_t k) {
  std::vector<double> weights(k, 0.0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    weights[assignment[v]] += g.NodeWeight(v);
  }
  return weights;
}

double Imbalance(const Graph& g, const std::vector<uint32_t>& assignment,
                 uint32_t k) {
  if (k == 0 || g.num_nodes() == 0) return 1.0;
  std::vector<double> w = PartWeights(g, assignment, k);
  double total = 0.0;
  for (double x : w) total += x;
  double ideal = total / k;
  if (ideal <= 0.0) return 1.0;
  return *std::max_element(w.begin(), w.end()) / ideal;
}

double Modularity(const Graph& g, const std::vector<uint32_t>& assignment,
                  uint32_t k) {
  // Q = sum_c [ in_c / m - (deg_c / 2m)^2 ] on weighted degrees.
  double two_m = 0.0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) two_m += g.WeightedDegree(u);
  if (two_m <= 0.0) return 0.0;
  std::vector<double> in(k, 0.0);   // 2 * internal weight
  std::vector<double> deg(k, 0.0);  // total weighted degree
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    uint32_t cu = assignment[u];
    deg[cu] += g.WeightedDegree(u);
    for (const Neighbor& nb : g.Neighbors(u)) {
      if (assignment[nb.id] == cu) in[cu] += nb.weight;
    }
  }
  double q = 0.0;
  for (uint32_t c = 0; c < k; ++c) {
    q += in[c] / two_m - (deg[c] / two_m) * (deg[c] / two_m);
  }
  return q;
}

uint32_t NonEmptyParts(const std::vector<uint32_t>& assignment, uint32_t k) {
  std::vector<char> seen(k, 0);
  for (uint32_t a : assignment) {
    if (a < k) seen[a] = 1;
  }
  uint32_t count = 0;
  for (char s : seen) count += s;
  return count;
}

}  // namespace gmine::partition
