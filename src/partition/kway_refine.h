// Direct k-way boundary refinement (the kmetis-style alternative to
// recursive bisection): greedy moves of boundary nodes to the adjacent
// part with the highest cut gain, subject to the balance constraint.
// Used as a post-pass over any k-way assignment; exposed separately so
// the partitioner ablation (bench_partition_quality) can measure its
// contribution.

#ifndef GMINE_PARTITION_KWAY_REFINE_H_
#define GMINE_PARTITION_KWAY_REFINE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace gmine::partition {

/// Tunables for k-way refinement.
struct KwayRefineOptions {
  /// Maximum full passes over the boundary.
  int max_passes = 8;
  /// Balance cap: part weight <= imbalance * ideal.
  double imbalance = 1.08;
  /// Stop a pass early after this many consecutive non-positive-gain
  /// moves (0 = never).
  uint32_t stall_limit = 256;
};

/// Refinement statistics.
struct KwayRefineStats {
  int passes = 0;
  uint64_t moves = 0;
  double initial_cut = 0.0;
  double final_cut = 0.0;
};

/// Greedily refines `assignment` (values in [0,k)) in place. Only moves
/// that strictly reduce the cut and respect the balance cap are kept, so
/// the cut never increases. Returns statistics.
KwayRefineStats KwayRefine(const graph::Graph& g, uint32_t k,
                           std::vector<uint32_t>* assignment,
                           const KwayRefineOptions& options = {});

/// True if every part weight respects the cap (used by tests).
bool KwayBalanced(const graph::Graph& g,
                  const std::vector<uint32_t>& assignment, uint32_t k,
                  double imbalance);

}  // namespace gmine::partition

#endif  // GMINE_PARTITION_KWAY_REFINE_H_
