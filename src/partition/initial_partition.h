// Initial bisections computed on the coarsest graph of the multilevel
// scheme: greedy graph growing (the METIS GGGP rule) and a random
// bisection baseline.

#ifndef GMINE_PARTITION_INITIAL_PARTITION_H_
#define GMINE_PARTITION_INITIAL_PARTITION_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace gmine::partition {

/// Grows part 0 from a random seed node, repeatedly absorbing the boundary
/// node with the highest cut-reduction gain, until part 0 holds
/// `target_fraction` of the total node weight. Returns a 0/1 assignment.
std::vector<uint32_t> GreedyGrowBisection(const graph::Graph& g,
                                          double target_fraction, Rng* rng);

/// Runs GreedyGrowBisection `tries` times and returns the assignment with
/// the lowest edge cut.
std::vector<uint32_t> BestGreedyGrowBisection(const graph::Graph& g,
                                              double target_fraction,
                                              int tries, Rng* rng);

/// Parallel variant: every try runs with an independent Rng derived from
/// `seed` and the try index, so the winner (lowest cut, ties broken by
/// lowest try index) is identical at every thread count.
std::vector<uint32_t> BestGreedyGrowBisection(const graph::Graph& g,
                                              double target_fraction,
                                              int tries, uint64_t seed,
                                              int threads);

/// Assigns nodes to side 0 until `target_fraction` of total weight is
/// reached, in random order (baseline).
std::vector<uint32_t> RandomBisection(const graph::Graph& g,
                                      double target_fraction, Rng* rng);

}  // namespace gmine::partition

#endif  // GMINE_PARTITION_INITIAL_PARTITION_H_
