#include "core/engine.h"

#include <algorithm>
#include <cstdio>

#include "core/views.h"
#include "graph/subgraph.h"
#include "gtree/connectivity.h"
#include "storage/buffer_pool.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace gmine::core {

using graph::NodeId;
using gtree::TreeNodeId;

namespace {

gtree::GTreeBuildHints HintsFrom(const gtree::GTreeBuildOptions& build) {
  gtree::GTreeBuildHints hints;
  hints.levels = build.levels;
  hints.fanout = build.fanout;
  hints.min_partition_size = build.min_partition_size;
  hints.partition_seed = build.partition.seed;
  return hints;
}

}  // namespace

gmine::Result<std::unique_ptr<GMineEngine>> GMineEngine::Build(
    const graph::Graph& g, const graph::LabelStore& labels,
    const std::string& store_path, const EngineOptions& options) {
  auto tree = gtree::BuildGTree(g, options.build);
  if (!tree.ok()) return tree.status();
  gtree::ConnectivityIndex conn =
      gtree::ConnectivityIndex::Build(g, tree.value(), options.build.threads);
  gtree::GTreeBuildHints hints = HintsFrom(options.build);
  GMINE_RETURN_IF_ERROR(gtree::GTreeStore::Create(store_path, g, tree.value(),
                                                  conn, labels, &hints));
  return Open(store_path, options);
}

gmine::Result<std::unique_ptr<GMineEngine>> GMineEngine::Open(
    const std::string& store_path, const EngineOptions& options) {
  if (options.mem_budget_bytes > 0) {
    // Re-arm the pool this store will page through (global by default)
    // before any leaf IO happens.
    storage::BufferPool& pool = options.store.buffer_pool != nullptr
                                    ? *options.store.buffer_pool
                                    : storage::BufferPool::Global();
    pool.SetBudgetBytes(options.mem_budget_bytes);
  }
  auto store = gtree::GTreeStore::Open(store_path, options.store);
  if (!store.ok()) return store.status();
  std::unique_ptr<GMineEngine> engine(new GMineEngine());
  engine->store_ = std::move(store).value();
  engine->store_path_ = store_path;
  engine->options_ = options;
  // Adopt the store's recorded build shape: edits must re-partition
  // with the parameters the hierarchy was actually built with, not the
  // opener's defaults (see EditOptions::use_store_build_shape).
  const gtree::GTreeBuildHints& hints = engine->store_->build_hints();
  if (options.edit.use_store_build_shape && hints.levels > 0 &&
      hints.fanout >= 2) {
    engine->options_.build.levels = hints.levels;
    engine->options_.build.fanout = hints.fanout;
    engine->options_.build.min_partition_size = hints.min_partition_size;
    engine->options_.build.partition.seed = hints.partition_seed;
  }
  GMINE_RETURN_IF_ERROR(engine->ResetSessions());
  if (options.wal.enabled) {
    GMINE_RETURN_IF_ERROR(engine->AttachWalAndReplay());
  }
  return engine;
}

Status GMineEngine::AttachWalAndReplay() {
  storage::WalOptions wopts = options_.wal;
  // A fresh log starts right past what the store has already durably
  // applied; an existing log keeps its own header LSN.
  wopts.start_lsn = store_->applied_lsn() + 1;
  GMINE_ASSIGN_OR_RETURN(wal_,
                         storage::Wal::Open(store_path_ + ".wal", wopts));
  wal_recovery_ = WalRecoveryStats();
  wal_recovery_.truncated_bytes = wal_->stats().truncated_bytes;
  for (storage::WalRecord& rec : wal_->TakeRecovered()) {
    if (rec.lsn <= store_->applied_lsn()) {
      // Already in the store (the crash hit after the header rewrite
      // but before the checkpoint truncated the log).
      ++wal_recovery_.skipped;
      continue;
    }
    // Replay must not fail: an acked record applied cleanly once, and
    // failed groups were rewound out of the log before their ack
    // (docs/WAL.md). A failure here means the log and store disagree —
    // surface it rather than serve a half-replayed graph.
    GMINE_RETURN_IF_ERROR(ApplyEdit(rec.edit, rec.labels,
                                    /*stats=*/nullptr, rec.lsn));
    ++wal_recovery_.replayed;
  }
  return Status::OK();
}

Status GMineEngine::ResetSessions() {
  SessionManagerOptions sopts = options_.sessions;
  sopts.tomahawk = options_.tomahawk;
  default_session_ = nullptr;
  sessions_ = std::make_unique<SessionManager>(store_.get(), sopts);
  auto id = sessions_->OpenSession(/*pinned=*/true);
  if (!id.ok()) return id.status();
  default_session_id_ = id.value();
  default_session_ = sessions_->PinnedSession(default_session_id_);
  if (default_session_ == nullptr) {
    return Status::Internal("engine default session missing from pool");
  }
  return Status::OK();
}

Status GMineEngine::ApplyEdit(const graph::GraphEdit& edit,
                              const std::vector<std::string>& new_labels,
                              EditStats* stats, uint64_t wal_lsn) {
  StopWatch watch;
  EditStats local;
  EditStats& out = stats != nullptr ? *stats : local;
  out = EditStats();

  auto base = full_graph();
  if (!base.ok()) return base.status();
  // Edits without node removals never remap ids, so the cheap CSR merge
  // applies; removals fall back to the general rebuild-through-builder.
  auto edited = edit.removed_nodes().empty() ? edit.ApplyFast(*base.value())
                                             : edit.Apply(*base.value());
  if (!edited.ok()) return edited.status();
  graph::EditResult result = std::move(edited).value();

  // Remap surviving labels and name the added nodes from `new_labels` —
  // but only when something about them actually changes: the remap
  // copies every label, which must not tax the pure-edge hot path.
  bool adds_labels = false;
  for (size_t i = 0; i < result.added_nodes.size() && i < new_labels.size();
       ++i) {
    adds_labels = adds_labels || !new_labels[i].empty();
  }
  const bool labels_changed =
      (!edit.removed_nodes().empty() && !store_->labels().empty()) ||
      adds_labels;
  graph::LabelStore labels;
  if (labels_changed) {
    for (graph::NodeId old_id = 0;
         old_id < store_->labels().size() &&
         old_id < result.old_to_new.size();
         ++old_id) {
      graph::NodeId new_id = result.old_to_new[old_id];
      if (new_id == graph::kInvalidNode) continue;
      std::string_view label = store_->labels().Label(old_id);
      if (!label.empty()) labels.SetLabel(new_id, std::string(label));
    }
    for (size_t i = 0;
         i < result.added_nodes.size() && i < new_labels.size(); ++i) {
      if (new_labels[i].empty()) continue;
      labels.SetLabel(result.added_nodes[i], new_labels[i]);
    }
  }

  Status published;
  if (options_.edit.incremental) {
    published = ApplyEditIncremental(edit, result, labels, labels_changed,
                                     &out, wal_lsn);
  } else {
    published = ApplyEditFullRebuild(
        result, labels_changed ? labels : store_->labels(), &out, wal_lsn);
  }
  if (!published.ok()) return published;

  default_session_ = sessions_->PinnedSession(default_session_id_);
  if (default_session_ == nullptr) {
    return Status::Internal("engine default session missing after edit");
  }
  {
    std::lock_guard<std::mutex> lock(graph_mu_);
    full_graph_ = std::move(result.graph);
  }
  out.epoch = sessions_->epoch();
  out.micros = watch.ElapsedMicros();
  return Status::OK();
}

Status GMineEngine::ApplyEditIncremental(const graph::GraphEdit& edit,
                                         graph::EditResult& result,
                                         const graph::LabelStore& labels,
                                         bool labels_changed,
                                         EditStats* out, uint64_t wal_lsn) {
  out->incremental = true;
  gtree::RepairOptions ropts;
  ropts.build = options_.build;
  ropts.max_leaf_size = options_.edit.max_leaf_size;
  auto base = full_graph();
  if (!base.ok()) return base.status();
  auto repaired =
      gtree::RepairGTree(store_->tree(), *base.value(), edit, result, ropts);
  if (!repaired.ok()) return repaired.status();
  gtree::RepairResult& rep = repaired.value();
  out->classification = rep.classification;
  out->subtree_rebuilds = rep.subtree_rebuilds;

  // Materialize only the dirty pages.
  std::vector<std::pair<gtree::TreeNodeId, graph::Subgraph>> pages;
  pages.reserve(rep.dirty_leaves.size());
  for (gtree::TreeNodeId leaf : rep.dirty_leaves) {
    auto sub =
        graph::InducedSubgraph(result.graph, rep.tree.node(leaf).members);
    if (!sub.ok()) return sub.status();
    pages.emplace_back(leaf, std::move(sub).value());
  }
  gtree::ConnectivityIndex rebuilt_conn;
  if (rep.rebuild_connectivity) {
    rebuilt_conn = gtree::ConnectivityIndex::Build(
        result.graph, rep.tree, options_.build.threads);
    out->connectivity_rebuilt = true;
  } else {
    out->conn_rows_updated = rep.conn_deltas.size();
  }

  gtree::GTreeStoreUpdate update;
  update.tree = &rep.tree;
  update.graph = &result.graph;
  update.dirty_pages = std::move(pages);
  update.old_to_new = rep.topology_changed ? &rep.old_to_new : nullptr;
  if (rep.rebuild_connectivity) {
    update.replacement_conn = &rebuilt_conn;
  } else {
    update.conn_deltas = &rep.conn_deltas;
  }
  update.labels = labels_changed ? &labels : nullptr;
  // Id-remapping edits compact the store (every page's global-id
  // mapping shifted); everything else appends + journals.
  update.journal_edit = rep.classification.needs_remap ? nullptr : &edit;
  update.applied_lsn = wal_lsn;

  gtree::GTreeStoreUpdateStats ustats;
  GMINE_RETURN_IF_ERROR(sessions_->UpdateEpoch(
      [&]() -> gmine::Result<const gtree::GTreeStore*> {
        GMINE_RETURN_IF_ERROR(store_->ApplyUpdate(update, &ustats));
        return store_.get();
      }));
  out->compacted = ustats.compacted;
  out->defragmented = ustats.defragmented;
  out->pages_written = ustats.compacted
                           ? store_->tree().num_leaves()
                           : ustats.pages_written;
  out->pages_invalidated = ustats.pages_invalidated;
  out->journal_ops = ustats.journal_ops;
  return Status::OK();
}

Status GMineEngine::ApplyEditFullRebuild(graph::EditResult& result,
                                         const graph::LabelStore& labels,
                                         EditStats* out, uint64_t wal_lsn) {
  // Rebuild the hierarchy into a sibling file and swap it in only once
  // every step has succeeded, so a failed edit leaves the engine on the
  // old store instead of half-dismantled.
  auto tree = gtree::BuildGTree(result.graph, options_.build);
  if (!tree.ok()) return tree.status();
  gtree::ConnectivityIndex conn = gtree::ConnectivityIndex::Build(
      result.graph, tree.value(), options_.build.threads);
  const std::string tmp_path = store_path_ + ".tmp";
  gtree::GTreeBuildHints hints = HintsFrom(options_.build);
  Status created = gtree::GTreeStore::Create(
      tmp_path, result.graph, tree.value(), conn, labels, &hints,
      wal_lsn != 0 ? wal_lsn : store_->applied_lsn());
  if (!created.ok()) {
    std::remove(tmp_path.c_str());
    return created;
  }
  // POSIX semantics: rename replaces an existing destination atomically;
  // the current store's open handle keeps reading the old inode until
  // the swap below.
  if (std::rename(tmp_path.c_str(), store_path_.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IOError(
        StrFormat("ApplyEdit: cannot replace %s", store_path_.c_str()));
  }
  auto store = gtree::GTreeStore::Open(store_path_, options_.store);
  if (!store.ok()) return store.status();
  // Live pool sessions survive the store swap through the epoch bump
  // (ids preserved, focus reset to the new root).
  GMINE_RETURN_IF_ERROR(sessions_->UpdateEpoch(
      [&]() -> gmine::Result<const gtree::GTreeStore*> {
        store_ = std::move(store).value();
        return store_.get();
      }));
  out->compacted = true;
  out->connectivity_rebuilt = true;
  out->pages_written = store_->tree().num_leaves();
  return Status::OK();
}

gmine::Result<const graph::Graph*> GMineEngine::full_graph() {
  std::lock_guard<std::mutex> lock(graph_mu_);
  if (!full_graph_.has_value()) {
    auto g = store_->MaterializeFullGraph();
    if (!g.ok()) return g.status();
    full_graph_ = std::move(g).value();
  }
  return &full_graph_.value();
}

gmine::Result<NodeDetails> GMineEngine::GetNodeDetails(NodeId v) {
  TreeNodeId leaf = store_->tree().LeafOf(v);
  if (leaf == gtree::kInvalidTreeNode) {
    return Status::NotFound(StrFormat("node %u not in hierarchy", v));
  }
  NodeDetails out;
  out.id = v;
  out.label = std::string(store_->labels().Label(v));
  out.leaf = leaf;
  for (TreeNodeId t : store_->tree().PathFromRoot(leaf)) {
    out.community_path.push_back(store_->tree().node(t).name);
  }
  // Attribute the page access to the default session so shared_hits
  // keeps meaning "paid for by a different user".
  auto payload = store_->LoadLeaf(leaf, default_session_->reader_tag());
  if (!payload.ok()) return payload.status();
  const graph::Subgraph& sub = payload.value()->subgraph;
  NodeId local = sub.LocalId(v);
  if (local == graph::kInvalidNode) {
    return Status::Internal("leaf payload missing its member");
  }
  out.degree_in_community = sub.graph.Degree(local);
  for (const graph::Neighbor& nb : sub.graph.Neighbors(local)) {
    NodeId parent_id = sub.ParentId(nb.id);
    out.community_neighbors.emplace_back(
        parent_id, std::string(store_->labels().Label(parent_id)));
  }
  return out;
}

gmine::Result<std::vector<std::pair<NodeId, std::string>>>
GMineEngine::ExpandNode(NodeId v, size_t limit) {
  auto g = full_graph();
  if (!g.ok()) return g.status();
  if (v >= (*g.value()).num_nodes()) {
    return Status::InvalidArgument(StrFormat("node %u out of range", v));
  }
  auto nbrs = (*g.value()).Neighbors(v);
  std::vector<graph::Neighbor> sorted(nbrs.begin(), nbrs.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const graph::Neighbor& a, const graph::Neighbor& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.id < b.id;
            });
  if (sorted.size() > limit) sorted.resize(limit);
  std::vector<std::pair<NodeId, std::string>> out;
  out.reserve(sorted.size());
  for (const graph::Neighbor& nb : sorted) {
    out.emplace_back(nb.id, std::string(store_->labels().Label(nb.id)));
  }
  return out;
}

gmine::Result<mining::SubgraphMetrics> GMineEngine::ComputeFocusMetrics(
    const mining::MetricsRequest& request) {
  TreeNodeId focus = default_session_->focus();
  const gtree::TreeNode& f = store_->tree().node(focus);
  if (f.IsLeaf()) {
    auto payload =
        store_->LoadLeaf(focus, default_session_->reader_tag());
    if (!payload.ok()) return payload.status();
    return mining::ComputeMetrics(payload.value()->subgraph.graph, request);
  }
  auto g = full_graph();
  if (!g.ok()) return g.status();
  auto members = store_->tree().MembersUnder(focus);
  auto sub = graph::InducedSubgraph(*g.value(), members);
  if (!sub.ok()) return sub.status();
  return mining::ComputeMetrics(sub.value().graph, request);
}

gmine::Result<csg::ConnectionSubgraph>
GMineEngine::ExtractConnectionSubgraph(const std::vector<NodeId>& sources,
                                       const csg::ExtractionOptions& options) {
  auto g = full_graph();
  if (!g.ok()) return g.status();
  return csg::ExtractConnectionSubgraph(*g.value(), sources, options);
}

gmine::Result<std::vector<NodeId>> GMineEngine::ResolveLabels(
    const std::vector<std::string>& names) const {
  std::vector<NodeId> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    NodeId v = store_->labels().Find(name);
    if (v == graph::kInvalidNode) {
      return Status::NotFound(StrFormat("label '%s' not found",
                                        name.c_str()));
    }
    out.push_back(v);
  }
  return out;
}

gmine::Result<query::QueryResult> GMineEngine::Query(
    std::string_view statement, const query::ExecutorOptions& options) {
  query::Executor executor(
      store_.get(), [this]() { return full_graph(); }, options);
  return executor.ExecuteText(statement);
}

Status GMineEngine::RenderHierarchyView(const std::string& svg_path) {
  ViewOptions vopts;
  vopts.zoom = default_session_->view().zoom;
  vopts.pan_x = default_session_->view().pan_x;
  vopts.pan_y = default_session_->view().pan_y;
  return RenderHierarchyViewSvg(store_->tree(), default_session_->context(),
                                store_->connectivity(), svg_path, vopts);
}

Status GMineEngine::RenderFocusSubgraph(const std::string& svg_path) {
  auto payload = default_session_->LoadFocusSubgraph();
  if (!payload.ok()) return payload.status();
  const graph::Subgraph& sub = payload.value()->subgraph;
  // Remap global labels onto local ids for the view.
  graph::LabelStore local;
  if (!store_->labels().empty()) {
    for (NodeId l = 0; l < sub.to_parent.size(); ++l) {
      std::string_view label = store_->labels().Label(sub.ParentId(l));
      if (!label.empty()) local.SetLabel(l, std::string(label));
    }
  }
  return RenderSubgraphSvg(sub.graph, &local, {}, svg_path);
}

}  // namespace gmine::core
