#include "core/prefetcher.h"

namespace gmine::core {

Prefetcher::Prefetcher(const gtree::GTreeStore* store, size_t queue_capacity)
    : store_(store),
      reader_(store->NewReaderTag()),
      capacity_(queue_capacity == 0 ? 1 : queue_capacity),
      worker_([this] { WorkerLoop(); }) {}

Prefetcher::~Prefetcher() { Stop(); }

size_t Prefetcher::EnqueueChildren(gtree::TreeNodeId focus,
                                   size_t max_leaves) {
  const gtree::GTree& tree = store_->tree();
  if (focus >= tree.size()) return 0;
  size_t queued = 0;
  const gtree::TreeNode& node = tree.node(focus);
  if (node.IsLeaf()) {
    return Enqueue(focus) ? 1 : 0;
  }
  for (gtree::TreeNodeId child : node.children) {
    if (queued >= max_leaves) break;
    if (!tree.node(child).IsLeaf()) continue;
    if (Enqueue(child)) ++queued;
  }
  return queued;
}

bool Prefetcher::Enqueue(gtree::TreeNodeId leaf) {
  const gtree::GTree& tree = store_->tree();
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) return false;
  if (leaf >= tree.size() || !tree.node(leaf).IsLeaf() ||
      queue_.size() >= capacity_) {
    ++stats_.dropped;
    return false;
  }
  queue_.push_back(leaf);
  ++stats_.enqueued;
  cv_.notify_one();
  return true;
}

void Prefetcher::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [this] {
    return stop_ || (queue_.empty() && !busy_);
  });
}

void Prefetcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
    queue_.clear();
  }
  cv_.notify_all();
  drained_.notify_all();
  if (worker_.joinable()) worker_.join();
}

PrefetchStats Prefetcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Prefetcher::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    gtree::TreeNodeId leaf = queue_.front();
    queue_.pop_front();
    busy_ = true;
    lock.unlock();
    // IO happens with the lock released; a slow disk read must not
    // block Enqueue on the request path.
    if (store_->IsCached(leaf)) {
      lock.lock();
      ++stats_.already_cached;
    } else {
      auto payload = store_->LoadLeaf(leaf, reader_);
      lock.lock();
      if (payload.ok()) {
        ++stats_.loaded;
      } else {
        ++stats_.failed;
      }
    }
    busy_ = false;
    if (queue_.empty()) drained_.notify_all();
  }
}

}  // namespace gmine::core
