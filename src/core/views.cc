#include "core/views.h"

#include <algorithm>

#include "graph/graph_io.h"
#include "layout/enclosure.h"
#include "layout/force_directed.h"
#include "layout/tree_layout.h"
#include "render/scene.h"
#include "render/svg_canvas.h"

namespace gmine::core {

using graph::NodeId;

gmine::Result<std::string> HierarchyViewSvgString(
    const gtree::GTree& tree, const gtree::TomahawkContext& context,
    const gtree::ConnectivityIndex& connectivity,
    const ViewOptions& options) {
  layout::EnclosureOptions eopts;
  eopts.root_radius = std::min(options.width, options.height) * 0.46;
  eopts.center = {options.width / 2.0, options.height / 2.0};
  auto enclosure = layout::EnclosureLayout(tree, context, eopts);
  if (!enclosure.ok()) return enclosure.status();
  render::Scene scene = render::BuildHierarchyScene(
      tree, context, enclosure.value(), connectivity);

  render::SvgCanvas canvas(options.width, options.height);
  canvas.Clear(render::kWhite);
  render::Viewport viewport(options.width, options.height);
  // Enclosure layout targets device coordinates; the camera zooms
  // around the canvas center and pans in device pixels.
  viewport.SetZoom(options.zoom);
  viewport.PanBy(options.width / 2.0 * (1.0 - options.zoom) + options.pan_x,
                 options.height / 2.0 * (1.0 - options.zoom) +
                     options.pan_y);
  scene.Render(&canvas, viewport);
  return canvas.ToSvg();
}

Status RenderHierarchyViewSvg(const gtree::GTree& tree,
                              const gtree::TomahawkContext& context,
                              const gtree::ConnectivityIndex& connectivity,
                              const std::string& svg_path,
                              const ViewOptions& options) {
  auto svg = HierarchyViewSvgString(tree, context, connectivity, options);
  if (!svg.ok()) return svg.status();
  return graph::WriteStringToFile(svg.value(), svg_path);
}

namespace {

// Local label store for a subgraph: maps local ids to the labels of
// their original nodes.
graph::LabelStore LocalLabels(const graph::Subgraph& sub,
                              const graph::LabelStore* original) {
  graph::LabelStore out;
  if (original == nullptr || original->empty()) return out;
  for (NodeId local = 0; local < sub.to_parent.size(); ++local) {
    std::string_view label = original->Label(sub.ParentId(local));
    if (!label.empty()) out.SetLabel(local, std::string(label));
  }
  return out;
}

std::unordered_set<NodeId> TopDegreeNodes(const graph::Graph& g,
                                          uint32_t k) {
  std::vector<NodeId> ids(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) ids[v] = v;
  uint32_t kk = std::min<uint32_t>(k, g.num_nodes());
  std::partial_sort(ids.begin(), ids.begin() + kk, ids.end(),
                    [&](NodeId a, NodeId b) {
                      if (g.Degree(a) != g.Degree(b)) {
                        return g.Degree(a) > g.Degree(b);
                      }
                      return a < b;
                    });
  return {ids.begin(), ids.begin() + kk};
}

Status RenderSceneSvg(const render::Scene& scene, const std::string& path,
                      const ViewOptions& options) {
  render::SvgCanvas canvas(options.width, options.height);
  canvas.Clear(render::kWhite);
  render::Viewport viewport(options.width, options.height);
  viewport.FitRect(scene.WorldBounds());
  scene.Render(&canvas, viewport);
  return canvas.WriteFile(path);
}

}  // namespace

Status RenderSubgraphSvg(const graph::Graph& g,
                         const graph::LabelStore* labels,
                         const std::unordered_set<NodeId>& highlight,
                         const std::string& svg_path,
                         const ViewOptions& options) {
  layout::ForceDirectedOptions lopts;
  lopts.area = std::min(options.width, options.height);
  auto laid = layout::ForceDirectedLayout(g, lopts);
  if (!laid.ok()) return laid.status();

  render::GraphSceneOptions sopts;
  sopts.labels = labels;
  sopts.highlight_nodes = highlight;
  sopts.label_nodes = TopDegreeNodes(g, options.label_top_degree);
  render::Scene scene =
      render::BuildGraphScene(g, laid.value().positions, sopts);
  return RenderSceneSvg(scene, svg_path, options);
}

Status RenderConnectionSubgraphSvg(const csg::ConnectionSubgraph& cs,
                                   const graph::LabelStore* original_labels,
                                   const std::string& svg_path,
                                   const ViewOptions& options) {
  const graph::Graph& g = cs.subgraph.graph;
  layout::ForceDirectedOptions lopts;
  lopts.area = std::min(options.width, options.height);
  auto laid = layout::ForceDirectedLayout(g, lopts);
  if (!laid.ok()) return laid.status();

  // Heat color by normalized goodness.
  double max_good = 0.0;
  for (double v : cs.member_goodness) max_good = std::max(max_good, v);
  render::GraphSceneOptions sopts;
  sopts.node_colors.resize(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    double t = max_good > 0 ? cs.member_goodness[v] / max_good : 0.0;
    sopts.node_colors[v] = render::HeatColor(t);
  }
  for (NodeId s : cs.source_locals) sopts.highlight_nodes.insert(s);
  graph::LabelStore local = LocalLabels(cs.subgraph, original_labels);
  sopts.labels = &local;
  sopts.label_nodes = TopDegreeNodes(g, options.label_top_degree);
  render::Scene scene =
      render::BuildGraphScene(g, laid.value().positions, sopts);
  return RenderSceneSvg(scene, svg_path, options);
}

Status RenderTreeDiagramSvg(const gtree::GTree& tree,
                            const std::string& svg_path,
                            gtree::TreeNodeId highlight,
                            const ViewOptions& options) {
  layout::TreeLayoutOptions topts;
  topts.bounds = layout::Rect{options.width * 0.05, options.height * 0.08,
                              options.width * 0.95, options.height * 0.92};
  auto laid = layout::LayeredTreeLayout(tree, topts);
  if (!laid.ok()) return laid.status();
  const auto& pos = laid.value().positions;

  render::Scene scene;
  std::unordered_map<gtree::TreeNodeId, size_t> index;
  for (const gtree::TreeNode& tn : tree.nodes()) {
    render::SceneNode sn;
    sn.position = pos.at(tn.id);
    sn.radius = tn.IsLeaf() ? 3.0 : 5.0;
    sn.color = render::PaletteColor(tn.depth);
    sn.filled = true;
    sn.highlighted = tn.id == highlight;
    if (tn.depth <= 1 || tn.id == highlight) sn.label = tn.name;
    index[tn.id] = scene.nodes.size();
    scene.nodes.push_back(std::move(sn));
  }
  for (const gtree::TreeNode& tn : tree.nodes()) {
    for (gtree::TreeNodeId child : tn.children) {
      render::SceneEdge e;
      e.a = index.at(tn.id);
      e.b = index.at(child);
      e.color = render::kGray;
      e.width = 1.0;
      scene.edges.push_back(e);
    }
  }
  render::SvgCanvas canvas(options.width, options.height);
  canvas.Clear(render::kWhite);
  render::Viewport viewport(options.width, options.height);
  scene.Render(&canvas, viewport);
  return canvas.WriteFile(svg_path);
}

}  // namespace gmine::core
