#include "core/session_manager.h"

#include <chrono>

#include "util/string_util.h"

namespace gmine::core {

namespace {

int64_t SteadyMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* SessionCloseReasonName(SessionCloseReason reason) {
  switch (reason) {
    case SessionCloseReason::kClosed: return "closed";
    case SessionCloseReason::kEvicted: return "evicted";
    case SessionCloseReason::kIdle: return "idle";
  }
  return "?";
}

SessionManager::SessionManager(const gtree::GTreeStore* store,
                               SessionManagerOptions options)
    : store_(store), options_(options) {}

/// RAII dispatch registration against the epoch gate: construction
/// blocks while an epoch update is pending or running, destruction
/// wakes a waiting updater once the in-flight count drains.
class SessionManager::DispatchGuard {
 public:
  explicit DispatchGuard(const SessionManager* mgr) : mgr_(mgr) {
    std::unique_lock<std::mutex> lock(mgr_->epoch_gate_mu_);
    mgr_->epoch_cv_.wait(lock,
                         [&] { return !mgr_->epoch_update_pending_; });
    ++mgr_->active_dispatches_;
  }
  ~DispatchGuard() {
    std::lock_guard<std::mutex> lock(mgr_->epoch_gate_mu_);
    if (--mgr_->active_dispatches_ == 0) mgr_->epoch_cv_.notify_all();
  }
  DispatchGuard(const DispatchGuard&) = delete;
  DispatchGuard& operator=(const DispatchGuard&) = delete;

 private:
  const SessionManager* mgr_;
};

void SessionManager::set_on_session_closed(
    std::function<void(SessionId, SessionCloseReason)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  on_session_closed_ = std::move(fn);
}

void SessionManager::Touch(SessionId id) {
  auto pos = lru_pos_.find(id);
  if (pos != lru_pos_.end()) {
    lru_.splice(lru_.begin(), lru_, pos->second);
  }
}

void SessionManager::Erase(SessionId id) {
  auto pos = lru_pos_.find(id);
  if (pos != lru_pos_.end()) {
    lru_.erase(pos->second);
    lru_pos_.erase(pos);
  }
  sessions_.erase(id);
}

gmine::Result<SessionId> SessionManager::OpenSession(bool pinned) {
  // Registered as a dispatch: the new session reads the store's tree,
  // which an in-flight UpdateEpoch may be mutating.
  DispatchGuard guard(this);
  SessionId victim = 0;
  std::function<void(SessionId, SessionCloseReason)> hook;
  SessionId id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.max_sessions > 0 &&
        sessions_.size() >= options_.max_sessions) {
      // Evict the least-recently-used unpinned session (back of the
      // list).
      bool found = false;
      for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
        if (!sessions_.at(*it)->pinned) {
          victim = *it;
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::Aborted(
            StrFormat("session pool at cap %zu with every session pinned",
                      options_.max_sessions));
      }
      Erase(victim);
      ++stats_.evicted;
      hook = on_session_closed_;
    }
    id = next_id_++;
    auto entry = std::make_shared<Entry>();
    entry->session = std::make_unique<gtree::NavigationSession>(
        store_, options_.tomahawk);
    entry->last_active = SteadyMicros();
    entry->pinned = pinned;
    sessions_.emplace(id, std::move(entry));
    lru_.push_front(id);
    lru_pos_[id] = lru_.begin();
    ++stats_.opened;
  }
  if (hook) hook(victim, SessionCloseReason::kEvicted);
  return id;
}

Status SessionManager::CloseSession(SessionId id) {
  std::function<void(SessionId, SessionCloseReason)> hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sessions_.find(id) == sessions_.end()) {
      return Status::NotFound(
          StrFormat("session %llu is not open (already closed or evicted?)",
                    static_cast<unsigned long long>(id)));
    }
    Erase(id);
    ++stats_.closed;
    hook = on_session_closed_;
  }
  if (hook) hook(id, SessionCloseReason::kClosed);
  return Status::OK();
}

Status SessionManager::WithSession(
    SessionId id, const std::function<Status(gtree::NavigationSession&)>& fn) {
  // Registered for the whole dispatch: an ApplyEdit epoch bump
  // (UpdateEpoch) waits for in-flight callbacks and parks new ones, so
  // a callback never observes the store mid-mutation.
  DispatchGuard guard(this);
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return Status::NotFound(
          StrFormat("session %llu is not open (already closed or evicted?)",
                    static_cast<unsigned long long>(id)));
    }
    entry = it->second;
    entry->last_active = SteadyMicros();
    Touch(id);
  }
  // The shared_ptr keeps the entry alive even if the session is closed
  // or evicted while fn runs; the per-entry mutex serializes callbacks
  // on this session without blocking any other session.
  std::lock_guard<std::mutex> lock(entry->mu);
  return fn(*entry->session);
}

Status SessionManager::UpdateEpoch(
    const std::function<gmine::Result<const gtree::GTreeStore*>()>&
        update) {
  // Close the gate (parking new dispatches immediately) and wait for
  // every in-flight one to drain. Serializes against concurrent
  // updaters via the pending flag itself.
  {
    std::unique_lock<std::mutex> lock(epoch_gate_mu_);
    epoch_cv_.wait(lock, [&] { return !epoch_update_pending_; });
    epoch_update_pending_ = true;
    epoch_cv_.wait(lock, [&] { return active_dispatches_ == 0; });
  }
  // Reopen the gate on every exit path.
  struct GateOpener {
    SessionManager* mgr;
    ~GateOpener() {
      std::lock_guard<std::mutex> lock(mgr->epoch_gate_mu_);
      mgr->epoch_update_pending_ = false;
      mgr->epoch_cv_.notify_all();
    }
  } opener{this};

  auto published = update();
  if (!published.ok()) return published.status();
  if (published.value() == nullptr) {
    return Status::InvalidArgument("UpdateEpoch: update returned no store");
  }
  std::lock_guard<std::mutex> lock(mu_);
  store_ = published.value();
  for (auto& [id, entry] : sessions_) {
    // The closed gate proved no WithSession callback is running, but
    // ListSessions reads pooled sessions under only the entry lock (it
    // is not a gated dispatch) — so take it for the swap.
    std::lock_guard<std::mutex> entry_lock(entry->mu);
    entry->session = std::make_unique<gtree::NavigationSession>(
        store_, options_.tomahawk);
    entry->last_active = SteadyMicros();
  }
  epoch_.fetch_add(1);
  return Status::OK();
}

bool SessionManager::Contains(SessionId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.find(id) != sessions_.end();
}

bool SessionManager::TouchSession(SessionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  it->second->last_active = SteadyMicros();
  Touch(id);
  return true;
}

size_t SessionManager::CloseIdleSessions() {
  if (options_.idle_timeout_micros <= 0) return 0;
  std::vector<SessionId> idle;
  std::function<void(SessionId, SessionCloseReason)> hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int64_t now = SteadyMicros();
    for (const auto& [id, entry] : sessions_) {
      if (entry->pinned) continue;
      if (now - entry->last_active >= options_.idle_timeout_micros) {
        idle.push_back(id);
      }
    }
    for (SessionId id : idle) Erase(id);
    stats_.idle_closed += idle.size();
    hook = on_session_closed_;
  }
  if (hook) {
    for (SessionId id : idle) hook(id, SessionCloseReason::kIdle);
  }
  return idle.size();
}

std::vector<SessionInfo> SessionManager::ListSessions() const {
  // Snapshot the entries under mu_, then read each session under its
  // own lock with mu_ released — a slow WithSession callback delays
  // only its own row, never the pool's open/close/dispatch path.
  std::vector<std::pair<SessionId, std::shared_ptr<Entry>>> snapshot;
  int64_t now = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    now = SteadyMicros();
    snapshot.reserve(lru_.size());
    for (SessionId id : lru_) {
      snapshot.emplace_back(id, sessions_.at(id));
    }
  }
  std::vector<SessionInfo> out;
  out.reserve(snapshot.size());
  for (const auto& [id, entry] : snapshot) {
    SessionInfo info;
    info.id = id;
    info.idle_micros = now - entry->last_active;
    info.pinned = entry->pinned;
    if (!entry->pinned) {
      // Pooled sessions are only ever driven under entry->mu, so this
      // locked read is race-free. Pinned sessions may be mutated
      // through an unlocked raw pointer (PinnedSession / the engine's
      // session()), so reading their state here would race — their
      // rows report identity and idle time only.
      std::lock_guard<std::mutex> session_lock(entry->mu);
      info.focus = entry->session->focus();
      info.interactions = entry->session->history().size();
    }
    out.push_back(info);
  }
  return out;
}

SessionPoolStats SessionManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SessionPoolStats out = stats_;
  out.open_now = sessions_.size();
  return out;
}

size_t SessionManager::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

gtree::NavigationSession* SessionManager::PinnedSession(SessionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end() || !it->second->pinned) return nullptr;
  return it->second->session.get();
}

}  // namespace gmine::core
