// GMineEngine — the system façade tying everything together, mirroring
// the demo's capabilities end to end:
//
//   * Build: recursive partitioning -> G-Tree -> connectivity edges ->
//     single-file store (§III-A);
//   * Navigate: Tomahawk-bounded focus changes, label queries, on-demand
//     leaf loading (§III-B/C) via NavigationSession;
//   * Details on demand: pop-up node information and edge expansion;
//   * Mining: the five §III-B metrics on the focused community;
//   * Connection subgraph extraction (§IV), alone or combined with the
//     hierarchy (Fig. 6);
//   * Rendering: SVG views of every display.

#ifndef GMINE_CORE_ENGINE_H_
#define GMINE_CORE_ENGINE_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/session_manager.h"
#include "csg/extraction.h"
#include "graph/graph.h"
#include "graph/graph_edit.h"
#include "graph/labels.h"
#include "gtree/builder.h"
#include "gtree/edit_repair.h"
#include "gtree/navigation.h"
#include "gtree/store.h"
#include "mining/metrics.h"
#include "query/executor.h"
#include "storage/wal.h"
#include "util/status.h"

namespace gmine::core {

/// ApplyEdit policy.
struct EditOptions {
  /// Repair only the affected subtrees (gtree/edit_repair.h) instead of
  /// rebuilding the whole hierarchy. Off = the legacy full rebuild —
  /// every edit re-partitions the entire graph.
  bool incremental = true;
  /// Leaf re-split threshold; 0 = auto (see gtree::RepairOptions).
  uint32_t max_leaf_size = 0;
  /// Stores record the shape they were built with
  /// (gtree::GTreeBuildHints); when set — the default — Open adopts
  /// that recorded shape into `EngineOptions::build`, so repairs and
  /// rebuilds re-partition with the original levels/fanout/seed even
  /// when the opener passed none. Turn off to force the caller's
  /// `build` options verbatim.
  bool use_store_build_shape = true;
};

/// Engine construction options.
struct EngineOptions {
  gtree::GTreeBuildOptions build;
  /// Store options. Leaf paging (budget, eviction, pinning) lives in
  /// the process-wide buffer pool (docs/STORAGE.md); set
  /// `store.buffer_pool` to give this engine a private pool.
  gtree::GTreeStoreOptions store;
  /// When > 0, Open/Build re-arm the buffer pool's byte budget to this
  /// value (the pool the store uses — global by default). 0 leaves the
  /// pool's current budget alone.
  uint64_t mem_budget_bytes = 0;
  gtree::TomahawkOptions tomahawk;
  /// Session-pool limits (sessions() manager). The `tomahawk` field
  /// above is the single source of truth for navigation contexts: it is
  /// copied over `sessions.tomahawk` when the engine builds the pool,
  /// so set `tomahawk`, not `sessions.tomahawk`.
  SessionManagerOptions sessions;
  /// Node/edge edition policy (ApplyEdit).
  EditOptions edit;
  /// Write-ahead log (docs/WAL.md). When `wal.enabled`, Open attaches
  /// a WAL next to the store (default "<store>.wal") and replays its
  /// tail past the store's applied LSN before serving anything —
  /// committed edits survive a crash. Pair with an EditQueue
  /// (core/edit_queue.h) for group-committed writes.
  storage::WalOptions wal;
};

/// What one ApplyEdit did (reported by `gmine edit`).
struct EditStats {
  gtree::EditClassification classification;
  /// False when the legacy full rebuild ran (policy off).
  bool incremental = false;
  /// Store took its rewrite path (id remap or journal compaction).
  bool compacted = false;
  /// The rewrite was forced by the size-ratio defrag trigger
  /// (GTreeStoreOptions::defrag_wasted_ratio), not the journal.
  bool defragmented = false;
  /// Leaves re-split through the sharded region builder.
  uint32_t subtree_rebuilds = 0;
  /// Dirty pages serialized (incremental append path).
  uint32_t pages_written = 0;
  /// Cache pages invalidated by the update.
  uint32_t pages_invalidated = 0;
  /// Connectivity rows patched in place (0 when rebuilt).
  size_t conn_rows_updated = 0;
  bool connectivity_rebuilt = false;
  /// Journal length after the edit.
  size_t journal_ops = 0;
  /// Pool epoch after the edit.
  uint64_t epoch = 0;
  int64_t micros = 0;
};

/// What Open's WAL replay did (engine.wal_recovery()).
struct WalRecoveryStats {
  uint64_t replayed = 0;  // log records applied to the store
  uint64_t skipped = 0;   // records at or below the store's applied LSN
  uint64_t truncated_bytes = 0;  // torn tail dropped by the WAL scan
};

/// Pop-up node information (details on demand).
struct NodeDetails {
  graph::NodeId id = graph::kInvalidNode;
  std::string label;
  gtree::TreeNodeId leaf = gtree::kInvalidTreeNode;
  /// Community names from the root to the leaf.
  std::vector<std::string> community_path;
  /// Degree within the leaf community subgraph.
  uint32_t degree_in_community = 0;
  /// Neighbors within the leaf community, with labels.
  std::vector<std::pair<graph::NodeId, std::string>> community_neighbors;
};

/// The GMine system.
///
/// Thread-safety: the read-side surface (GetNodeDetails, ExpandNode,
/// ExtractConnectionSubgraph, ResolveLabels, tree/labels accessors) may
/// be called from multiple threads — the store's page cache and the lazy
/// full-graph load are internally synchronized. All navigation goes
/// through the session pool (sessions()): concurrent sessions are safe
/// via SessionManager::WithSession, while the legacy single-session
/// accessor session() hands out the pool's pinned default session and
/// must be driven from one thread at a time. ApplyEdit may run
/// concurrently with pool-driven navigation (sessions()->WithSession):
/// it publishes the repaired store through the pool's epoch bump, which
/// drains in-flight callbacks and re-seats every session. It must still
/// be exclusive against the rest of the engine surface (session(),
/// GetNodeDetails, ExtractConnectionSubgraph, ...), which reads the
/// store without the epoch lock.
class GMineEngine {
 public:
  /// Builds the hierarchy for `g`, writes the single-file store to
  /// `store_path`, and opens it. `labels` may be empty.
  static gmine::Result<std::unique_ptr<GMineEngine>> Build(
      const graph::Graph& g, const graph::LabelStore& labels,
      const std::string& store_path, const EngineOptions& options = {});

  /// Opens an existing store file.
  static gmine::Result<std::unique_ptr<GMineEngine>> Open(
      const std::string& store_path, const EngineOptions& options = {});

  /// The default navigation session (focus, context, history) — a
  /// pinned member of the session pool, kept for single-user callers.
  gtree::NavigationSession& session() { return *default_session_; }
  const gtree::NavigationSession& session() const {
    return *default_session_;
  }

  /// The session pool: open/close/drive additional concurrent sessions
  /// over the same store (multi-user service mode; see docs/SESSIONS.md).
  SessionManager& sessions() { return *sessions_; }
  const SessionManager& sessions() const { return *sessions_; }

  /// The community hierarchy.
  const gtree::GTree& tree() const { return store_->tree(); }

  /// Node labels.
  const graph::LabelStore& labels() const { return store_->labels(); }

  /// The underlying store (IO stats, direct leaf access).
  gtree::GTreeStore& store() { return *store_; }

  /// Pop-up information for a graph node (loads only its leaf page).
  gmine::Result<NodeDetails> GetNodeDetails(graph::NodeId v);

  /// Edge expansion: the node's neighbors in the *full* graph with
  /// labels, strongest edges first, capped at `limit`. Loads the full
  /// graph lazily on first use.
  gmine::Result<std::vector<std::pair<graph::NodeId, std::string>>>
  ExpandNode(graph::NodeId v, size_t limit = 16);

  /// §III-B metrics for the focused community. Leaf focus uses only the
  /// leaf page; non-leaf focus induces the community subgraph from the
  /// full graph.
  gmine::Result<mining::SubgraphMetrics> ComputeFocusMetrics(
      const mining::MetricsRequest& request = {});

  /// §IV connection subgraph extraction over the full graph.
  gmine::Result<csg::ConnectionSubgraph> ExtractConnectionSubgraph(
      const std::vector<graph::NodeId>& sources,
      const csg::ExtractionOptions& options = {});

  /// Resolves exact labels to node ids (for query sets given as names).
  gmine::Result<std::vector<graph::NodeId>> ResolveLabels(
      const std::vector<std::string>& names) const;

  /// Runs one GQL statement (docs/QUERY.md) against this engine's
  /// store: parse -> plan -> execute. MATCH statements stream leaf
  /// pages through the buffer pool (with predicate pushdown unless
  /// `options` vetoes it); EXTRACT uses the engine's lazily loaded
  /// full graph. Safe from multiple threads, like the rest of the
  /// read surface.
  gmine::Result<query::QueryResult> Query(
      std::string_view statement,
      const query::ExecutorOptions& options = {});

  /// Node/edge edition (§III-B): applies `edit` to the graph, remaps
  /// labels (use `new_labels` to name added nodes, keyed by the ids in
  /// edit-result order) and repairs the hierarchy incrementally —
  /// rewriting only the touched subtrees, store pages and connectivity
  /// rows (docs/EDITS.md; EditOptions::incremental = false restores the
  /// legacy whole-graph rebuild). Live pool sessions survive via an
  /// epoch bump: same ids, reset to the new root. `stats`, when given,
  /// reports what the repair did.
  /// `wal_lsn`, when nonzero, is the write-ahead-log LSN this edit
  /// publishes: the store header records it so recovery replays only
  /// the log past it (callers: EditQueue's group commit, Open's
  /// replay). 0 = no WAL involvement (the watermark is kept as-is).
  Status ApplyEdit(const graph::GraphEdit& edit,
                   const std::vector<std::string>& new_labels = {},
                   EditStats* stats = nullptr, uint64_t wal_lsn = 0);

  /// Renders the current hierarchy view (Tomahawk context) to SVG.
  Status RenderHierarchyView(const std::string& svg_path);

  /// Renders the focused leaf's subgraph to SVG (focus must be a leaf).
  Status RenderFocusSubgraph(const std::string& svg_path);

  /// Full graph accessor (lazy-loads from the store's graph section).
  gmine::Result<const graph::Graph*> full_graph();

  /// Path of the backing store file.
  const std::string& store_path() const { return store_path_; }

  /// The write-ahead log; nullptr unless EngineOptions::wal.enabled.
  storage::Wal* wal() { return wal_.get(); }

  /// What Open's WAL replay did (all zero when the WAL is off or the
  /// log was empty).
  const WalRecoveryStats& wal_recovery() const { return wal_recovery_; }

 private:
  GMineEngine() = default;

  /// (Re)creates the session pool over store_ and pins the default
  /// session; used by Open.
  Status ResetSessions();

  /// ApplyEdit back ends: subtree repair published through the pool's
  /// epoch bump, vs the legacy whole-graph rebuild + store swap.
  Status ApplyEditIncremental(const graph::GraphEdit& edit,
                              graph::EditResult& result,
                              const graph::LabelStore& labels,
                              bool labels_changed, EditStats* out,
                              uint64_t wal_lsn);
  Status ApplyEditFullRebuild(graph::EditResult& result,
                              const graph::LabelStore& labels,
                              EditStats* out, uint64_t wal_lsn);

  /// Opens the WAL next to the store and replays its tail
  /// (EngineOptions::wal; called at the end of Open).
  Status AttachWalAndReplay();

  std::unique_ptr<gtree::GTreeStore> store_;
  std::unique_ptr<SessionManager> sessions_;
  SessionId default_session_id_ = 0;
  /// The pool's pinned default session; never evicted, so the raw
  /// pointer stays valid until the pool is replaced.
  gtree::NavigationSession* default_session_ = nullptr;
  /// Guards the lazy full_graph_ load (the same mutex treatment the
  /// store's page cache has); once loaded the graph itself is immutable.
  std::mutex graph_mu_;
  std::optional<graph::Graph> full_graph_;
  std::string store_path_;
  EngineOptions options_;
  std::unique_ptr<storage::Wal> wal_;
  WalRecoveryStats wal_recovery_;
};

}  // namespace gmine::core

#endif  // GMINE_CORE_ENGINE_H_
