// GMineEngine — the system façade tying everything together, mirroring
// the demo's capabilities end to end:
//
//   * Build: recursive partitioning -> G-Tree -> connectivity edges ->
//     single-file store (§III-A);
//   * Navigate: Tomahawk-bounded focus changes, label queries, on-demand
//     leaf loading (§III-B/C) via NavigationSession;
//   * Details on demand: pop-up node information and edge expansion;
//   * Mining: the five §III-B metrics on the focused community;
//   * Connection subgraph extraction (§IV), alone or combined with the
//     hierarchy (Fig. 6);
//   * Rendering: SVG views of every display.

#ifndef GMINE_CORE_ENGINE_H_
#define GMINE_CORE_ENGINE_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/session_manager.h"
#include "csg/extraction.h"
#include "graph/graph.h"
#include "graph/graph_edit.h"
#include "graph/labels.h"
#include "gtree/builder.h"
#include "gtree/navigation.h"
#include "gtree/store.h"
#include "mining/metrics.h"
#include "util/status.h"

namespace gmine::core {

/// Engine construction options.
struct EngineOptions {
  gtree::GTreeBuildOptions build;
  /// The engine hosts a session pool, so its store defaults to the
  /// auto-sharded page cache (cache_shards = 0) — concurrent sessions
  /// must not serialize on one cache mutex. Set cache_shards = 1 for
  /// the exact single-LRU eviction order.
  gtree::GTreeStoreOptions store{.cache_shards = 0};
  gtree::TomahawkOptions tomahawk;
  /// Session-pool limits (sessions() manager). The `tomahawk` field
  /// above is the single source of truth for navigation contexts: it is
  /// copied over `sessions.tomahawk` when the engine builds the pool,
  /// so set `tomahawk`, not `sessions.tomahawk`.
  SessionManagerOptions sessions;
};

/// Pop-up node information (details on demand).
struct NodeDetails {
  graph::NodeId id = graph::kInvalidNode;
  std::string label;
  gtree::TreeNodeId leaf = gtree::kInvalidTreeNode;
  /// Community names from the root to the leaf.
  std::vector<std::string> community_path;
  /// Degree within the leaf community subgraph.
  uint32_t degree_in_community = 0;
  /// Neighbors within the leaf community, with labels.
  std::vector<std::pair<graph::NodeId, std::string>> community_neighbors;
};

/// The GMine system.
///
/// Thread-safety: the read-side surface (GetNodeDetails, ExpandNode,
/// ExtractConnectionSubgraph, ResolveLabels, tree/labels accessors) may
/// be called from multiple threads — the store's page cache and the lazy
/// full-graph load are internally synchronized. All navigation goes
/// through the session pool (sessions()): concurrent sessions are safe
/// via SessionManager::WithSession, while the legacy single-session
/// accessor session() hands out the pool's pinned default session and
/// must be driven from one thread at a time. ApplyEdit requires
/// exclusive access to the engine (it replaces the store, the pool and
/// every session).
class GMineEngine {
 public:
  /// Builds the hierarchy for `g`, writes the single-file store to
  /// `store_path`, and opens it. `labels` may be empty.
  static gmine::Result<std::unique_ptr<GMineEngine>> Build(
      const graph::Graph& g, const graph::LabelStore& labels,
      const std::string& store_path, const EngineOptions& options = {});

  /// Opens an existing store file.
  static gmine::Result<std::unique_ptr<GMineEngine>> Open(
      const std::string& store_path, const EngineOptions& options = {});

  /// The default navigation session (focus, context, history) — a
  /// pinned member of the session pool, kept for single-user callers.
  gtree::NavigationSession& session() { return *default_session_; }
  const gtree::NavigationSession& session() const {
    return *default_session_;
  }

  /// The session pool: open/close/drive additional concurrent sessions
  /// over the same store (multi-user service mode; see docs/SESSIONS.md).
  SessionManager& sessions() { return *sessions_; }
  const SessionManager& sessions() const { return *sessions_; }

  /// The community hierarchy.
  const gtree::GTree& tree() const { return store_->tree(); }

  /// Node labels.
  const graph::LabelStore& labels() const { return store_->labels(); }

  /// The underlying store (IO stats, direct leaf access).
  gtree::GTreeStore& store() { return *store_; }

  /// Pop-up information for a graph node (loads only its leaf page).
  gmine::Result<NodeDetails> GetNodeDetails(graph::NodeId v);

  /// Edge expansion: the node's neighbors in the *full* graph with
  /// labels, strongest edges first, capped at `limit`. Loads the full
  /// graph lazily on first use.
  gmine::Result<std::vector<std::pair<graph::NodeId, std::string>>>
  ExpandNode(graph::NodeId v, size_t limit = 16);

  /// §III-B metrics for the focused community. Leaf focus uses only the
  /// leaf page; non-leaf focus induces the community subgraph from the
  /// full graph.
  gmine::Result<mining::SubgraphMetrics> ComputeFocusMetrics(
      const mining::MetricsRequest& request = {});

  /// §IV connection subgraph extraction over the full graph.
  gmine::Result<csg::ConnectionSubgraph> ExtractConnectionSubgraph(
      const std::vector<graph::NodeId>& sources,
      const csg::ExtractionOptions& options = {});

  /// Resolves exact labels to node ids (for query sets given as names).
  gmine::Result<std::vector<graph::NodeId>> ResolveLabels(
      const std::vector<std::string>& names) const;

  /// Node/edge edition (§III-B): applies `edit` to the graph, remaps
  /// labels (use `new_labels` to name added nodes, keyed by the ids in
  /// edit-result order), rebuilds the hierarchy and rewrites the store
  /// in place. The navigation session resets to the root. Expensive —
  /// intended for editing sessions, not per-keystroke mutation.
  Status ApplyEdit(const graph::GraphEdit& edit,
                   const std::vector<std::string>& new_labels = {});

  /// Renders the current hierarchy view (Tomahawk context) to SVG.
  Status RenderHierarchyView(const std::string& svg_path);

  /// Renders the focused leaf's subgraph to SVG (focus must be a leaf).
  Status RenderFocusSubgraph(const std::string& svg_path);

  /// Full graph accessor (lazy-loads from the store's graph section).
  gmine::Result<const graph::Graph*> full_graph();

  /// Path of the backing store file.
  const std::string& store_path() const { return store_path_; }

 private:
  GMineEngine() = default;

  /// (Re)creates the session pool over store_ and pins the default
  /// session; used by Open and ApplyEdit.
  Status ResetSessions();

  std::unique_ptr<gtree::GTreeStore> store_;
  std::unique_ptr<SessionManager> sessions_;
  SessionId default_session_id_ = 0;
  /// The pool's pinned default session; never evicted, so the raw
  /// pointer stays valid until the pool is replaced.
  gtree::NavigationSession* default_session_ = nullptr;
  /// Guards the lazy full_graph_ load (the same mutex treatment the
  /// store's page cache has); once loaded the graph itself is immutable.
  std::mutex graph_mu_;
  std::optional<graph::Graph> full_graph_;
  std::string store_path_;
  EngineOptions options_;
};

}  // namespace gmine::core

#endif  // GMINE_CORE_ENGINE_H_
