// View rendering helpers: turn GMine state (hierarchy contexts, leaf
// subgraphs, connection subgraphs) into SVG files. Free functions so the
// examples and benches can render without instantiating a full engine.

#ifndef GMINE_CORE_VIEWS_H_
#define GMINE_CORE_VIEWS_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "csg/extraction.h"
#include "graph/graph.h"
#include "graph/labels.h"
#include "gtree/connectivity.h"
#include "gtree/gtree.h"
#include "gtree/tomahawk.h"
#include "util/status.h"

namespace gmine::core {

/// Canvas size and camera for the view helpers.
struct ViewOptions {
  double width = 1024.0;
  double height = 1024.0;
  /// Label the top-k degree nodes in subgraph views.
  uint32_t label_top_degree = 5;
  /// Camera: zoom multiplies around the canvas center, pan shifts in
  /// device pixels (hierarchy views only; subgraph views auto-fit).
  double zoom = 1.0;
  double pan_x = 0.0;
  double pan_y = 0.0;
};

/// Renders a communities-within-communities view (Tomahawk display set,
/// nested disks, connectivity edges) to an SVG file.
Status RenderHierarchyViewSvg(const gtree::GTree& tree,
                              const gtree::TomahawkContext& context,
                              const gtree::ConnectivityIndex& connectivity,
                              const std::string& svg_path,
                              const ViewOptions& options = {});

/// Same view as a complete SVG document string — the network front
/// end's `render svg` payload, with no filesystem round trip.
gmine::Result<std::string> HierarchyViewSvgString(
    const gtree::GTree& tree, const gtree::TomahawkContext& context,
    const gtree::ConnectivityIndex& connectivity,
    const ViewOptions& options = {});

/// Renders a plain graph (force-directed) to an SVG file. `labels` may be
/// null; `highlight` nodes get the highlight color + label.
Status RenderSubgraphSvg(const graph::Graph& g,
                         const graph::LabelStore* labels,
                         const std::unordered_set<graph::NodeId>& highlight,
                         const std::string& svg_path,
                         const ViewOptions& options = {});

/// Renders an extracted connection subgraph: nodes heat-colored by
/// goodness, sources highlighted and labeled (Fig. 5's display).
/// `original_labels` indexes original graph ids; may be null.
Status RenderConnectionSubgraphSvg(const csg::ConnectionSubgraph& cs,
                                   const graph::LabelStore* original_labels,
                                   const std::string& svg_path,
                                   const ViewOptions& options = {});

/// Renders the G-Tree itself as a layered node-link diagram (the paper's
/// Fig. 1), nodes colored by depth, optionally highlighting one node.
Status RenderTreeDiagramSvg(
    const gtree::GTree& tree, const std::string& svg_path,
    gtree::TreeNodeId highlight = gtree::kInvalidTreeNode,
    const ViewOptions& options = {});

}  // namespace gmine::core

#endif  // GMINE_CORE_VIEWS_H_
