// Session-aware leaf prefetcher (ROADMAP item): the pool knows every
// session's focus, so when a user lands on a community the pages of its
// child leaves are the likeliest next loads. The prefetcher is a
// best-effort background loader feeding the store's sharded page cache:
// hosts (net::Server with --prefetch, or any embedding) enqueue leaf
// ids after a focus change; a single worker thread pulls them through
// GTreeStore::LoadLeaf under the prefetcher's own ReaderTag, so every
// later session hit on a prefetched page counts in the store's
// cross-reader `shared_hits` statistic.
//
// Best-effort means: the queue is bounded and drops on overflow
// (`dropped`), already-cached leaves are skipped (`already_cached`),
// and load failures are counted (`failed`), never surfaced — a
// prefetch can never fail a user request.

#ifndef GMINE_CORE_PREFETCHER_H_
#define GMINE_CORE_PREFETCHER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "gtree/gtree.h"
#include "gtree/store.h"

namespace gmine::core {

/// Cumulative prefetch counters.
struct PrefetchStats {
  uint64_t enqueued = 0;        // ids accepted into the queue
  uint64_t dropped = 0;         // ids rejected (queue full / not a leaf)
  uint64_t already_cached = 0;  // skipped: page was already resident
  uint64_t loaded = 0;          // pages actually pulled from disk
  uint64_t failed = 0;          // loads that returned an error
};

/// Background leaf-page loader over one read-only store.
class Prefetcher {
 public:
  /// The store must outlive the prefetcher. `queue_capacity` bounds the
  /// backlog; overflow drops, it never blocks the enqueueing thread.
  explicit Prefetcher(const gtree::GTreeStore* store,
                      size_t queue_capacity = 64);
  ~Prefetcher();

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  /// Queues the leaf communities under `focus` that are its direct
  /// children (or `focus` itself when it is a leaf), capped at
  /// `max_leaves`. Non-leaf children are ignored — the hint targets the
  /// pages one `child`/`load` step away. Returns the number queued.
  size_t EnqueueChildren(gtree::TreeNodeId focus, size_t max_leaves);

  /// Queues one leaf id. False when dropped (full queue or not a leaf).
  bool Enqueue(gtree::TreeNodeId leaf);

  /// Blocks until the queue is empty and the worker is idle (tests).
  void Drain();

  /// Stops the worker; pending ids are discarded. Idempotent.
  void Stop();

  PrefetchStats stats() const;

  /// The reader identity prefetch loads are attributed to.
  gtree::ReaderTag reader_tag() const { return reader_; }

 private:
  void WorkerLoop();

  const gtree::GTreeStore* store_;
  gtree::ReaderTag reader_ = 0;
  size_t capacity_;

  mutable std::mutex mu_;
  std::condition_variable cv_;        // wakes the worker
  std::condition_variable drained_;   // wakes Drain()
  std::deque<gtree::TreeNodeId> queue_;
  bool busy_ = false;   // worker is mid-load
  bool stop_ = false;
  PrefetchStats stats_;
  std::thread worker_;
};

}  // namespace gmine::core

#endif  // GMINE_CORE_PREFETCHER_H_
