// A multi-store catalog: named G-Tree stores discovered from a
// directory (every *.gtree file) or declared in a manifest, opened
// lazily on first use and closed again when the last session leaves.
//
// The catalog is the piece the HTTP gateway stands on (docs/HTTP.md):
// one process fronts many stores, but a store only costs memory while
// somebody is actually navigating it. Lifecycle is refcounted against
// live sessions:
//
//   * AcquireSession(name) opens the store on demand — metadata loads,
//     leaf pages stay on disk and flow through the shared buffer pool —
//     builds its SessionManager, opens one navigation session, and
//     hands back an RAII CatalogSession lease;
//   * releasing the last lease tears the pool and the store down again,
//     dropping the store's buffer-pool registration (its resident pages
//     go with it — per-store isolation is the pool's keying invariant);
//   * a per-store quota caps concurrent leases: past it, AcquireSession
//     answers Aborted without touching the store.
//
// The store set is fixed at construction; entry state (open store,
// session pool, refcount) is guarded per entry, so traffic on one store
// never serializes against another except for the shared counters.
// Leases must not outlive the catalog.

#ifndef GMINE_CORE_CATALOG_H_
#define GMINE_CORE_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/session_manager.h"
#include "gtree/navigation.h"
#include "gtree/store.h"
#include "util/status.h"

namespace gmine::core {

namespace internal {
struct CatalogEntry;
}  // namespace internal

/// Catalog tunables.
struct CatalogOptions {
  /// Concurrent leases allowed per store; 0 = unlimited. A manifest's
  /// per-store quota column overrides this default for that store.
  size_t session_quota = 64;
  /// Session-pool shape handed to every store's SessionManager. Its
  /// max_sessions is overridden to 0 (unbounded): the quota is the
  /// admission control, and sessions open pinned — each one backs a
  /// live lease, so LRU eviction must never yank one.
  SessionManagerOptions sessions;
  /// Store open options. Leave `store.buffer_pool` null to page every
  /// store through the process-wide pool.
  gtree::GTreeStoreOptions store;
  /// When > 0, construction re-arms the buffer pool's byte budget (the
  /// pool `store.buffer_pool` names — global by default) so the whole
  /// catalog shares one memory ceiling. 0 leaves the budget alone.
  uint64_t mem_budget_bytes = 0;
};

/// Point-in-time description of one catalog store.
struct CatalogStoreInfo {
  std::string name;
  std::string path;
  size_t quota = 0;          // 0 = unlimited
  bool open = false;         // store resident right now
  size_t live_sessions = 0;  // leases outstanding
  // Filled only while open:
  uint64_t file_size = 0;
  uint32_t communities = 0;  // tree nodes, root included
  uint32_t leaves = 0;
  uint32_t height = 0;
  size_t labels = 0;
};

/// Cumulative catalog counters (stats()).
struct CatalogStats {
  size_t stores = 0;        // names registered
  size_t open_now = 0;      // stores currently resident
  size_t sessions_now = 0;  // leases currently outstanding
  uint64_t opens = 0;       // lazy store opens
  uint64_t closes = 0;      // last-lease store teardowns
  uint64_t leases = 0;      // sessions handed out
  uint64_t quota_rejections = 0;
};

class Catalog;

/// RAII lease on one navigation session of one catalog store. Movable,
/// not copyable; destruction (or Release) closes the session and, when
/// it was the store's last, closes the store. Invalid (default /
/// moved-from / released) leases answer valid() == false and With
/// returns NotFound.
class CatalogSession {
 public:
  CatalogSession() = default;
  CatalogSession(CatalogSession&& other) noexcept;
  CatalogSession& operator=(CatalogSession&& other) noexcept;
  CatalogSession(const CatalogSession&) = delete;
  CatalogSession& operator=(const CatalogSession&) = delete;
  ~CatalogSession();

  bool valid() const { return catalog_ != nullptr; }
  const std::string& store_name() const;
  SessionId id() const { return id_; }

  /// The leased store. Stable for the lease's lifetime (the lease is a
  /// ref on it); never call after Release.
  gtree::GTreeStore* store() const { return store_; }

  /// Exclusive access to the leased session (SessionManager's
  /// WithSession contract).
  Status With(const std::function<Status(gtree::NavigationSession&)>& fn);

  /// Keepalive without a callback dispatch.
  bool Touch();

  /// Closes the session and drops the store ref. Idempotent.
  void Release();

 private:
  friend class Catalog;
  CatalogSession(Catalog* catalog, internal::CatalogEntry* entry,
                 gtree::GTreeStore* store, SessionManager* pool,
                 SessionId id);

  Catalog* catalog_ = nullptr;
  internal::CatalogEntry* entry_ = nullptr;
  gtree::GTreeStore* store_ = nullptr;
  SessionManager* pool_ = nullptr;
  SessionId id_ = 0;
};

/// The store registry. Construct via OpenDirectory or OpenManifest;
/// must outlive every lease it hands out.
class Catalog {
 public:
  /// Registers every `*.gtree` file directly inside `dir` under its
  /// stem (foo.gtree -> "foo"). Fails when `dir` is unreadable or holds
  /// no stores. Nothing is opened yet.
  static gmine::Result<std::unique_ptr<Catalog>> OpenDirectory(
      const std::string& dir, const CatalogOptions& options = {});

  /// Registers stores from a manifest: one `NAME PATH [QUOTA]` line per
  /// store ('#' comments and blank lines ignored; relative paths
  /// resolve against the manifest's directory; QUOTA overrides
  /// options.session_quota). Fails on duplicate names, malformed lines
  /// or missing store files. Nothing is opened yet.
  static gmine::Result<std::unique_ptr<Catalog>> OpenManifest(
      const std::string& manifest_path, const CatalogOptions& options = {});

  ~Catalog();
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registered names, sorted.
  std::vector<std::string> store_names() const;

  /// All stores, name order.
  std::vector<CatalogStoreInfo> ListStores() const;

  /// One store; NotFound for unknown names.
  gmine::Result<CatalogStoreInfo> Info(const std::string& name) const;

  /// Leases one navigation session on `name`, opening the store on
  /// first use. NotFound for unknown names; Aborted past the store's
  /// quota.
  gmine::Result<CatalogSession> AcquireSession(const std::string& name);

  CatalogStats stats() const;

 private:
  friend class CatalogSession;

  explicit Catalog(CatalogOptions options);
  void ReleaseSession(internal::CatalogEntry* entry, SessionId id);
  void FillInfoLocked(const internal::CatalogEntry& entry,
                      CatalogStoreInfo* out) const;

  CatalogOptions options_;
  /// Immutable after construction: concurrent lookups need no lock.
  std::map<std::string, std::unique_ptr<internal::CatalogEntry>> entries_;

  std::atomic<uint64_t> opens_{0};
  std::atomic<uint64_t> closes_{0};
  std::atomic<uint64_t> leases_{0};
  std::atomic<uint64_t> quota_rejections_{0};
};

}  // namespace gmine::core

#endif  // GMINE_CORE_CATALOG_H_
