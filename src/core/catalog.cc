#include "core/catalog.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "storage/buffer_pool.h"
#include "util/string_util.h"

namespace gmine::core {

namespace fs = std::filesystem;

namespace internal {

/// One registered store. `mu` guards the open/close transitions and the
/// refcount; the store/pool pointers only change while refs == 0, so a
/// live lease may use its cached pointers without the lock.
struct CatalogEntry {
  std::string name;
  std::string path;
  size_t quota = 0;  // 0 = unlimited

  std::mutex mu;
  std::unique_ptr<gtree::GTreeStore> store;
  std::unique_ptr<SessionManager> pool;
  size_t refs = 0;
};

}  // namespace internal

using internal::CatalogEntry;

namespace {

constexpr char kStoreSuffix[] = ".gtree";

bool ValidStoreName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// CatalogSession

CatalogSession::CatalogSession(Catalog* catalog, CatalogEntry* entry,
                               gtree::GTreeStore* store,
                               SessionManager* pool, SessionId id)
    : catalog_(catalog), entry_(entry), store_(store), pool_(pool),
      id_(id) {}

CatalogSession::CatalogSession(CatalogSession&& other) noexcept
    : catalog_(other.catalog_), entry_(other.entry_), store_(other.store_),
      pool_(other.pool_), id_(other.id_) {
  other.catalog_ = nullptr;
  other.entry_ = nullptr;
  other.store_ = nullptr;
  other.pool_ = nullptr;
  other.id_ = 0;
}

CatalogSession& CatalogSession::operator=(CatalogSession&& other) noexcept {
  if (this != &other) {
    Release();
    catalog_ = other.catalog_;
    entry_ = other.entry_;
    store_ = other.store_;
    pool_ = other.pool_;
    id_ = other.id_;
    other.catalog_ = nullptr;
    other.entry_ = nullptr;
    other.store_ = nullptr;
    other.pool_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

CatalogSession::~CatalogSession() { Release(); }

const std::string& CatalogSession::store_name() const {
  static const std::string kEmpty;
  return entry_ != nullptr ? entry_->name : kEmpty;
}

Status CatalogSession::With(
    const std::function<Status(gtree::NavigationSession&)>& fn) {
  if (!valid()) return Status::NotFound("released catalog session");
  return pool_->WithSession(id_, fn);
}

bool CatalogSession::Touch() {
  return valid() && pool_->TouchSession(id_);
}

void CatalogSession::Release() {
  if (!valid()) return;
  catalog_->ReleaseSession(entry_, id_);
  catalog_ = nullptr;
  entry_ = nullptr;
  store_ = nullptr;
  pool_ = nullptr;
  id_ = 0;
}

// ---------------------------------------------------------------------------
// Catalog

Catalog::Catalog(CatalogOptions options) : options_(std::move(options)) {
  if (options_.mem_budget_bytes > 0) {
    storage::BufferPool& pool = options_.store.buffer_pool != nullptr
                                    ? *options_.store.buffer_pool
                                    : storage::BufferPool::Global();
    pool.SetBudgetBytes(options_.mem_budget_bytes);
  }
}

Catalog::~Catalog() = default;

gmine::Result<std::unique_ptr<Catalog>> Catalog::OpenDirectory(
    const std::string& dir, const CatalogOptions& options) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IOError(
        StrFormat("catalog directory %s: %s", dir.c_str(),
                  ec.message().c_str()));
  }
  std::unique_ptr<Catalog> catalog(new Catalog(options));
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string filename = entry.path().filename().string();
    const size_t suffix = sizeof(kStoreSuffix) - 1;
    if (filename.size() <= suffix ||
        filename.compare(filename.size() - suffix, suffix, kStoreSuffix) !=
            0) {
      continue;
    }
    const std::string name = filename.substr(0, filename.size() - suffix);
    if (!ValidStoreName(name)) {
      return Status::InvalidArgument(
          StrFormat("store file %s: name must be [A-Za-z0-9._-]",
                    filename.c_str()));
    }
    auto e = std::make_unique<CatalogEntry>();
    e->name = name;
    e->path = entry.path().string();
    e->quota = options.session_quota;
    catalog->entries_.emplace(name, std::move(e));
  }
  if (catalog->entries_.empty()) {
    return Status::NotFound(
        StrFormat("no *%s stores in %s", kStoreSuffix, dir.c_str()));
  }
  return catalog;
}

gmine::Result<std::unique_ptr<Catalog>> Catalog::OpenManifest(
    const std::string& manifest_path, const CatalogOptions& options) {
  std::ifstream in(manifest_path);
  if (!in) {
    return Status::IOError(
        StrFormat("cannot read manifest %s", manifest_path.c_str()));
  }
  const fs::path base = fs::path(manifest_path).parent_path();
  std::unique_ptr<Catalog> catalog(new Catalog(options));
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string trimmed = std::string(TrimWhitespace(line));
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream fields(trimmed);
    std::string name, path, quota_text, extra;
    fields >> name >> path >> quota_text >> extra;
    if (path.empty() || !extra.empty()) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: expected NAME PATH [QUOTA]",
                    manifest_path.c_str(), lineno));
    }
    if (!ValidStoreName(name)) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: store name must be [A-Za-z0-9._-]",
                    manifest_path.c_str(), lineno));
    }
    size_t quota = options.session_quota;
    if (!quota_text.empty()) {
      uint64_t parsed = 0;
      if (!ParseUint64(quota_text, &parsed)) {
        return Status::InvalidArgument(
            StrFormat("%s:%zu: bad quota '%s'", manifest_path.c_str(),
                      lineno, quota_text.c_str()));
      }
      quota = static_cast<size_t>(parsed);
    }
    fs::path resolved = fs::path(path);
    if (resolved.is_relative()) resolved = base / resolved;
    std::error_code ec;
    if (!fs::is_regular_file(resolved, ec)) {
      return Status::IOError(
          StrFormat("%s:%zu: store file %s missing", manifest_path.c_str(),
                    lineno, resolved.string().c_str()));
    }
    auto e = std::make_unique<CatalogEntry>();
    e->name = name;
    e->path = resolved.string();
    e->quota = quota;
    if (!catalog->entries_.emplace(name, std::move(e)).second) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: duplicate store name '%s'",
                    manifest_path.c_str(), lineno, name.c_str()));
    }
  }
  if (catalog->entries_.empty()) {
    return Status::NotFound(
        StrFormat("manifest %s declares no stores", manifest_path.c_str()));
  }
  return catalog;
}

std::vector<std::string> Catalog::store_names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

void Catalog::FillInfoLocked(const CatalogEntry& entry,
                             CatalogStoreInfo* out) const {
  out->name = entry.name;
  out->path = entry.path;
  out->quota = entry.quota;
  out->open = entry.store != nullptr;
  out->live_sessions = entry.refs;
  if (entry.store != nullptr) {
    out->file_size = entry.store->file_size();
    out->communities = entry.store->tree().size();
    out->leaves = entry.store->tree().num_leaves();
    out->height = entry.store->tree().height();
    out->labels = entry.store->labels().size();
  }
}

std::vector<CatalogStoreInfo> Catalog::ListStores() const {
  std::vector<CatalogStoreInfo> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    std::lock_guard<std::mutex> lock(entry->mu);
    CatalogStoreInfo info;
    FillInfoLocked(*entry, &info);
    out.push_back(std::move(info));
  }
  return out;
}

gmine::Result<CatalogStoreInfo> Catalog::Info(
    const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound(StrFormat("no store '%s'", name.c_str()));
  }
  std::lock_guard<std::mutex> lock(it->second->mu);
  CatalogStoreInfo info;
  FillInfoLocked(*it->second, &info);
  return info;
}

gmine::Result<CatalogSession> Catalog::AcquireSession(
    const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound(StrFormat("no store '%s'", name.c_str()));
  }
  CatalogEntry& e = *it->second;
  std::lock_guard<std::mutex> lock(e.mu);
  if (e.quota > 0 && e.refs >= e.quota) {
    quota_rejections_.fetch_add(1, std::memory_order_relaxed);
    return Status::Aborted(
        StrFormat("store '%s' session quota (%zu) exceeded", name.c_str(),
                  e.quota));
  }
  if (e.store == nullptr) {
    GMINE_ASSIGN_OR_RETURN(e.store,
                           gtree::GTreeStore::Open(e.path, options_.store));
    // The quota above is the admission control; the pool must never cap
    // or LRU-evict on its own, since every session here backs a live
    // lease (opened pinned below).
    SessionManagerOptions smopts = options_.sessions;
    smopts.max_sessions = 0;
    e.pool = std::make_unique<SessionManager>(e.store.get(), smopts);
    opens_.fetch_add(1, std::memory_order_relaxed);
  }
  auto sid = e.pool->OpenSession(/*pinned=*/true);
  if (!sid.ok()) {
    if (e.refs == 0) {
      // Nobody else is using the store we just opened: roll it back.
      e.pool.reset();
      e.store.reset();
      closes_.fetch_add(1, std::memory_order_relaxed);
    }
    return sid.status();
  }
  ++e.refs;
  leases_.fetch_add(1, std::memory_order_relaxed);
  return CatalogSession(this, &e, e.store.get(), e.pool.get(),
                        sid.value());
}

void Catalog::ReleaseSession(CatalogEntry* entry, SessionId id) {
  std::lock_guard<std::mutex> lock(entry->mu);
  if (entry->pool != nullptr) {
    // NotFound here just means the pool reaped the session first.
    (void)entry->pool->CloseSession(id);
  }
  if (entry->refs > 0 && --entry->refs == 0) {
    entry->pool.reset();
    entry->store.reset();
    closes_.fetch_add(1, std::memory_order_relaxed);
  }
}

CatalogStats Catalog::stats() const {
  CatalogStats out;
  out.stores = entries_.size();
  for (const auto& [name, entry] : entries_) {
    std::lock_guard<std::mutex> lock(entry->mu);
    if (entry->store != nullptr) ++out.open_now;
    out.sessions_now += entry->refs;
  }
  out.opens = opens_.load(std::memory_order_relaxed);
  out.closes = closes_.load(std::memory_order_relaxed);
  out.leases = leases_.load(std::memory_order_relaxed);
  out.quota_rejections = quota_rejections_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace gmine::core
