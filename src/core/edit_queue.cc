#include "core/edit_queue.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <utility>

namespace gmine::core {

namespace {

/// Shifts an edit built over `old base` nodes onto a graph with
/// `new_base` nodes: provisional ids (>= old base) move up by the
/// difference, real ids stay (sound only when no node removal landed
/// in between — the caller's remap-epoch check).
graph::GraphEdit RebaseEdit(const graph::GraphEdit& edit,
                            uint32_t new_base) {
  const uint32_t old_base = edit.base_nodes();
  if (new_base == old_base) return edit;
  const uint32_t shift = new_base - old_base;
  auto shifted = [&](graph::NodeId v) {
    return v >= old_base ? v + shift : v;
  };
  graph::GraphEdit out(new_base);
  for (float w : edit.added_node_weights()) out.AddNode(w);
  for (const graph::Edge& e : edit.added_edges()) {
    out.AddEdge(shifted(e.src), shifted(e.dst), e.weight);
  }
  for (const auto& [u, v] : edit.removed_edges()) {
    out.RemoveEdge(shifted(u), shifted(v));
  }
  for (graph::NodeId v : edit.removed_nodes()) out.RemoveNode(shifted(v));
  return out;
}

void Resolve(std::promise<EditCommit>& promise, Status status,
             uint64_t lsn = 0, uint64_t epoch = 0, size_t group_size = 0) {
  EditCommit commit;
  commit.status = std::move(status);
  commit.lsn = lsn;
  commit.epoch = epoch;
  commit.group_size = group_size;
  promise.set_value(std::move(commit));
}

}  // namespace

EditQueue::EditQueue(GMineEngine* engine, const EditQueueOptions& options)
    : engine_(engine), options_(options) {
  auto g = engine_->full_graph();
  tip_nodes_ =
      g.ok() ? static_cast<uint32_t>((*g.value()).num_nodes()) : 0;
  committer_ = std::thread([this] { CommitterLoop(); });
}

EditQueue::~EditQueue() { Stop(); }

gmine::Result<std::future<EditCommit>> EditQueue::Submit(
    graph::GraphEdit edit, std::vector<std::string> labels) {
  if (engine_->wal() == nullptr) {
    return Status::InvalidArgument(
        "edit queue requires an engine opened with wal.enabled");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) return Status::Aborted("edit queue stopped");
  if (queue_.size() >= options_.max_pending) {
    return Status::Aborted("edit queue full");
  }
  Pending pending;
  pending.edit = std::move(edit);
  pending.labels = std::move(labels);
  pending.remap_epoch = remap_epoch_;
  std::future<EditCommit> fut = pending.promise.get_future();
  queue_.push_back(std::move(pending));
  ++stats_.submitted;
  work_cv_.notify_one();
  return fut;
}

void EditQueue::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [&] { return queue_.empty() && !committing_; });
}

void EditQueue::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (committer_.joinable()) committer_.join();
}

uint32_t EditQueue::tip_nodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tip_nodes_;
}

uint64_t EditQueue::remap_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return remap_epoch_;
}

EditQueueStats EditQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void EditQueue::CommitterLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    std::vector<Pending> group = NextGroupLocked();
    if (group.empty()) {
      // Everything at the head was rejected.
      if (queue_.empty()) drained_cv_.notify_all();
      continue;
    }
    committing_ = true;
    lock.unlock();
    CommitGroup(std::move(group));
    lock.lock();
    committing_ = false;
    if (queue_.empty()) drained_cv_.notify_all();
  }
}

std::vector<EditQueue::Pending> EditQueue::NextGroupLocked() {
  std::vector<Pending> group;
  // Edges removed by accepted members, in stable (real) id space.
  std::set<std::pair<graph::NodeId, graph::NodeId>> removed_in_group;
  while (!queue_.empty() && group.size() < options_.max_group_edits) {
    Pending& head = queue_.front();
    if (head.remap_epoch != remap_epoch_) {
      // A node removal committed after this edit was built: its real
      // ids may point at renumbered nodes. The submitter must rebuild
      // against the current graph.
      Resolve(head.promise,
              Status::Aborted("edit stale: node ids remapped since"));
      ++stats_.rejected;
      queue_.pop_front();
      continue;
    }
    if (head.edit.base_nodes() > tip_nodes_) {
      Resolve(head.promise,
              Status::InvalidArgument(
                  "edit base exceeds the committed graph"));
      ++stats_.rejected;
      queue_.pop_front();
      continue;
    }
    const bool removes_nodes = !head.edit.removed_nodes().empty();
    // Barrier: removal edits commit alone (their remap must publish
    // before anything that follows is interpreted).
    if (removes_nodes && !group.empty()) break;
    // Barrier: merged application resolves remove-then-add as the
    // removal (it wins within one GraphEdit) while serial application
    // keeps the re-added edge — cut the group so both agree.
    bool readds_removed = false;
    for (const graph::Edge& e : head.edit.added_edges()) {
      if (e.src >= head.edit.base_nodes() ||
          e.dst >= head.edit.base_nodes()) {
        continue;  // provisional endpoint: cannot name a removed edge
      }
      const auto key = std::minmax(e.src, e.dst);
      if (removed_in_group.count({key.first, key.second}) != 0) {
        readds_removed = true;
        break;
      }
    }
    if (readds_removed) break;
    removed_in_group.insert(head.edit.removed_edges().begin(),
                            head.edit.removed_edges().end());
    group.push_back(std::move(head));
    queue_.pop_front();
    if (removes_nodes) break;
  }
  return group;
}

void EditQueue::CommitGroup(std::vector<Pending> group) {
  storage::Wal* wal = engine_->wal();
  uint32_t tip = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tip = tip_nodes_;
  }

  const uint64_t mark = wal->MarkOffset();
  const uint64_t first_lsn = wal->next_lsn();
  auto fail_group = [&](const Status& status) {
    (void)wal->RewindTo(mark, first_lsn);
    std::lock_guard<std::mutex> lock(mu_);
    stats_.failed += group.size();
    for (Pending& p : group) Resolve(p.promise, status);
  };

  // Log each member rebased onto the serial chain: record j's base is
  // the group base plus the nodes added by records before it, so
  // one-at-a-time replay through ApplyEdit reproduces the published
  // graph exactly. (Multi-member groups never remove nodes, so the
  // serial spaces line up with the merged provisional space below.)
  uint32_t serial_base = tip;
  std::vector<graph::GraphEdit> rebased;
  rebased.reserve(group.size());
  for (Pending& p : group) {
    // Align labels with the member's added nodes so the merged
    // concatenation below stays keyed by edit-result order.
    p.labels.resize(p.edit.added_node_weights().size());
    graph::GraphEdit r = RebaseEdit(p.edit, serial_base);
    auto lsn = wal->Append(r, p.labels);
    if (!lsn.ok()) {
      fail_group(lsn.status());
      return;
    }
    serial_base += static_cast<uint32_t>(r.added_node_weights().size());
    rebased.push_back(std::move(r));
  }
  // The commit barrier: nothing is acked (and nothing is applied)
  // until every record in the group is durable.
  Status synced = wal->Sync();
  if (!synced.ok()) {
    fail_group(synced);
    return;
  }

  // Merge the serial-chain records into one edit over the group base —
  // their ids are already in the merged provisional space, so the ops
  // transfer verbatim — and repair/publish once for the whole group.
  graph::GraphEdit merged(tip);
  std::vector<std::string> merged_labels;
  for (size_t i = 0; i < rebased.size(); ++i) {
    const graph::GraphEdit& r = rebased[i];
    for (float w : r.added_node_weights()) merged.AddNode(w);
    for (const graph::Edge& e : r.added_edges()) {
      merged.AddEdge(e.src, e.dst, e.weight);
    }
    for (const auto& [u, v] : r.removed_edges()) merged.RemoveEdge(u, v);
    for (graph::NodeId v : r.removed_nodes()) merged.RemoveNode(v);
    merged_labels.insert(merged_labels.end(), group[i].labels.begin(),
                         group[i].labels.end());
  }

  const uint64_t last_lsn = first_lsn + group.size() - 1;
  EditStats estats;
  Status applied =
      engine_->ApplyEdit(merged, merged_labels, &estats, last_lsn);
  if (!applied.ok()) {
    // The group never published; rewinding the log keeps "in the log"
    // equivalent to "acked" for the next recovery.
    fail_group(applied);
    return;
  }

  const uint32_t new_tip =
      tip + static_cast<uint32_t>(merged.added_node_weights().size()) -
      static_cast<uint32_t>(merged.removed_nodes().size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    tip_nodes_ = new_tip;
    if (!merged.removed_nodes().empty()) ++remap_epoch_;
    stats_.committed += group.size();
    ++stats_.groups;
    stats_.max_group = std::max(stats_.max_group, group.size());
    for (size_t i = 0; i < group.size(); ++i) {
      Resolve(group[i].promise, Status::OK(), first_lsn + i, estats.epoch,
              group.size());
    }
  }
  MaybeCheckpoint();
}

void EditQueue::MaybeCheckpoint() {
  storage::Wal* wal = engine_->wal();
  if (options_.checkpoint_bytes == 0 ||
      wal->file_size() <= options_.checkpoint_bytes) {
    return;
  }
  // The store header that recorded the group's LSN may still be in the
  // OS page cache; force it down before dropping the log that could
  // otherwise re-create those edits.
  FILE* f = std::fopen(engine_->store_path().c_str(), "rb");
  if (f == nullptr) return;  // keep the log; retry next group
  const bool synced = fdatasync(fileno(f)) == 0;
  std::fclose(f);
  if (!synced) return;
  if (!wal->Reset(wal->next_lsn()).ok()) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.checkpoints;
}

}  // namespace gmine::core
