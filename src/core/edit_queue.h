// Group commit for graph edits (docs/WAL.md). Writers Submit()
// GraphEdits from any thread; a single committer thread drains the
// queue in groups, appends every member to the engine's write-ahead
// log under one fsync barrier, merges the group into a single
// GraphEdit, runs ONE incremental repair for the whole group, and
// publishes it with a single epoch bump — readers keep navigating the
// previous epoch throughout. Amortizing the fsync and the repair over
// the group is what buys the bench_wal throughput win.
//
// Rebasing. An edit is built against the graph as of its submission
// (base M); by the time the committer reaches it the tip may have
// grown to N through earlier groups or earlier members of its own
// group. Provisional ids (>= M) shift up by N - M; real ids (< M) are
// stable because node REMOVALS — the only id-remapping operation —
// bump the queue's remap epoch, and edits submitted under an older
// epoch are rejected with Aborted instead of silently landing on
// renumbered nodes.
//
// Group barriers keep "merged apply" equivalent to "serial apply":
//   * a node-removal edit always commits alone (its id remap must be
//     visible to everything after it);
//   * the group is cut before an edit that re-adds an edge a prior
//     member removed — merged application would lose it (removal wins
//     within one GraphEdit) while serial application keeps it.
// Duplicate edge additions merge fine (weights sum identically) and
// add-then-remove resolves to the removal both ways, so neither cuts.
//
// WAL contract: each group member is logged as its own record, rebased
// onto the *serial* chain (record j's base = group base + nodes added
// by records before it), so replaying records one at a time through
// GMineEngine::ApplyEdit reproduces exactly the published graph. A
// group whose apply fails is rewound out of the log (Wal::RewindTo)
// before its submitters see the failure — nothing is ever acked that
// recovery would not replay, and nothing left in the log was unacked.
//
// Checkpoint: when the log outgrows `checkpoint_bytes`, the committer
// fdatasyncs the store file (the header rewrite that recorded the
// group's LSN may still be in the page cache) and resets the log.

#ifndef GMINE_CORE_EDIT_QUEUE_H_
#define GMINE_CORE_EDIT_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "graph/graph_edit.h"
#include "util/status.h"

namespace gmine::core {

struct EditQueueOptions {
  /// Most edits coalesced into one group (one fsync + one repair).
  size_t max_group_edits = 64;
  /// Submit() rejects (Aborted) beyond this many queued edits.
  size_t max_pending = 4096;
  /// Reset the WAL once it outgrows this many bytes (0 = never).
  uint64_t checkpoint_bytes = 4u << 20;
};

/// What one committed (or failed) Submit resolved to.
struct EditCommit {
  Status status = Status::OK();
  /// The edit's WAL record LSN (0 when the submission never reached
  /// the log — rejected or failed before append).
  uint64_t lsn = 0;
  /// Session-pool epoch that published the edit.
  uint64_t epoch = 0;
  /// How many edits shared the group (1 = committed alone).
  size_t group_size = 0;
};

/// Cumulative queue counters (stats()).
struct EditQueueStats {
  uint64_t submitted = 0;
  uint64_t committed = 0;
  /// Stale-epoch or invalid-base rejections at commit time.
  uint64_t rejected = 0;
  /// Members of groups whose apply failed (rewound out of the WAL).
  uint64_t failed = 0;
  uint64_t groups = 0;
  size_t max_group = 0;
  uint64_t checkpoints = 0;
};

/// Single-committer group-commit front end over GMineEngine::ApplyEdit.
/// The engine must have been opened with EngineOptions::wal.enabled.
///
/// Thread-safety: Submit/Drain/stats are safe from any thread. The
/// committer thread is the only caller of engine->ApplyEdit while the
/// queue is running, so the engine's edit-vs-navigation contract holds
/// as long as other threads stick to sessions()->WithSession.
class EditQueue {
 public:
  /// Starts the committer thread. `engine` must outlive the queue and
  /// have a WAL attached (engine->wal() != nullptr).
  EditQueue(GMineEngine* engine, const EditQueueOptions& options = {});

  /// Stops (draining first) if the caller did not.
  ~EditQueue();
  EditQueue(const EditQueue&) = delete;
  EditQueue& operator=(const EditQueue&) = delete;

  /// Enqueues an edit built against the engine's *current* graph.
  /// `labels` names the edit's added nodes in edit-result order. The
  /// future resolves once the edit's group is durably logged and
  /// published (or failed). Aborted when the queue is stopped or full.
  gmine::Result<std::future<EditCommit>> Submit(
      graph::GraphEdit edit, std::vector<std::string> labels = {});

  /// Blocks until every previously submitted edit has resolved.
  void Drain();

  /// Drains, then joins the committer. Subsequent Submits are Aborted.
  void Stop();

  /// Node count of the graph as of the last committed group.
  uint32_t tip_nodes() const;

  /// Bumped by every committed node-removal; submissions that were
  /// built before the bump are rejected.
  uint64_t remap_epoch() const;

  EditQueueStats stats() const;

 private:
  struct Pending {
    graph::GraphEdit edit{0};
    std::vector<std::string> labels;
    uint64_t remap_epoch = 0;
    std::promise<EditCommit> promise;
  };

  void CommitterLoop();
  /// Pops the next group (barrier rules above). Caller holds mu_.
  std::vector<Pending> NextGroupLocked();
  /// Logs, applies and publishes one group; resolves its promises.
  void CommitGroup(std::vector<Pending> group);
  /// Store fdatasync + WAL reset once the log is past the threshold.
  void MaybeCheckpoint();

  GMineEngine* engine_;
  EditQueueOptions options_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;     // committer: queue or stop
  std::condition_variable drained_cv_;  // Drain(): empty and idle
  std::deque<Pending> queue_;
  bool stop_ = false;
  bool committing_ = false;  // a group is in flight outside mu_
  uint32_t tip_nodes_ = 0;
  uint64_t remap_epoch_ = 0;
  EditQueueStats stats_;

  std::thread committer_;
};

}  // namespace gmine::core

#endif  // GMINE_CORE_EDIT_QUEUE_H_
