// Concurrent session pool: one read-only GTreeStore serving many
// independent interactive navigators. The TKDE follow-up and web-based
// GMine deployments frame the system as a multi-user service over a
// single summarized graph; this is that service layer.
//
// Each session is an id-addressed gtree::NavigationSession. The manager
// owns the sessions (never the store), serializes access to each one,
// evicts the least-recently-used session past a configurable cap, and
// can close sessions idle beyond a timeout. The only state sessions
// share is the store's slice of the process-wide buffer pool
// (storage/buffer_pool.h), whose frame table is latch-sharded, so
// navigators scale with the thread count instead of serializing on the
// pool. On UpdateEpoch the store invalidates only the frames the edit
// touched (GTreeStore::ApplyUpdate rekeys surviving pages); sessions
// re-seat on the new root with the rest of the cache warm.
//
// Thread-safety contract
//   * OpenSession / CloseSession / WithSession / ListSessions / stats
//     may be called from any thread.
//   * WithSession holds that session's exclusive lock for the duration
//     of the callback; two callbacks on the *same* session serialize,
//     callbacks on different sessions run concurrently.
//   * Do not call back into the manager from inside a WithSession
//     callback (self-deadlock on the same session; lock-order inversion
//     across sessions).
//   * A session closed or evicted while a WithSession callback is
//     running finishes that callback on the detached session, which is
//     destroyed afterwards.

#ifndef GMINE_CORE_SESSION_MANAGER_H_
#define GMINE_CORE_SESSION_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "gtree/navigation.h"
#include "gtree/store.h"
#include "gtree/tomahawk.h"
#include "util/status.h"

namespace gmine::core {

/// Identifies one open session. Ids are never reused within a manager.
using SessionId = uint64_t;

/// Why a session left the pool (the close-hook's second argument).
enum class SessionCloseReason : uint8_t {
  kClosed,   // explicit CloseSession
  kEvicted,  // LRU eviction past max_sessions
  kIdle,     // reaped by CloseIdleSessions
};

/// Returns "closed", "evicted" or "idle".
const char* SessionCloseReasonName(SessionCloseReason reason);

/// Session-pool tunables.
struct SessionManagerOptions {
  /// Open sessions kept at most; opening past the cap evicts the
  /// least-recently-used unpinned session. 0 means unbounded.
  size_t max_sessions = 64;
  /// Sessions idle at least this long are closed by CloseIdleSessions().
  /// 0 disables idle collection.
  int64_t idle_timeout_micros = 0;
  /// Navigation context options handed to every new session.
  gtree::TomahawkOptions tomahawk;
};

/// Point-in-time description of one open session (ListSessions). For
/// pinned sessions only `id`, `idle_micros` and `pinned` are filled:
/// their state may be mutated through an unlocked raw pointer
/// (PinnedSession), so ListSessions does not read it.
struct SessionInfo {
  SessionId id = 0;
  gtree::TreeNodeId focus = gtree::kInvalidTreeNode;
  size_t interactions = 0;     // recorded InteractionEvents so far
  int64_t idle_micros = 0;     // time since the last WithSession
  bool pinned = false;
};

/// Cumulative pool counters.
struct SessionPoolStats {
  uint64_t opened = 0;     // sessions ever opened
  uint64_t closed = 0;     // explicit CloseSession calls that succeeded
  uint64_t evicted = 0;    // LRU evictions past max_sessions
  uint64_t idle_closed = 0;  // sessions reaped by CloseIdleSessions
  size_t open_now = 0;     // sessions currently open
};

/// A pool of NavigationSessions over one shared read-only store.
class SessionManager {
 public:
  /// The store must outlive the manager and every handed-out session.
  explicit SessionManager(const gtree::GTreeStore* store,
                          SessionManagerOptions options = {});

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Opens a new session focused at the root and returns its id.
  /// Past max_sessions the least-recently-used unpinned session is
  /// evicted first; fails with Aborted when the cap is reached and every
  /// session is pinned. Pinned sessions are never evicted (the engine's
  /// embedded default session uses this).
  gmine::Result<SessionId> OpenSession(bool pinned = false);

  /// Closes a session. NotFound on an unknown, already-closed or
  /// evicted id — closing twice is an error, not a no-op.
  Status CloseSession(SessionId id);

  /// Runs `fn` with exclusive access to session `id`, refreshing its
  /// recency. Returns NotFound for unknown/closed/evicted ids,
  /// otherwise whatever `fn` returns.
  Status WithSession(SessionId id,
                     const std::function<Status(gtree::NavigationSession&)>& fn);

  /// True when `id` is currently open.
  bool Contains(SessionId id) const;

  /// Refreshes `id`'s recency and idle clock without dispatching a
  /// callback — a keepalive for hosts whose requests do not all touch
  /// the session (net::Server's connection-level ops like ping/stats).
  /// False for unknown/closed/evicted ids.
  bool TouchSession(SessionId id);

  /// Closes every unpinned session idle at least
  /// `options.idle_timeout_micros` (no-op when that is 0). Returns the
  /// number closed.
  size_t CloseIdleSessions();

  /// Open-session descriptions, most recently used first.
  std::vector<SessionInfo> ListSessions() const;

  /// Cumulative pool counters.
  SessionPoolStats stats() const;

  /// Number of sessions currently open.
  size_t size() const;

  /// The shared store.
  const gtree::GTreeStore& store() const { return *store_; }

  /// Installs (or clears, with nullptr-like empty fn) the close hook:
  /// invoked once per session removed from the pool, for any reason,
  /// with the pool's internal lock released — hosts that own
  /// connection-scoped sessions (net::Server) use it to tear the
  /// connection down when the pool reaps its session. The hook runs on
  /// whichever thread triggered the removal and must not call back
  /// into the manager.
  void set_on_session_closed(
      std::function<void(SessionId, SessionCloseReason)> fn);

  /// Direct, unlocked access to a *pinned* session for single-threaded
  /// embedding (GMineEngine's legacy `session()` accessor). The pointer
  /// stays valid until the session is closed, the manager destroyed or
  /// an epoch bump re-seats the pool (UpdateEpoch — re-fetch afterwards);
  /// returns nullptr for unknown or unpinned ids — unpinned sessions may
  /// be evicted at any time, so handing out raw pointers to them would
  /// dangle. A session driven through this raw pointer must not also be
  /// driven through WithSession from another thread: the raw path takes
  /// no lock, so the two would race. Multi-threaded hosts sweeping
  /// ListSessions() ids should skip rows with `pinned == true` — those
  /// belong to an embedding that drives them directly.
  gtree::NavigationSession* PinnedSession(SessionId id);

  /// Publishes a new store state to a *live* pool (the ApplyEdit epoch
  /// bump, docs/EDITS.md): blocks until every in-flight WithSession
  /// callback drains, keeps new ones (and OpenSession) parked, runs
  /// `update` — which may mutate the current store in place or return a
  /// different store pointer to adopt — then re-opens every session over
  /// the published store. Session ids, pinned flags and the close hook
  /// all survive; focus/history/context reset to the new root, so no
  /// session can ever observe pre-edit tree ids against post-edit data
  /// (no stale reads). On error nothing is re-seated and the epoch does
  /// not advance. Deadlocks if called from inside a WithSession
  /// callback — never do that.
  Status UpdateEpoch(
      const std::function<gmine::Result<const gtree::GTreeStore*>()>&
          update);

  /// Number of successful UpdateEpoch calls so far.
  uint64_t epoch() const { return epoch_.load(); }

 private:
  struct Entry {
    std::unique_ptr<gtree::NavigationSession> session;
    std::mutex mu;  // serializes WithSession callbacks
    // Steady micros of the last dispatch; atomic so ListSessions can
    // read it from its lock-free snapshot.
    std::atomic<int64_t> last_active{0};
    bool pinned = false;
  };

  /// Callers hold mu_. Moves `id` to the front of the recency list.
  void Touch(SessionId id);
  /// Callers hold mu_. Removes `id` from every index.
  void Erase(SessionId id);

  const gtree::GTreeStore* store_;
  SessionManagerOptions options_;

  // Epoch gate: WithSession callbacks and OpenSession register as
  // dispatches; UpdateEpoch raises `epoch_update_pending_` (parking new
  // dispatches immediately — writer priority, so a relentless stream of
  // navigators can never starve an edit), waits for the in-flight count
  // to drain, runs the update, then reopens the gate. A plain
  // shared_mutex would starve the writer on glibc, whose rwlock prefers
  // readers. Ordering: the gate before mu_.
  class DispatchGuard;
  mutable std::mutex epoch_gate_mu_;
  mutable std::condition_variable epoch_cv_;
  mutable int active_dispatches_ = 0;
  mutable bool epoch_update_pending_ = false;
  std::atomic<uint64_t> epoch_{0};

  // Close-hook plumbing: guarded by mu_ for installation, copied out
  // and invoked with mu_ released so the hook can take its own locks.
  std::function<void(SessionId, SessionCloseReason)> on_session_closed_;

  mutable std::mutex mu_;  // guards the maps, the LRU list and counters
  std::unordered_map<SessionId, std::shared_ptr<Entry>> sessions_;
  std::list<SessionId> lru_;  // front = most recently used
  std::unordered_map<SessionId, std::list<SessionId>::iterator> lru_pos_;
  SessionId next_id_ = 1;
  SessionPoolStats stats_;
};

}  // namespace gmine::core

#endif  // GMINE_CORE_SESSION_MANAGER_H_
