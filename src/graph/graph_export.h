// Interop exports: Graphviz DOT and GraphML. GMine is a visualization
// system; downstream users routinely hand subgraphs to other tools, so
// both formats carry labels and edge weights.

#ifndef GMINE_GRAPH_GRAPH_EXPORT_H_
#define GMINE_GRAPH_GRAPH_EXPORT_H_

#include <string>

#include "graph/graph.h"
#include "graph/labels.h"
#include "util/status.h"

namespace gmine::graph {

/// Export tunables.
struct ExportOptions {
  /// Emit labels (requires `labels` passed to the exporter).
  bool include_labels = true;
  /// Emit edge weights (as `weight` attributes / DOT labels).
  bool include_weights = true;
  /// DOT graph name / GraphML graph id.
  std::string graph_name = "gmine";
};

/// Formats the graph in Graphviz DOT ("graph { a -- b; }" for undirected,
/// "digraph { a -> b; }" for directed). `labels` may be null.
std::string FormatDot(const Graph& g, const LabelStore* labels = nullptr,
                      const ExportOptions& options = {});

/// Formats the graph as GraphML (yEd/Gephi-compatible minimal profile).
std::string FormatGraphMl(const Graph& g,
                          const LabelStore* labels = nullptr,
                          const ExportOptions& options = {});

/// Writes FormatDot to a file.
Status WriteDotFile(const Graph& g, const std::string& path,
                    const LabelStore* labels = nullptr,
                    const ExportOptions& options = {});

/// Writes FormatGraphMl to a file.
Status WriteGraphMlFile(const Graph& g, const std::string& path,
                        const LabelStore* labels = nullptr,
                        const ExportOptions& options = {});

}  // namespace gmine::graph

#endif  // GMINE_GRAPH_GRAPH_EXPORT_H_
