// Graph (de)serialization: whitespace edge lists, the METIS text format,
// and GMine's own binary CSR format (magic + checksummed sections).

#ifndef GMINE_GRAPH_GRAPH_IO_H_
#define GMINE_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace gmine::graph {

/// Parses an edge-list: one "src dst [weight]" per line; '#' or '%'
/// comments; undirected unless `directed`.
Result<Graph> ParseEdgeList(std::string_view text, bool directed = false);

/// Reads an edge-list file (see ParseEdgeList).
Result<Graph> ReadEdgeListFile(const std::string& path,
                               bool directed = false);

/// Writes "src dst weight" lines, one undirected edge (or directed arc)
/// per line.
Status WriteEdgeListFile(const Graph& g, const std::string& path);

/// Parses the METIS .graph format: header "n m [fmt [ncon]]", then one
/// line per node listing 1-based neighbor ids (optionally with weights,
/// fmt=1 or 11). Undirected by definition.
Result<Graph> ParseMetisGraph(std::string_view text);

/// Writes the METIS .graph format (fmt=001: edge weights when any weight
/// differs from 1).
std::string FormatMetisGraph(const Graph& g);

/// Serializes the graph into GMine's binary format (see graph_io.cc for
/// the layout); the blob embeds a checksum.
std::string SerializeGraph(const Graph& g);

/// Parses a blob produced by SerializeGraph, verifying the checksum.
Result<Graph> DeserializeGraph(std::string_view blob);

/// Writes the binary format to `path`.
Status WriteGraphFile(const Graph& g, const std::string& path);

/// Reads the binary format from `path`.
Result<Graph> ReadGraphFile(const std::string& path);

/// Reads an entire file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes a string to a file (truncating).
Status WriteStringToFile(std::string_view data, const std::string& path);

}  // namespace gmine::graph

#endif  // GMINE_GRAPH_GRAPH_IO_H_
