// Pull-oriented transition structure for random-walk kernels (PageRank,
// RWR). The seed implementations scattered mass push-style — next[nb] +=
// rank[v] / out_norm[v] * w — paying a per-arc `weighted ?` branch and a
// per-source division, and making parallel updates race on next[].
//
// TransitionMatrix inverts the view: for every target node v it stores
// the incoming arcs (u -> v) with the transition probability
// P(u -> v) = w(u, v) / out_norm(u) fully precomputed. One node's update
// is then an independent branch-free, division-free dot product
//   next[v] = sum over in-arcs (src, p) of rank[src] * p
// which parallelizes over nodes with no atomics. Built once per kernel
// call in O(nodes + arcs); the in-arc lists are ordered by ascending
// source id, so gather results are deterministic.

#ifndef GMINE_GRAPH_TRANSITION_H_
#define GMINE_GRAPH_TRANSITION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace gmine::graph {

/// One incoming arc of the transition matrix: source node and the
/// precomputed transition probability P(src -> target).
struct InArc {
  NodeId src;
  double prob;
};

/// Column-compressed transition matrix W^T with normalized arc weights.
class TransitionMatrix {
 public:
  /// Builds the structure for `g`. With `weighted`, probabilities are
  /// proportional to arc weights (w / WeightedDegree); otherwise uniform
  /// (1 / Degree). Nodes with zero out-norm are flagged dangling.
  TransitionMatrix(const Graph& g, bool weighted);

  /// Incoming arcs of `v`, ascending by source id.
  std::span<const InArc> InArcs(NodeId v) const {
    return {arcs_.data() + offsets_[v], arcs_.data() + offsets_[v + 1]};
  }

  /// Nodes with no outgoing mass (out_norm <= 0); their rank restarts or
  /// redistributes depending on the kernel.
  const std::vector<NodeId>& dangling() const { return dangling_; }

  uint32_t num_nodes() const {
    return offsets_.empty() ? 0 : static_cast<uint32_t>(offsets_.size() - 1);
  }

  /// Whether probabilities were normalized by weighted degree.
  bool weighted() const { return weighted_; }

 private:
  std::vector<uint64_t> offsets_;  // size num_nodes+1
  std::vector<InArc> arcs_;        // size num_arcs (minus dangling arcs)
  std::vector<NodeId> dangling_;
  bool weighted_ = false;
};

}  // namespace gmine::graph

#endif  // GMINE_GRAPH_TRANSITION_H_
