#include "graph/subgraph.h"

#include "graph/graph_builder.h"
#include "util/string_util.h"

namespace gmine::graph {

Result<Subgraph> InducedSubgraph(const Graph& g,
                                 const std::vector<NodeId>& nodes) {
  Subgraph out;
  out.to_parent = nodes;
  out.to_local.reserve(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    NodeId p = nodes[i];
    if (p >= g.num_nodes()) {
      return Status::InvalidArgument(
          StrFormat("node %u out of range %u", p, g.num_nodes()));
    }
    auto [it, inserted] = out.to_local.emplace(p, static_cast<NodeId>(i));
    if (!inserted) {
      return Status::InvalidArgument(StrFormat("duplicate node %u", p));
    }
  }

  GraphBuilderOptions opts;
  opts.directed = g.directed();
  GraphBuilder builder(opts);
  builder.ReserveNodes(static_cast<uint32_t>(nodes.size()));
  for (size_t i = 0; i < nodes.size(); ++i) {
    NodeId p = nodes[i];
    if (!g.node_weights().empty()) {
      builder.SetNodeWeight(static_cast<NodeId>(i), g.NodeWeight(p));
    }
    for (const Neighbor& nb : g.Neighbors(p)) {
      auto it = out.to_local.find(nb.id);
      if (it == out.to_local.end()) continue;
      NodeId local_dst = it->second;
      // For undirected graphs each edge appears as two arcs; emit each
      // undirected edge once (builder symmetrizes).
      if (!g.directed() && local_dst < static_cast<NodeId>(i)) continue;
      builder.AddEdge(static_cast<NodeId>(i), local_dst, nb.weight);
    }
  }
  auto built = builder.Build();
  if (!built.ok()) return built.status();
  out.graph = std::move(built).value();
  return out;
}

uint64_t BoundaryEdgeCount(const Graph& g, const std::vector<NodeId>& nodes) {
  std::unordered_map<NodeId, NodeId> member;
  member.reserve(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    member.emplace(nodes[i], static_cast<NodeId>(i));
  }
  uint64_t crossing = 0;
  for (NodeId u : nodes) {
    if (u >= g.num_nodes()) continue;
    for (const Neighbor& nb : g.Neighbors(u)) {
      if (!member.count(nb.id)) ++crossing;
    }
  }
  // Undirected: each crossing edge was seen exactly once (the outside
  // endpoint is not iterated), so no halving is needed.
  return crossing;
}

}  // namespace gmine::graph
