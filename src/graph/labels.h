// Node label store with an exact + prefix lookup index.
//
// In the DBLP scenario every node is an author name; the paper's §III-B
// "label query to locate a specific author within the hierarchy" needs a
// reverse index from label to node id. Labels are optional: graphs without
// labels simply skip this store.

#ifndef GMINE_GRAPH_LABELS_H_
#define GMINE_GRAPH_LABELS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace gmine::graph {

/// Maps node ids to string labels and back.
class LabelStore {
 public:
  LabelStore() = default;

  /// Bulk-loads labels; index i becomes the label of node i.
  explicit LabelStore(std::vector<std::string> labels);

  /// Sets the label of `node`, extending the store as needed.
  void SetLabel(NodeId node, std::string label);

  /// Label of `node`, or "" when unset/out of range.
  std::string_view Label(NodeId node) const;

  /// Number of label slots (max node id set + 1).
  uint32_t size() const { return static_cast<uint32_t>(labels_.size()); }

  bool empty() const { return labels_.empty(); }

  /// Exact lookup. Returns kInvalidNode when absent. When several nodes
  /// share a label the lowest id wins.
  NodeId Find(std::string_view label) const;

  /// All node ids whose label starts with `prefix`, in label order,
  /// capped at `limit` results.
  std::vector<NodeId> FindByPrefix(std::string_view prefix,
                                   size_t limit = 100) const;

  /// Serializes to a length-prefixed blob (for the G-Tree file).
  std::string Serialize() const;

  /// Parses a blob produced by Serialize().
  static Result<LabelStore> Deserialize(std::string_view blob);

 private:
  void IndexLabel(NodeId node, const std::string& label);

  std::vector<std::string> labels_;
  // Sorted index label -> node id; multimap to tolerate duplicate labels.
  std::multimap<std::string, NodeId> by_label_;
};

}  // namespace gmine::graph

#endif  // GMINE_GRAPH_LABELS_H_
