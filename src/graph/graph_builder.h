// Mutable accumulator that assembles an immutable CSR Graph.
//
// The builder accepts edges in any order, optionally symmetrizes (for
// undirected graphs), merges parallel edges by summing weights, and drops
// self-loops unless told otherwise — matching what a co-authorship graph
// loader needs.

#ifndef GMINE_GRAPH_GRAPH_BUILDER_H_
#define GMINE_GRAPH_GRAPH_BUILDER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace gmine::graph {

/// Tunables for GraphBuilder::Build().
struct GraphBuilderOptions {
  /// Produce a directed graph (no symmetrization; num_edges == num_arcs).
  bool directed = false;
  /// Keep u->u edges. The partitioner and RWR both assume none, so default
  /// is to drop them.
  bool keep_self_loops = false;
  /// How to combine parallel edges.
  enum class MergePolicy { kSumWeights, kMaxWeight, kKeepFirst };
  MergePolicy merge = MergePolicy::kSumWeights;
};

/// Accumulates edges and node weights, then builds a Graph.
class GraphBuilder {
 public:
  explicit GraphBuilder(GraphBuilderOptions options = {})
      : options_(options) {}

  /// Ensures the graph contains at least `n` nodes (ids [0,n)).
  void ReserveNodes(uint32_t n);

  /// Adds an edge; implicitly extends the node range to cover src/dst.
  void AddEdge(NodeId src, NodeId dst, float weight = 1.0f);

  /// Adds many edges.
  void AddEdges(const std::vector<Edge>& edges);

  /// Sets the vertex weight of `node` (extends node range if needed).
  void SetNodeWeight(NodeId node, float weight);

  /// Number of nodes the built graph will have (max id seen + 1, or the
  /// ReserveNodes() value, whichever is larger).
  uint32_t num_nodes() const { return num_nodes_; }

  /// Number of AddEdge calls so far (pre-dedup).
  size_t num_raw_edges() const { return edges_.size(); }

  /// Builds the immutable graph. The builder is left in a valid but
  /// unspecified state; reuse requires a fresh instance.
  Result<Graph> Build();

 private:
  GraphBuilderOptions options_;
  std::vector<Edge> edges_;
  std::vector<std::pair<NodeId, float>> node_weights_;
  uint32_t num_nodes_ = 0;
};

}  // namespace gmine::graph

#endif  // GMINE_GRAPH_GRAPH_BUILDER_H_
