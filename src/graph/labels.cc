#include "graph/labels.h"

#include "util/coding.h"

namespace gmine::graph {

LabelStore::LabelStore(std::vector<std::string> labels)
    : labels_(std::move(labels)) {
  for (size_t i = 0; i < labels_.size(); ++i) {
    if (!labels_[i].empty()) {
      IndexLabel(static_cast<NodeId>(i), labels_[i]);
    }
  }
}

void LabelStore::SetLabel(NodeId node, std::string label) {
  if (node >= labels_.size()) labels_.resize(node + 1);
  if (!labels_[node].empty()) {
    // Drop the stale index entry.
    auto [lo, hi] = by_label_.equal_range(labels_[node]);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == node) {
        by_label_.erase(it);
        break;
      }
    }
  }
  labels_[node] = std::move(label);
  if (!labels_[node].empty()) IndexLabel(node, labels_[node]);
}

std::string_view LabelStore::Label(NodeId node) const {
  if (node >= labels_.size()) return {};
  return labels_[node];
}

NodeId LabelStore::Find(std::string_view label) const {
  auto [lo, hi] = by_label_.equal_range(std::string(label));
  NodeId best = kInvalidNode;
  for (auto it = lo; it != hi; ++it) best = std::min(best, it->second);
  return best;
}

std::vector<NodeId> LabelStore::FindByPrefix(std::string_view prefix,
                                             size_t limit) const {
  std::vector<NodeId> out;
  for (auto it = by_label_.lower_bound(std::string(prefix));
       it != by_label_.end() && out.size() < limit; ++it) {
    std::string_view label = it->first;
    if (label.substr(0, prefix.size()) != prefix) break;
    out.push_back(it->second);
  }
  return out;
}

void LabelStore::IndexLabel(NodeId node, const std::string& label) {
  by_label_.emplace(label, node);
}

std::string LabelStore::Serialize() const {
  std::string blob;
  PutVarint64(&blob, labels_.size());
  for (const std::string& s : labels_) PutLengthPrefixed(&blob, s);
  return blob;
}

Result<LabelStore> LabelStore::Deserialize(std::string_view blob) {
  uint64_t n = 0;
  if (!GetVarint64(&blob, &n)) {
    return Status::Corruption("label store: bad count");
  }
  std::vector<std::string> labels;
  labels.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string_view s;
    if (!GetLengthPrefixed(&blob, &s)) {
      return Status::Corruption("label store: truncated label");
    }
    labels.emplace_back(s);
  }
  return LabelStore(std::move(labels));
}

}  // namespace gmine::graph
