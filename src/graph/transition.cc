#include "graph/transition.h"

namespace gmine::graph {

TransitionMatrix::TransitionMatrix(const Graph& g, bool weighted)
    : weighted_(weighted) {
  const uint32_t n = g.num_nodes();
  offsets_.assign(static_cast<size_t>(n) + 1, 0);
  if (n == 0) return;

  // Reciprocal out-norms; 0 marks a dangling source whose arcs (it has
  // none by definition when the norm comes from the degree, but a
  // weighted graph could have all-zero weights) carry no mass.
  std::vector<double> inv_norm(n, 0.0);
  for (NodeId u = 0; u < n; ++u) {
    double norm = weighted ? static_cast<double>(g.WeightedDegree(u))
                           : static_cast<double>(g.Degree(u));
    if (norm > 0.0) {
      inv_norm[u] = 1.0 / norm;
    } else {
      dangling_.push_back(u);
    }
  }

  // Count in-degrees (offsets_[v + 1] accumulates v's in-degree), prefix
  // sum, then fill ascending by source so each in-arc list is ordered and
  // the gather order — hence the floating-point result — is fixed.
  for (NodeId u = 0; u < n; ++u) {
    if (inv_norm[u] == 0.0) continue;
    for (const Neighbor& nb : g.Neighbors(u)) ++offsets_[nb.id + 1];
  }
  for (uint32_t v = 0; v < n; ++v) offsets_[v + 1] += offsets_[v];
  arcs_.resize(offsets_[n]);
  std::vector<uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (NodeId u = 0; u < n; ++u) {
    double inv = inv_norm[u];
    if (inv == 0.0) continue;
    for (const Neighbor& nb : g.Neighbors(u)) {
      double w = weighted ? static_cast<double>(nb.weight) : 1.0;
      arcs_[cursor[nb.id]++] = InArc{u, w * inv};
    }
  }
}

}  // namespace gmine::graph
