#include "graph/graph.h"

#include <algorithm>
#include <cassert>

#include "util/string_util.h"

namespace gmine::graph {

Graph::Graph(std::vector<uint64_t> offsets, std::vector<Neighbor> neighbors,
             std::vector<float> node_weights, bool directed)
    : offsets_(std::move(offsets)),
      neighbors_(std::move(neighbors)),
      node_weights_(std::move(node_weights)),
      directed_(directed) {
  assert(!offsets_.empty());
  assert(offsets_.front() == 0);
  assert(offsets_.back() == neighbors_.size());
  assert(node_weights_.empty() || node_weights_.size() == offsets_.size() - 1);
}

float Graph::WeightedDegree(NodeId u) const {
  float total = 0.0f;
  for (const Neighbor& nb : Neighbors(u)) total += nb.weight;
  return total;
}

double Graph::TotalNodeWeight() const {
  if (node_weights_.empty()) return static_cast<double>(num_nodes());
  double total = 0.0;
  for (float w : node_weights_) total += w;
  return total;
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  auto span = Neighbors(u);
  auto it = std::lower_bound(
      span.begin(), span.end(), v,
      [](const Neighbor& nb, NodeId id) { return nb.id < id; });
  return it != span.end() && it->id == v;
}

float Graph::EdgeWeight(NodeId u, NodeId v) const {
  auto span = Neighbors(u);
  auto it = std::lower_bound(
      span.begin(), span.end(), v,
      [](const Neighbor& nb, NodeId id) { return nb.id < id; });
  if (it != span.end() && it->id == v) return it->weight;
  return 0.0f;
}

std::vector<Edge> Graph::CollectEdges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (const Neighbor& nb : Neighbors(u)) {
      if (directed_ || u <= nb.id) {
        edges.push_back(Edge{u, nb.id, nb.weight});
      }
    }
  }
  return edges;
}

std::string Graph::DebugString() const {
  uint32_t n = num_nodes();
  uint32_t min_deg = n ? Degree(0) : 0;
  uint32_t max_deg = 0;
  uint64_t total = 0;
  for (NodeId u = 0; u < n; ++u) {
    uint32_t d = Degree(u);
    min_deg = std::min(min_deg, d);
    max_deg = std::max(max_deg, d);
    total += d;
  }
  double avg = n ? static_cast<double>(total) / n : 0.0;
  return StrFormat(
      "Graph{%s, nodes=%u, edges=%llu, arcs=%llu, deg[min=%u avg=%.2f "
      "max=%u]}",
      directed_ ? "directed" : "undirected", n,
      static_cast<unsigned long long>(num_edges()),
      static_cast<unsigned long long>(num_arcs()), min_deg, avg, max_deg);
}

}  // namespace gmine::graph
