// Induced subgraphs with id mappings back to the parent graph.
//
// The G-Tree stores, for every leaf community, the subgraph induced by the
// community's member nodes; the connection-subgraph extractor returns an
// induced subgraph over the selected node set. Both need to map local ids
// back to the original graph (for labels, for cross-referencing).

#ifndef GMINE_GRAPH_SUBGRAPH_H_
#define GMINE_GRAPH_SUBGRAPH_H_

#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace gmine::graph {

/// An induced subgraph plus the bidirectional id mapping.
struct Subgraph {
  /// The induced graph; local ids are [0, graph.num_nodes()).
  Graph graph;
  /// local id -> parent id.
  std::vector<NodeId> to_parent;
  /// parent id -> local id (contains exactly the member nodes).
  std::unordered_map<NodeId, NodeId> to_local;

  /// Parent id of local node `v`.
  NodeId ParentId(NodeId v) const { return to_parent[v]; }

  /// Local id of parent node `p`, or kInvalidNode when not a member.
  NodeId LocalId(NodeId p) const {
    auto it = to_local.find(p);
    return it == to_local.end() ? kInvalidNode : it->second;
  }
};

/// Builds the subgraph of `g` induced by `nodes`.
///
/// Duplicate entries in `nodes` are rejected; out-of-range ids are
/// rejected. Local ids follow the order of `nodes`. Edge weights are
/// preserved; node weights are carried over from `g`.
Result<Subgraph> InducedSubgraph(const Graph& g,
                                 const std::vector<NodeId>& nodes);

/// Number of edges of `g` crossing between `nodes` and the rest of `g`
/// (undirected edges counted once; for directed graphs counts arcs in both
/// directions). Used to compute connectivity edges and cut diagnostics.
uint64_t BoundaryEdgeCount(const Graph& g, const std::vector<NodeId>& nodes);

}  // namespace gmine::graph

#endif  // GMINE_GRAPH_SUBGRAPH_H_
