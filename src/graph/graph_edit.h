// Node/edge edition (§III-B: "GMine also offers pop up node information,
// edge expansion and edition of nodes and edges").
//
// Graphs are immutable, so edits are collected in a GraphEdit and applied
// to produce a new Graph plus an id remapping (node removal compacts
// ids). The engine layer uses this to rebuild the hierarchy after an
// editing session.

#ifndef GMINE_GRAPH_GRAPH_EDIT_H_
#define GMINE_GRAPH_GRAPH_EDIT_H_

#include <cstdint>
#include <set>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace gmine::graph {

/// Result of applying an edit: the new graph and the id remapping.
struct EditResult {
  Graph graph;
  /// old node id -> new node id; kInvalidNode for removed nodes. Newly
  /// added nodes receive ids following the surviving old nodes, in
  /// insertion order.
  std::vector<NodeId> old_to_new;
  /// Ids of the added nodes in the new graph, in insertion order.
  std::vector<NodeId> added_nodes;
};

/// A batch of mutations over a base graph with `base_nodes` nodes.
///
/// New nodes are addressed with provisional ids `base_nodes`,
/// `base_nodes+1`, ... so edges to them can be added before Apply().
class GraphEdit {
 public:
  /// Starts an edit over a graph with `base_nodes` nodes.
  explicit GraphEdit(uint32_t base_nodes) : base_nodes_(base_nodes) {}

  /// Adds a node; returns its provisional id.
  NodeId AddNode(float weight = 1.0f);

  /// Adds an undirected edge between existing or provisional ids.
  void AddEdge(NodeId u, NodeId v, float weight = 1.0f);

  /// Removes an edge (no-op when absent at Apply time).
  void RemoveEdge(NodeId u, NodeId v);

  /// Removes a node and all its incident edges.
  void RemoveNode(NodeId v);

  /// Number of queued operations (diagnostics).
  size_t num_ops() const {
    return added_nodes_.size() + added_edges_.size() +
           removed_edges_.size() + removed_nodes_.size();
  }

  bool empty() const { return num_ops() == 0; }

  /// Applies the batch to `base` (whose size must match base_nodes).
  /// Removals win over additions for the same edge; removing a
  /// provisional node is allowed. Directed graphs are not supported.
  gmine::Result<EditResult> Apply(const Graph& base) const;

  /// Fast path for edits with no node removals (ids never remap): builds
  /// the new CSR by a single linear merge over `base`'s arcs instead of
  /// re-sorting every adjacency through GraphBuilder. Produces a graph
  /// equal to Apply()'s for the same batch (verified by
  /// graph_edit_test). InvalidArgument when the batch removes nodes.
  gmine::Result<EditResult> ApplyFast(const Graph& base) const;

  /// Serializes the batch (for the store's edit journal).
  std::string Serialize() const;

  /// Parses a blob produced by Serialize().
  static gmine::Result<GraphEdit> Deserialize(std::string_view blob);

  // Introspection for edit classification (gtree/edit_repair).
  uint32_t base_nodes() const { return base_nodes_; }
  const std::vector<float>& added_node_weights() const {
    return added_nodes_;
  }
  const std::vector<Edge>& added_edges() const { return added_edges_; }
  const std::set<std::pair<NodeId, NodeId>>& removed_edges() const {
    return removed_edges_;
  }
  const std::set<NodeId>& removed_nodes() const { return removed_nodes_; }

 private:
  uint32_t base_nodes_;
  std::vector<float> added_nodes_;  // weights, provisional ids in order
  std::vector<Edge> added_edges_;
  std::set<std::pair<NodeId, NodeId>> removed_edges_;  // normalized u<v
  std::set<NodeId> removed_nodes_;
};

}  // namespace gmine::graph

#endif  // GMINE_GRAPH_GRAPH_EDIT_H_
