#include "graph/graph_export.h"

#include "graph/graph_io.h"
#include "util/string_util.h"

namespace gmine::graph {

namespace {

// Escapes a string for a double-quoted DOT identifier.
std::string DotEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

// Escapes XML attribute/text content.
std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string FormatDot(const Graph& g, const LabelStore* labels,
                      const ExportOptions& options) {
  const bool directed = g.directed();
  std::string out = StrFormat("%s \"%s\" {\n",
                              directed ? "digraph" : "graph",
                              DotEscape(options.graph_name).c_str());
  const bool with_labels =
      options.include_labels && labels != nullptr && !labels->empty();
  if (with_labels) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      std::string_view label = labels->Label(v);
      if (label.empty()) continue;
      out += StrFormat("  n%u [label=\"%s\"];\n", v,
                       DotEscape(label).c_str());
    }
  }
  const char* connector = directed ? "->" : "--";
  for (const Edge& e : g.CollectEdges()) {
    if (options.include_weights && e.weight != 1.0f) {
      out += StrFormat("  n%u %s n%u [weight=%.6g];\n", e.src, connector,
                       e.dst, static_cast<double>(e.weight));
    } else {
      out += StrFormat("  n%u %s n%u;\n", e.src, connector, e.dst);
    }
  }
  out += "}\n";
  return out;
}

std::string FormatGraphMl(const Graph& g, const LabelStore* labels,
                          const ExportOptions& options) {
  std::string out =
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      "<graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\">\n";
  const bool with_labels =
      options.include_labels && labels != nullptr && !labels->empty();
  if (with_labels) {
    out +=
        "  <key id=\"label\" for=\"node\" attr.name=\"label\" "
        "attr.type=\"string\"/>\n";
  }
  if (options.include_weights) {
    out +=
        "  <key id=\"weight\" for=\"edge\" attr.name=\"weight\" "
        "attr.type=\"double\"/>\n";
  }
  out += StrFormat("  <graph id=\"%s\" edgedefault=\"%s\">\n",
                   XmlEscape(options.graph_name).c_str(),
                   g.directed() ? "directed" : "undirected");
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::string_view label = with_labels ? labels->Label(v) :
                                           std::string_view{};
    if (!label.empty()) {
      out += StrFormat(
          "    <node id=\"n%u\"><data key=\"label\">%s</data></node>\n", v,
          XmlEscape(label).c_str());
    } else {
      out += StrFormat("    <node id=\"n%u\"/>\n", v);
    }
  }
  uint64_t eid = 0;
  for (const Edge& e : g.CollectEdges()) {
    if (options.include_weights) {
      out += StrFormat(
          "    <edge id=\"e%llu\" source=\"n%u\" target=\"n%u\"><data "
          "key=\"weight\">%.6g</data></edge>\n",
          static_cast<unsigned long long>(eid++), e.src, e.dst,
          static_cast<double>(e.weight));
    } else {
      out += StrFormat(
          "    <edge id=\"e%llu\" source=\"n%u\" target=\"n%u\"/>\n",
          static_cast<unsigned long long>(eid++), e.src, e.dst);
    }
  }
  out += "  </graph>\n</graphml>\n";
  return out;
}

Status WriteDotFile(const Graph& g, const std::string& path,
                    const LabelStore* labels, const ExportOptions& options) {
  return WriteStringToFile(FormatDot(g, labels, options), path);
}

Status WriteGraphMlFile(const Graph& g, const std::string& path,
                        const LabelStore* labels,
                        const ExportOptions& options) {
  return WriteStringToFile(FormatGraphMl(g, labels, options), path);
}

}  // namespace gmine::graph
