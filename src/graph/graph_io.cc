#include "graph/graph_io.h"

#include <cstdio>

#include "graph/graph_builder.h"
#include "util/coding.h"
#include "util/string_util.h"

namespace gmine::graph {

namespace {
constexpr uint32_t kGraphMagic = 0x474d4e47;  // "GMNG"
constexpr uint32_t kGraphVersion = 1;

// Iterates non-comment lines of `text`, invoking fn(line, lineno).
// fn returns a Status; iteration stops at first error.
template <typename Fn>
Status ForEachDataLine(std::string_view text, Fn fn) {
  size_t lineno = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    ++lineno;
    pos = eol + 1;
    line = TrimWhitespace(line);
    if (line.empty() || line[0] == '#' || line[0] == '%') {
      if (pos > text.size()) break;
      continue;
    }
    GMINE_RETURN_IF_ERROR(fn(line, lineno));
    if (pos > text.size()) break;
  }
  return Status::OK();
}
}  // namespace

Result<Graph> ParseEdgeList(std::string_view text, bool directed) {
  GraphBuilderOptions opts;
  opts.directed = directed;
  GraphBuilder builder(opts);
  Status st = ForEachDataLine(text, [&](std::string_view line, size_t lineno) {
    std::vector<std::string> tok = SplitString(line, " \t,");
    if (tok.size() < 2) {
      return Status::Corruption(
          StrFormat("edge list line %zu: expected 'src dst [w]'", lineno));
    }
    uint64_t src = 0;
    uint64_t dst = 0;
    if (!ParseUint64(tok[0], &src) || !ParseUint64(tok[1], &dst) ||
        src > kInvalidNode - 1 || dst > kInvalidNode - 1) {
      return Status::Corruption(
          StrFormat("edge list line %zu: bad node id", lineno));
    }
    double w = 1.0;
    if (tok.size() >= 3 && !ParseDouble(tok[2], &w)) {
      return Status::Corruption(
          StrFormat("edge list line %zu: bad weight", lineno));
    }
    builder.AddEdge(static_cast<NodeId>(src), static_cast<NodeId>(dst),
                    static_cast<float>(w));
    return Status::OK();
  });
  if (!st.ok()) return st;
  return builder.Build();
}

Result<Graph> ReadEdgeListFile(const std::string& path, bool directed) {
  auto text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  return ParseEdgeList(text.value(), directed);
}

Status WriteEdgeListFile(const Graph& g, const std::string& path) {
  std::string out;
  out.reserve(g.num_edges() * 16);
  for (const Edge& e : g.CollectEdges()) {
    out += StrFormat("%u %u %.6g\n", e.src, e.dst,
                     static_cast<double>(e.weight));
  }
  return WriteStringToFile(out, path);
}

Result<Graph> ParseMetisGraph(std::string_view text) {
  bool header_seen = false;
  uint64_t n = 0;
  uint64_t m = 0;
  bool has_edge_weights = false;
  bool has_node_weights = false;
  GraphBuilder builder;
  NodeId current = 0;

  Status st = ForEachDataLine(text, [&](std::string_view line, size_t lineno) {
    std::vector<std::string> tok = SplitString(line, " \t");
    if (!header_seen) {
      if (tok.size() < 2) {
        return Status::Corruption("metis: header needs 'n m [fmt]'");
      }
      if (!ParseUint64(tok[0], &n) || !ParseUint64(tok[1], &m)) {
        return Status::Corruption("metis: bad header numbers");
      }
      if (tok.size() >= 3) {
        // fmt is a 3-digit flag string: <vtx sizes><vtx weights><edge w>.
        const std::string& fmt = tok[2];
        has_edge_weights = !fmt.empty() && fmt.back() == '1';
        has_node_weights = fmt.size() >= 2 && fmt[fmt.size() - 2] == '1';
      }
      builder.ReserveNodes(static_cast<uint32_t>(n));
      header_seen = true;
      return Status::OK();
    }
    if (current >= n) {
      return Status::Corruption(
          StrFormat("metis line %zu: more node lines than n=%llu", lineno,
                    static_cast<unsigned long long>(n)));
    }
    size_t idx = 0;
    if (has_node_weights) {
      if (tok.empty()) {
        return Status::Corruption("metis: missing node weight");
      }
      uint64_t w = 0;
      if (!ParseUint64(tok[0], &w)) {
        return Status::Corruption("metis: bad node weight");
      }
      builder.SetNodeWeight(current, static_cast<float>(w));
      idx = 1;
    }
    while (idx < tok.size()) {
      uint64_t nb = 0;
      if (!ParseUint64(tok[idx], &nb) || nb == 0 || nb > n) {
        return Status::Corruption(
            StrFormat("metis line %zu: bad neighbor id", lineno));
      }
      ++idx;
      double w = 1.0;
      if (has_edge_weights) {
        if (idx >= tok.size() || !ParseDouble(tok[idx], &w)) {
          return Status::Corruption(
              StrFormat("metis line %zu: missing edge weight", lineno));
        }
        ++idx;
      }
      NodeId dst = static_cast<NodeId>(nb - 1);  // 1-based -> 0-based
      if (current < dst) {  // each undirected edge listed from both sides
        builder.AddEdge(current, dst, static_cast<float>(w));
      }
    }
    ++current;
    return Status::OK();
  });
  if (!st.ok()) return st;
  if (!header_seen) return Status::Corruption("metis: empty input");
  auto built = builder.Build();
  if (!built.ok()) return built.status();
  const Graph& g = built.value();
  if (g.num_edges() != m) {
    return Status::Corruption(
        StrFormat("metis: header claims %llu edges, parsed %llu",
                  static_cast<unsigned long long>(m),
                  static_cast<unsigned long long>(g.num_edges())));
  }
  return built;
}

std::string FormatMetisGraph(const Graph& g) {
  bool weighted = false;
  for (const Neighbor& nb : g.arcs()) {
    if (nb.weight != 1.0f) {
      weighted = true;
      break;
    }
  }
  std::string out = StrFormat("%u %llu%s\n", g.num_nodes(),
                              static_cast<unsigned long long>(g.num_edges()),
                              weighted ? " 001" : "");
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    std::string line;
    for (const Neighbor& nb : g.Neighbors(u)) {
      if (!line.empty()) line += ' ';
      line += StrFormat("%u", nb.id + 1);
      if (weighted) {
        line += StrFormat(" %.6g", static_cast<double>(nb.weight));
      }
    }
    out += line;
    out += '\n';
  }
  return out;
}

std::string SerializeGraph(const Graph& g) {
  // Layout: magic, version, flags, n, num_arcs, offsets (delta-varint),
  // arcs (id varint + weight), node weights (present flag + floats),
  // fixed64 FNV checksum of everything before it.
  std::string blob;
  PutFixed32(&blob, kGraphMagic);
  PutFixed32(&blob, kGraphVersion);
  PutFixed32(&blob, g.directed() ? 1 : 0);
  PutVarint32(&blob, g.num_nodes());
  PutVarint64(&blob, g.num_arcs());
  uint64_t prev = 0;
  for (uint32_t u = 1; u <= g.num_nodes(); ++u) {
    uint64_t off = g.offsets()[u];
    PutVarint64(&blob, off - prev);
    prev = off;
  }
  for (const Neighbor& nb : g.arcs()) {
    PutVarint32(&blob, nb.id);
    PutFloat(&blob, nb.weight);
  }
  PutFixed32(&blob, g.node_weights().empty() ? 0 : 1);
  for (float w : g.node_weights()) PutFloat(&blob, w);
  PutFixed64(&blob, Hash64(blob));
  return blob;
}

Result<Graph> DeserializeGraph(std::string_view blob) {
  if (blob.size() < 12 + 8) return Status::Corruption("graph blob too short");
  std::string_view body = blob.substr(0, blob.size() - 8);
  std::string_view tail = blob.substr(blob.size() - 8);
  uint64_t want_sum = 0;
  GetFixed64(&tail, &want_sum);
  if (Hash64(body) != want_sum) {
    return Status::Corruption("graph blob checksum mismatch");
  }
  std::string_view in = body;
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t flags = 0;
  if (!GetFixed32(&in, &magic) || magic != kGraphMagic) {
    return Status::Corruption("graph blob bad magic");
  }
  if (!GetFixed32(&in, &version) || version != kGraphVersion) {
    return Status::Corruption("graph blob unsupported version");
  }
  if (!GetFixed32(&in, &flags)) return Status::Corruption("graph blob flags");
  uint32_t n = 0;
  uint64_t arcs = 0;
  if (!GetVarint32(&in, &n) || !GetVarint64(&in, &arcs)) {
    return Status::Corruption("graph blob counts");
  }
  std::vector<uint64_t> offsets(n + 1, 0);
  uint64_t acc = 0;
  for (uint32_t u = 1; u <= n; ++u) {
    uint64_t delta = 0;
    if (!GetVarint64(&in, &delta)) {
      return Status::Corruption("graph blob offsets");
    }
    acc += delta;
    offsets[u] = acc;
  }
  if (acc != arcs) return Status::Corruption("graph blob arc count mismatch");
  std::vector<Neighbor> neighbors;
  neighbors.reserve(arcs);
  for (uint64_t i = 0; i < arcs; ++i) {
    uint32_t id = 0;
    float w = 0.0f;
    if (!GetVarint32(&in, &id) || !GetFloat(&in, &w)) {
      return Status::Corruption("graph blob arcs");
    }
    if (id >= n) return Status::Corruption("graph blob arc id out of range");
    neighbors.push_back(Neighbor{id, w});
  }
  uint32_t has_weights = 0;
  if (!GetFixed32(&in, &has_weights)) {
    return Status::Corruption("graph blob node-weight flag");
  }
  std::vector<float> node_weights;
  if (has_weights) {
    node_weights.resize(n);
    for (uint32_t u = 0; u < n; ++u) {
      if (!GetFloat(&in, &node_weights[u])) {
        return Status::Corruption("graph blob node weights");
      }
    }
  }
  return Graph(std::move(offsets), std::move(neighbors),
               std::move(node_weights), flags & 1);
}

Status WriteGraphFile(const Graph& g, const std::string& path) {
  return WriteStringToFile(SerializeGraph(g), path);
}

Result<Graph> ReadGraphFile(const std::string& path) {
  auto blob = ReadFileToString(path);
  if (!blob.ok()) return blob.status();
  return DeserializeGraph(blob.value());
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError(StrFormat("cannot open %s", path.c_str()));
  }
  std::string out;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, got);
  }
  bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) return Status::IOError(StrFormat("read error on %s", path.c_str()));
  return out;
}

Status WriteStringToFile(std::string_view data, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError(StrFormat("cannot create %s", path.c_str()));
  }
  size_t put = std::fwrite(data.data(), 1, data.size(), f);
  bool err = put != data.size();
  if (std::fclose(f) != 0) err = true;
  if (err) {
    return Status::IOError(StrFormat("write error on %s", path.c_str()));
  }
  return Status::OK();
}

}  // namespace gmine::graph
