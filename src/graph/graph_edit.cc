#include "graph/graph_edit.h"

#include <algorithm>
#include <cstring>

#include "graph/graph_builder.h"
#include "util/coding.h"
#include "util/string_util.h"

namespace gmine::graph {

NodeId GraphEdit::AddNode(float weight) {
  added_nodes_.push_back(weight);
  return base_nodes_ + static_cast<NodeId>(added_nodes_.size()) - 1;
}

void GraphEdit::AddEdge(NodeId u, NodeId v, float weight) {
  added_edges_.push_back(Edge{u, v, weight});
}

void GraphEdit::RemoveEdge(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  removed_edges_.insert({u, v});
}

void GraphEdit::RemoveNode(NodeId v) { removed_nodes_.insert(v); }

gmine::Result<EditResult> GraphEdit::Apply(const Graph& base) const {
  if (base.directed()) {
    return Status::NotSupported("GraphEdit: directed graphs unsupported");
  }
  if (base.num_nodes() != base_nodes_) {
    return Status::InvalidArgument(
        StrFormat("GraphEdit: built for %u nodes, applied to %u",
                  base_nodes_, base.num_nodes()));
  }
  const uint32_t provisional_total =
      base_nodes_ + static_cast<uint32_t>(added_nodes_.size());
  for (const Edge& e : added_edges_) {
    if (e.src >= provisional_total || e.dst >= provisional_total) {
      return Status::InvalidArgument(
          StrFormat("GraphEdit: edge (%u,%u) outside provisional range %u",
                    e.src, e.dst, provisional_total));
    }
  }
  for (NodeId v : removed_nodes_) {
    if (v >= provisional_total) {
      return Status::InvalidArgument(
          StrFormat("GraphEdit: removed node %u out of range", v));
    }
  }

  // Remap: surviving old nodes first, then surviving added nodes.
  EditResult out;
  out.old_to_new.assign(provisional_total, kInvalidNode);
  NodeId next = 0;
  for (NodeId v = 0; v < base_nodes_; ++v) {
    if (!removed_nodes_.count(v)) out.old_to_new[v] = next++;
  }
  for (NodeId v = base_nodes_; v < provisional_total; ++v) {
    if (!removed_nodes_.count(v)) {
      out.old_to_new[v] = next;
      out.added_nodes.push_back(next);
      ++next;
    }
  }

  GraphBuilder builder;
  builder.ReserveNodes(next);
  // Node weights: carried over for survivors, explicit for added nodes.
  bool base_weighted = !base.node_weights().empty();
  for (NodeId v = 0; v < base_nodes_; ++v) {
    if (out.old_to_new[v] != kInvalidNode && base_weighted) {
      builder.SetNodeWeight(out.old_to_new[v], base.NodeWeight(v));
    }
  }
  for (size_t i = 0; i < added_nodes_.size(); ++i) {
    NodeId prov = base_nodes_ + static_cast<NodeId>(i);
    if (out.old_to_new[prov] != kInvalidNode &&
        (base_weighted || added_nodes_[i] != 1.0f)) {
      builder.SetNodeWeight(out.old_to_new[prov], added_nodes_[i]);
    }
  }

  auto edge_removed = [&](NodeId u, NodeId v) {
    if (u > v) std::swap(u, v);
    return removed_edges_.count({u, v}) > 0;
  };
  // Surviving base edges.
  for (NodeId u = 0; u < base_nodes_; ++u) {
    if (out.old_to_new[u] == kInvalidNode) continue;
    for (const Neighbor& nb : base.Neighbors(u)) {
      if (nb.id < u) continue;
      if (out.old_to_new[nb.id] == kInvalidNode) continue;
      if (edge_removed(u, nb.id)) continue;
      builder.AddEdge(out.old_to_new[u], out.old_to_new[nb.id], nb.weight);
    }
  }
  // Added edges (removals win; dangling endpoints dropped).
  for (const Edge& e : added_edges_) {
    if (out.old_to_new[e.src] == kInvalidNode ||
        out.old_to_new[e.dst] == kInvalidNode) {
      continue;
    }
    if (edge_removed(e.src, e.dst)) continue;
    builder.AddEdge(out.old_to_new[e.src], out.old_to_new[e.dst], e.weight);
  }
  auto built = builder.Build();
  if (!built.ok()) return built.status();
  out.graph = std::move(built).value();
  return out;
}

gmine::Result<EditResult> GraphEdit::ApplyFast(const Graph& base) const {
  if (!removed_nodes_.empty()) {
    return Status::InvalidArgument(
        "GraphEdit::ApplyFast: batch removes nodes (ids would remap)");
  }
  if (base.directed()) {
    return Status::NotSupported("GraphEdit: directed graphs unsupported");
  }
  if (base.num_nodes() != base_nodes_) {
    return Status::InvalidArgument(
        StrFormat("GraphEdit: built for %u nodes, applied to %u",
                  base_nodes_, base.num_nodes()));
  }
  const uint32_t n =
      base_nodes_ + static_cast<uint32_t>(added_nodes_.size());
  for (const Edge& e : added_edges_) {
    if (e.src >= n || e.dst >= n) {
      return Status::InvalidArgument(
          StrFormat("GraphEdit: edge (%u,%u) outside provisional range %u",
                    e.src, e.dst, n));
    }
    if (e.weight < 0.0f) {
      return Status::InvalidArgument(
          StrFormat("negative edge weight %f on (%u,%u)",
                    static_cast<double>(e.weight), e.src, e.dst));
    }
  }

  EditResult out;
  out.old_to_new.resize(n);
  for (NodeId v = 0; v < n; ++v) out.old_to_new[v] = v;
  out.added_nodes.reserve(added_nodes_.size());
  for (NodeId v = base_nodes_; v < n; ++v) out.added_nodes.push_back(v);

  // Per-node sorted patch arcs (both directions, self-loops dropped,
  // removals win, parallel adds pre-summed in insertion order).
  std::vector<std::vector<Neighbor>> patch(n);
  auto edge_removed = [&](NodeId u, NodeId v) {
    if (removed_edges_.empty()) return false;
    if (u > v) std::swap(u, v);
    return removed_edges_.count({u, v}) > 0;
  };
  for (const Edge& e : added_edges_) {
    if (e.src == e.dst) continue;
    if (edge_removed(e.src, e.dst)) continue;
    patch[e.src].push_back(Neighbor{e.dst, e.weight});
    patch[e.dst].push_back(Neighbor{e.src, e.weight});
  }
  for (std::vector<Neighbor>& arcs : patch) {
    if (arcs.size() < 2) continue;
    std::stable_sort(arcs.begin(), arcs.end(),
                     [](const Neighbor& a, const Neighbor& b) {
                       return a.id < b.id;
                     });
    size_t w = 0;
    for (size_t r = 1; r < arcs.size(); ++r) {
      if (arcs[r].id == arcs[w].id) {
        arcs[w].weight += arcs[r].weight;
      } else {
        arcs[++w] = arcs[r];
      }
    }
    arcs.resize(w + 1);
  }

  // Linear merge: base arcs (minus removals) joined with the patch.
  std::vector<uint64_t> offsets(n + 1, 0);
  std::vector<Neighbor> neighbors;
  neighbors.reserve(base.num_arcs() + added_edges_.size() * 2);
  for (NodeId u = 0; u < n; ++u) {
    std::span<const Neighbor> old_arcs =
        u < base_nodes_ ? base.Neighbors(u) : std::span<const Neighbor>();
    const std::vector<Neighbor>& add = patch[u];
    size_t i = 0;
    size_t j = 0;
    while (i < old_arcs.size() || j < add.size()) {
      if (j == add.size() ||
          (i < old_arcs.size() && old_arcs[i].id < add[j].id)) {
        if (!edge_removed(u, old_arcs[i].id)) {
          neighbors.push_back(old_arcs[i]);
        }
        ++i;
      } else if (i == old_arcs.size() || add[j].id < old_arcs[i].id) {
        neighbors.push_back(add[j]);
        ++j;
      } else {
        // Parallel to a surviving base arc: weights sum (the removal
        // check ran when building the patch, so the arc survives).
        neighbors.push_back(
            Neighbor{old_arcs[i].id, old_arcs[i].weight + add[j].weight});
        ++i;
        ++j;
      }
    }
    offsets[u + 1] = neighbors.size();
  }

  std::vector<float> node_weights;
  bool base_weighted = !base.node_weights().empty();
  bool added_weighted =
      std::any_of(added_nodes_.begin(), added_nodes_.end(),
                  [](float w) { return w != 1.0f; });
  if (base_weighted || added_weighted) {
    node_weights.assign(n, 1.0f);
    for (NodeId v = 0; v < base_nodes_; ++v) {
      node_weights[v] = base.NodeWeight(v);
    }
    for (size_t i = 0; i < added_nodes_.size(); ++i) {
      node_weights[base_nodes_ + i] = added_nodes_[i];
    }
  }
  out.graph = Graph(std::move(offsets), std::move(neighbors),
                    std::move(node_weights), /*directed=*/false);
  return out;
}

namespace {

void PutFloat(std::string* dst, float value) {
  uint32_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  PutFixed32(dst, bits);
}

bool GetFloat(std::string_view* input, float* value) {
  uint32_t bits = 0;
  if (!GetFixed32(input, &bits)) return false;
  std::memcpy(value, &bits, sizeof(bits));
  return true;
}

}  // namespace

std::string GraphEdit::Serialize() const {
  std::string blob;
  PutVarint32(&blob, base_nodes_);
  PutVarint32(&blob, static_cast<uint32_t>(added_nodes_.size()));
  for (float w : added_nodes_) PutFloat(&blob, w);
  PutVarint32(&blob, static_cast<uint32_t>(added_edges_.size()));
  for (const Edge& e : added_edges_) {
    PutVarint32(&blob, e.src);
    PutVarint32(&blob, e.dst);
    PutFloat(&blob, e.weight);
  }
  PutVarint32(&blob, static_cast<uint32_t>(removed_edges_.size()));
  for (const auto& [u, v] : removed_edges_) {
    PutVarint32(&blob, u);
    PutVarint32(&blob, v);
  }
  PutVarint32(&blob, static_cast<uint32_t>(removed_nodes_.size()));
  for (NodeId v : removed_nodes_) PutVarint32(&blob, v);
  return blob;
}

gmine::Result<GraphEdit> GraphEdit::Deserialize(std::string_view blob) {
  uint32_t base_nodes = 0;
  if (!GetVarint32(&blob, &base_nodes)) {
    return Status::Corruption("GraphEdit: bad base node count");
  }
  GraphEdit edit(base_nodes);
  uint32_t count = 0;
  if (!GetVarint32(&blob, &count)) {
    return Status::Corruption("GraphEdit: bad added-node count");
  }
  for (uint32_t i = 0; i < count; ++i) {
    float w = 1.0f;
    if (!GetFloat(&blob, &w)) {
      return Status::Corruption("GraphEdit: truncated added nodes");
    }
    edit.AddNode(w);
  }
  if (!GetVarint32(&blob, &count)) {
    return Status::Corruption("GraphEdit: bad added-edge count");
  }
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t src = 0;
    uint32_t dst = 0;
    float w = 1.0f;
    if (!GetVarint32(&blob, &src) || !GetVarint32(&blob, &dst) ||
        !GetFloat(&blob, &w)) {
      return Status::Corruption("GraphEdit: truncated added edges");
    }
    edit.AddEdge(src, dst, w);
  }
  if (!GetVarint32(&blob, &count)) {
    return Status::Corruption("GraphEdit: bad removed-edge count");
  }
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t u = 0;
    uint32_t v = 0;
    if (!GetVarint32(&blob, &u) || !GetVarint32(&blob, &v)) {
      return Status::Corruption("GraphEdit: truncated removed edges");
    }
    edit.RemoveEdge(u, v);
  }
  if (!GetVarint32(&blob, &count)) {
    return Status::Corruption("GraphEdit: bad removed-node count");
  }
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t v = 0;
    if (!GetVarint32(&blob, &v)) {
      return Status::Corruption("GraphEdit: truncated removed nodes");
    }
    edit.RemoveNode(v);
  }
  if (!blob.empty()) {
    return Status::Corruption("GraphEdit: trailing bytes");
  }
  return edit;
}

}  // namespace gmine::graph
