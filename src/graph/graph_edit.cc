#include "graph/graph_edit.h"

#include <algorithm>

#include "graph/graph_builder.h"
#include "util/string_util.h"

namespace gmine::graph {

NodeId GraphEdit::AddNode(float weight) {
  added_nodes_.push_back(weight);
  return base_nodes_ + static_cast<NodeId>(added_nodes_.size()) - 1;
}

void GraphEdit::AddEdge(NodeId u, NodeId v, float weight) {
  added_edges_.push_back(Edge{u, v, weight});
}

void GraphEdit::RemoveEdge(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  removed_edges_.insert({u, v});
}

void GraphEdit::RemoveNode(NodeId v) { removed_nodes_.insert(v); }

gmine::Result<EditResult> GraphEdit::Apply(const Graph& base) const {
  if (base.directed()) {
    return Status::NotSupported("GraphEdit: directed graphs unsupported");
  }
  if (base.num_nodes() != base_nodes_) {
    return Status::InvalidArgument(
        StrFormat("GraphEdit: built for %u nodes, applied to %u",
                  base_nodes_, base.num_nodes()));
  }
  const uint32_t provisional_total =
      base_nodes_ + static_cast<uint32_t>(added_nodes_.size());
  for (const Edge& e : added_edges_) {
    if (e.src >= provisional_total || e.dst >= provisional_total) {
      return Status::InvalidArgument(
          StrFormat("GraphEdit: edge (%u,%u) outside provisional range %u",
                    e.src, e.dst, provisional_total));
    }
  }
  for (NodeId v : removed_nodes_) {
    if (v >= provisional_total) {
      return Status::InvalidArgument(
          StrFormat("GraphEdit: removed node %u out of range", v));
    }
  }

  // Remap: surviving old nodes first, then surviving added nodes.
  EditResult out;
  out.old_to_new.assign(provisional_total, kInvalidNode);
  NodeId next = 0;
  for (NodeId v = 0; v < base_nodes_; ++v) {
    if (!removed_nodes_.count(v)) out.old_to_new[v] = next++;
  }
  for (NodeId v = base_nodes_; v < provisional_total; ++v) {
    if (!removed_nodes_.count(v)) {
      out.old_to_new[v] = next;
      out.added_nodes.push_back(next);
      ++next;
    }
  }

  GraphBuilder builder;
  builder.ReserveNodes(next);
  // Node weights: carried over for survivors, explicit for added nodes.
  bool base_weighted = !base.node_weights().empty();
  for (NodeId v = 0; v < base_nodes_; ++v) {
    if (out.old_to_new[v] != kInvalidNode && base_weighted) {
      builder.SetNodeWeight(out.old_to_new[v], base.NodeWeight(v));
    }
  }
  for (size_t i = 0; i < added_nodes_.size(); ++i) {
    NodeId prov = base_nodes_ + static_cast<NodeId>(i);
    if (out.old_to_new[prov] != kInvalidNode &&
        (base_weighted || added_nodes_[i] != 1.0f)) {
      builder.SetNodeWeight(out.old_to_new[prov], added_nodes_[i]);
    }
  }

  auto edge_removed = [&](NodeId u, NodeId v) {
    if (u > v) std::swap(u, v);
    return removed_edges_.count({u, v}) > 0;
  };
  // Surviving base edges.
  for (NodeId u = 0; u < base_nodes_; ++u) {
    if (out.old_to_new[u] == kInvalidNode) continue;
    for (const Neighbor& nb : base.Neighbors(u)) {
      if (nb.id < u) continue;
      if (out.old_to_new[nb.id] == kInvalidNode) continue;
      if (edge_removed(u, nb.id)) continue;
      builder.AddEdge(out.old_to_new[u], out.old_to_new[nb.id], nb.weight);
    }
  }
  // Added edges (removals win; dangling endpoints dropped).
  for (const Edge& e : added_edges_) {
    if (out.old_to_new[e.src] == kInvalidNode ||
        out.old_to_new[e.dst] == kInvalidNode) {
      continue;
    }
    if (edge_removed(e.src, e.dst)) continue;
    builder.AddEdge(out.old_to_new[e.src], out.old_to_new[e.dst], e.weight);
  }
  auto built = builder.Build();
  if (!built.ok()) return built.status();
  out.graph = std::move(built).value();
  return out;
}

}  // namespace gmine::graph
