#include "graph/graph_builder.h"

#include <algorithm>

#include "util/string_util.h"

namespace gmine::graph {

void GraphBuilder::ReserveNodes(uint32_t n) {
  num_nodes_ = std::max(num_nodes_, n);
}

void GraphBuilder::AddEdge(NodeId src, NodeId dst, float weight) {
  edges_.push_back(Edge{src, dst, weight});
  num_nodes_ = std::max(num_nodes_, std::max(src, dst) + 1);
}

void GraphBuilder::AddEdges(const std::vector<Edge>& edges) {
  for (const Edge& e : edges) AddEdge(e.src, e.dst, e.weight);
}

void GraphBuilder::SetNodeWeight(NodeId node, float weight) {
  node_weights_.emplace_back(node, weight);
  num_nodes_ = std::max(num_nodes_, node + 1);
}

Result<Graph> GraphBuilder::Build() {
  const uint32_t n = num_nodes_;
  for (const Edge& e : edges_) {
    if (e.src >= n || e.dst >= n) {
      return Status::InvalidArgument(
          StrFormat("edge (%u,%u) out of node range %u", e.src, e.dst, n));
    }
    if (e.weight < 0.0f) {
      return Status::InvalidArgument(
          StrFormat("negative edge weight %f on (%u,%u)",
                    static_cast<double>(e.weight), e.src, e.dst));
    }
  }

  // Materialize arcs: one per edge for directed graphs, two for undirected.
  std::vector<Edge> arcs;
  arcs.reserve(options_.directed ? edges_.size() : edges_.size() * 2);
  for (const Edge& e : edges_) {
    if (e.src == e.dst && !options_.keep_self_loops) continue;
    arcs.push_back(e);
    if (!options_.directed && e.src != e.dst) {
      arcs.push_back(Edge{e.dst, e.src, e.weight});
    }
  }
  edges_.clear();
  edges_.shrink_to_fit();

  std::sort(arcs.begin(), arcs.end(), [](const Edge& a, const Edge& b) {
    if (a.src != b.src) return a.src < b.src;
    return a.dst < b.dst;
  });

  // Merge parallel arcs.
  std::vector<uint64_t> offsets(n + 1, 0);
  std::vector<Neighbor> neighbors;
  neighbors.reserve(arcs.size());
  size_t i = 0;
  while (i < arcs.size()) {
    size_t j = i + 1;
    float w = arcs[i].weight;
    while (j < arcs.size() && arcs[j].src == arcs[i].src &&
           arcs[j].dst == arcs[i].dst) {
      switch (options_.merge) {
        case GraphBuilderOptions::MergePolicy::kSumWeights:
          w += arcs[j].weight;
          break;
        case GraphBuilderOptions::MergePolicy::kMaxWeight:
          w = std::max(w, arcs[j].weight);
          break;
        case GraphBuilderOptions::MergePolicy::kKeepFirst:
          break;
      }
      ++j;
    }
    neighbors.push_back(Neighbor{arcs[i].dst, w});
    offsets[arcs[i].src + 1]++;
    i = j;
  }
  for (uint32_t u = 0; u < n; ++u) offsets[u + 1] += offsets[u];

  std::vector<float> node_weights;
  if (!node_weights_.empty()) {
    node_weights.assign(n, 1.0f);
    for (const auto& [id, w] : node_weights_) node_weights[id] = w;
  }

  return Graph(std::move(offsets), std::move(neighbors),
               std::move(node_weights), options_.directed);
}

}  // namespace gmine::graph
