// Immutable compressed-sparse-row (CSR) graph. This is the universal
// substrate of GMine: the partitioner, the G-Tree, the mining metrics and
// the connection-subgraph extractor all consume `const Graph&`.
//
// Construction happens exclusively through GraphBuilder (graph_builder.h),
// which deduplicates/symmetrizes edge lists, or through deserialization
// (graph_io.h). Node ids are dense uint32_t in [0, num_nodes()).

#ifndef GMINE_GRAPH_GRAPH_H_
#define GMINE_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace gmine::graph {

/// Dense node identifier.
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// One outgoing arc: destination and weight.
struct Neighbor {
  NodeId id;
  float weight;

  bool operator==(const Neighbor& o) const {
    return id == o.id && weight == o.weight;
  }
};

/// An edge as (src, dst, weight) — used by builders and IO.
struct Edge {
  NodeId src;
  NodeId dst;
  float weight = 1.0f;

  bool operator==(const Edge& o) const {
    return src == o.src && dst == o.dst && weight == o.weight;
  }
};

/// Immutable CSR graph with optional per-node weights.
///
/// For undirected graphs every edge {u,v} is stored as two arcs u->v and
/// v->u; num_edges() reports the number of *undirected* edges while
/// num_arcs() reports stored arcs. For directed graphs the two coincide.
class Graph {
 public:
  /// Empty graph.
  Graph() = default;

  /// Assembles a graph from raw CSR arrays. `offsets` has num_nodes+1
  /// entries; `neighbors[offsets[u]..offsets[u+1])` are u's arcs.
  /// `node_weights` may be empty (interpreted as all-ones).
  Graph(std::vector<uint64_t> offsets, std::vector<Neighbor> neighbors,
        std::vector<float> node_weights, bool directed);

  /// Number of nodes.
  uint32_t num_nodes() const {
    return offsets_.empty() ? 0 : static_cast<uint32_t>(offsets_.size() - 1);
  }

  /// Number of logical edges (undirected edges counted once).
  uint64_t num_edges() const {
    return directed_ ? num_arcs() : num_arcs() / 2;
  }

  /// Number of stored arcs (directed half-edges).
  uint64_t num_arcs() const { return neighbors_.size(); }

  /// Whether the graph is directed.
  bool directed() const { return directed_; }

  /// Outgoing arcs of `u`, sorted by destination id.
  std::span<const Neighbor> Neighbors(NodeId u) const {
    return {neighbors_.data() + offsets_[u],
            neighbors_.data() + offsets_[u + 1]};
  }

  /// Out-degree of `u`.
  uint32_t Degree(NodeId u) const {
    return static_cast<uint32_t>(offsets_[u + 1] - offsets_[u]);
  }

  /// Sum of arc weights out of `u`.
  float WeightedDegree(NodeId u) const;

  /// Vertex weight of `u` (1.0 unless set, e.g. by graph coarsening).
  float NodeWeight(NodeId u) const {
    return node_weights_.empty() ? 1.0f : node_weights_[u];
  }

  /// Sum of all vertex weights.
  double TotalNodeWeight() const;

  /// True iff the arc u->v exists (binary search over sorted arcs).
  bool HasEdge(NodeId u, NodeId v) const;

  /// Weight of arc u->v, or 0 when absent.
  float EdgeWeight(NodeId u, NodeId v) const;

  /// Raw CSR offsets (num_nodes()+1 entries) — used by IO and the store.
  const std::vector<uint64_t>& offsets() const { return offsets_; }
  /// Raw arcs — used by IO and the store.
  const std::vector<Neighbor>& arcs() const { return neighbors_; }
  /// Raw node weights (may be empty = all ones).
  const std::vector<float>& node_weights() const { return node_weights_; }

  /// Lists each undirected edge exactly once (src < dst) or each directed
  /// arc once. Intended for tests and IO, not hot paths.
  std::vector<Edge> CollectEdges() const;

  /// Multi-line diagnostic summary (counts, degree stats).
  std::string DebugString() const;

  /// Structural equality (same CSR arrays and directedness).
  bool operator==(const Graph& o) const {
    return directed_ == o.directed_ && offsets_ == o.offsets_ &&
           neighbors_ == o.neighbors_ && node_weights_ == o.node_weights_;
  }

 private:
  std::vector<uint64_t> offsets_;     // size num_nodes+1
  std::vector<Neighbor> neighbors_;   // size num_arcs
  std::vector<float> node_weights_;   // empty or size num_nodes
  bool directed_ = false;
};

}  // namespace gmine::graph

#endif  // GMINE_GRAPH_GRAPH_H_
