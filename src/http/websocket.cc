#include "http/websocket.h"

#include "http/sha1.h"

namespace gmine::http {

namespace {

// RFC 6455 §1.3.
constexpr char kWsGuid[] = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11";

bool IsControl(WsOpcode opcode) {
  return static_cast<uint8_t>(opcode) >= 0x8;
}

bool KnownOpcode(uint8_t opcode) {
  return opcode == 0x0 || opcode == 0x1 || opcode == 0x2 ||
         opcode == 0x8 || opcode == 0x9 || opcode == 0xa;
}

void AppendMasked(std::string* out, std::string_view payload,
                  uint32_t key) {
  const uint8_t mask[4] = {static_cast<uint8_t>(key >> 24),
                           static_cast<uint8_t>(key >> 16),
                           static_cast<uint8_t>(key >> 8),
                           static_cast<uint8_t>(key)};
  for (size_t i = 0; i < payload.size(); ++i) {
    out->push_back(static_cast<char>(
        static_cast<uint8_t>(payload[i]) ^ mask[i % 4]));
  }
}

}  // namespace

std::string WebSocketAcceptKey(std::string_view client_key) {
  std::string material(client_key);
  material += kWsGuid;
  const std::array<uint8_t, 20> digest = Sha1(material);
  return Base64Encode(std::string_view(
      reinterpret_cast<const char*>(digest.data()), digest.size()));
}

std::string EncodeWsFrame(WsOpcode opcode, std::string_view payload,
                          bool fin, bool mask, uint32_t masking_key) {
  std::string out;
  out.reserve(payload.size() + 14);
  out.push_back(static_cast<char>((fin ? 0x80 : 0x00) |
                                  static_cast<uint8_t>(opcode)));
  const uint8_t mask_bit = mask ? 0x80 : 0x00;
  if (payload.size() <= 125) {
    out.push_back(static_cast<char>(mask_bit | payload.size()));
  } else if (payload.size() <= 0xffff) {
    out.push_back(static_cast<char>(mask_bit | 126));
    out.push_back(static_cast<char>(payload.size() >> 8));
    out.push_back(static_cast<char>(payload.size() & 0xff));
  } else {
    out.push_back(static_cast<char>(mask_bit | 127));
    const uint64_t n = payload.size();
    for (int shift = 56; shift >= 0; shift -= 8) {
      out.push_back(static_cast<char>((n >> shift) & 0xff));
    }
  }
  if (mask) {
    out.push_back(static_cast<char>(masking_key >> 24));
    out.push_back(static_cast<char>(masking_key >> 16));
    out.push_back(static_cast<char>(masking_key >> 8));
    out.push_back(static_cast<char>(masking_key));
    AppendMasked(&out, payload, masking_key);
  } else {
    out.append(payload);
  }
  return out;
}

std::string EncodeWsClose(uint16_t code, std::string_view reason,
                          bool mask, uint32_t masking_key) {
  std::string payload;
  payload.push_back(static_cast<char>(code >> 8));
  payload.push_back(static_cast<char>(code & 0xff));
  payload.append(reason);
  return EncodeWsFrame(WsOpcode::kClose, payload, /*fin=*/true, mask,
                       masking_key);
}

void ParseWsClose(std::string_view payload, uint16_t* code,
                  std::string* reason) {
  if (payload.size() < 2) {
    *code = 1005;  // no status received
    reason->clear();
    return;
  }
  *code = static_cast<uint16_t>(
      (static_cast<uint8_t>(payload[0]) << 8) |
      static_cast<uint8_t>(payload[1]));
  *reason = std::string(payload.substr(2));
}

WsFrameParser::WsFrameParser(WsParserOptions options)
    : options_(options) {}

Status WsFrameParser::Feed(std::string_view data) {
  if (!error_.ok()) return error_;
  Status st = Ingest(data);
  if (!st.ok()) error_ = st;
  return st;
}

Status WsFrameParser::Ingest(std::string_view data) {
  buffer_.append(data.data(), data.size());
  for (;;) {
    if (buffer_.size() < 2) return Status::OK();
    const uint8_t b0 = static_cast<uint8_t>(buffer_[0]);
    const uint8_t b1 = static_cast<uint8_t>(buffer_[1]);
    if ((b0 & 0x70) != 0) {
      return Status::InvalidArgument("ws: reserved bits set");
    }
    const uint8_t opcode = b0 & 0x0f;
    if (!KnownOpcode(opcode)) {
      return Status::InvalidArgument("ws: unknown opcode");
    }
    const bool fin = (b0 & 0x80) != 0;
    const bool masked = (b1 & 0x80) != 0;
    if (masked != options_.require_masked) {
      return Status::InvalidArgument(
          options_.require_masked ? "ws: client frame not masked"
                                  : "ws: server frame masked");
    }
    uint64_t length = b1 & 0x7f;
    size_t header = 2;
    if (length == 126) {
      if (buffer_.size() < 4) return Status::OK();
      length = (static_cast<uint64_t>(
                    static_cast<uint8_t>(buffer_[2]))
                << 8) |
               static_cast<uint8_t>(buffer_[3]);
      header = 4;
    } else if (length == 127) {
      if (buffer_.size() < 10) return Status::OK();
      length = 0;
      for (int i = 0; i < 8; ++i) {
        length = (length << 8) | static_cast<uint8_t>(buffer_[2 + i]);
      }
      header = 10;
    }
    const bool control = opcode >= 0x8;
    if (control && (!fin || length > 125)) {
      return Status::InvalidArgument(
          "ws: control frame fragmented or oversized");
    }
    if (length > options_.max_frame_bytes) {
      return Status::OutOfRange("ws: frame too large");
    }
    const size_t mask_bytes = masked ? 4 : 0;
    const uint64_t total = header + mask_bytes + length;
    if (buffer_.size() < total) return Status::OK();

    WsFrame frame;
    frame.fin = fin;
    frame.opcode = static_cast<WsOpcode>(opcode);
    frame.payload.reserve(static_cast<size_t>(length));
    const char* p = buffer_.data() + header + mask_bytes;
    if (masked) {
      const uint8_t* mask =
          reinterpret_cast<const uint8_t*>(buffer_.data() + header);
      for (uint64_t i = 0; i < length; ++i) {
        frame.payload.push_back(static_cast<char>(
            static_cast<uint8_t>(p[i]) ^ mask[i % 4]));
      }
    } else {
      frame.payload.assign(p, static_cast<size_t>(length));
    }
    buffer_.erase(0, static_cast<size_t>(total));
    ready_.push_back(std::move(frame));
  }
}

WsFrame WsFrameParser::TakeFrame() {
  WsFrame frame = std::move(ready_.front());
  ready_.erase(ready_.begin());
  return frame;
}

gmine::Result<WsMessageAssembler::Out> WsMessageAssembler::OnFrame(
    WsFrame frame) {
  Out out;
  if (IsControl(frame.opcode)) {
    out.ready = true;
    out.opcode = frame.opcode;
    out.payload = std::move(frame.payload);
    return out;
  }
  if (frame.opcode == WsOpcode::kContinuation) {
    if (!fragmented_) {
      return Status::InvalidArgument("ws: continuation without start");
    }
    if (fragment_.size() + frame.payload.size() > max_message_bytes_) {
      return Status::OutOfRange("ws: message too large");
    }
    fragment_ += frame.payload;
    if (!frame.fin) return out;
    out.ready = true;
    out.opcode = fragment_opcode_;
    out.payload = std::move(fragment_);
    fragment_.clear();
    fragmented_ = false;
    return out;
  }
  // A fresh text/binary frame.
  if (fragmented_) {
    return Status::InvalidArgument(
        "ws: new data frame inside fragmented message");
  }
  if (frame.payload.size() > max_message_bytes_) {
    return Status::OutOfRange("ws: message too large");
  }
  if (frame.fin) {
    out.ready = true;
    out.opcode = frame.opcode;
    out.payload = std::move(frame.payload);
    return out;
  }
  fragmented_ = true;
  fragment_opcode_ = frame.opcode;
  fragment_ = std::move(frame.payload);
  return out;
}

}  // namespace gmine::http
