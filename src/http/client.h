// Blocking HTTP/1.1 + WebSocket client for driving the gateway from
// tests, the CI smoke and `gmine ws`. Deliberately synchronous — one
// request (or frame) at a time over one connection — because its job
// is deterministic transcripts, not throughput.

#ifndef GMINE_HTTP_CLIENT_H_
#define GMINE_HTTP_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "http/websocket.h"
#include "net/socket.h"
#include "util/status.h"

namespace gmine::http {

/// One decoded HTTP response.
struct HttpClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;  // lowercased
  std::string body;

  std::string_view Header(std::string_view name) const;
};

/// One received WebSocket message (control frames surface too).
struct WsMessage {
  WsOpcode opcode = WsOpcode::kText;
  std::string payload;
};

class GatewayClient {
 public:
  GatewayClient() = default;

  /// Connects to 127.0.0.1-ish `host`:`port`.
  Status Connect(const std::string& host, uint16_t port);
  void Close();

  /// Sends one request and reads the full response (Content-Length
  /// framed). `token` non-empty adds the Authorization header.
  gmine::Result<HttpClientResponse> Request(
      const std::string& method, const std::string& target,
      const std::string& token = {}, const std::string& body = {},
      const std::vector<std::pair<std::string, std::string>>&
          extra_headers = {});

  /// Performs the RFC 6455 handshake on `target`. After success the
  /// connection speaks frames; Request() is no longer valid.
  Status UpgradeWebSocket(const std::string& target,
                          const std::string& token = {});

  /// Sends one masked text frame.
  Status SendText(std::string_view payload);
  /// Sends a masked ping / close frame.
  Status SendPing(std::string_view payload = {});
  Status SendClose(uint16_t code, std::string_view reason = {});

  /// Blocks for the next complete message (assembling fragments,
  /// surfacing control frames). `timeout_ms` caps the wait.
  gmine::Result<WsMessage> ReadMessage(int timeout_ms = 5000);

  /// Text-frame round trip: send an op line, read until a text reply
  /// (answering pings along the way), return its payload.
  gmine::Result<std::string> Roundtrip(const std::string& op_line,
                                       int timeout_ms = 5000);

  /// Raw-bytes escape hatches for protocol-violation tests: write wire
  /// bytes verbatim / read whatever arrives (empty on EOF).
  Status SendRaw(std::string_view data);
  gmine::Result<std::string> ReadRaw(size_t max, int timeout_ms);

 private:
  gmine::Result<std::string> ReadUntil(const std::string& delimiter,
                                       int timeout_ms);
  Status ReadExact(size_t n, std::string* out, int timeout_ms);

  net::Socket sock_;
  std::string buffer_;  // bytes read past the last parsed unit
  WsFrameParser parser_{WsParserOptions{/*require_masked=*/false,
                                        /*max_frame_bytes=*/16u << 20}};
  WsMessageAssembler assembler_{16u << 20};
  uint32_t mask_counter_ = 0x6d61736b;  // deterministic masking keys
};

}  // namespace gmine::http

#endif  // GMINE_HTTP_CLIENT_H_
