#include "http/sha1.h"

#include <cstring>

namespace gmine::http {

namespace {

inline uint32_t Rotl(uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

}  // namespace

std::array<uint8_t, 20> Sha1(std::string_view data) {
  uint32_t h[5] = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u,
                   0xc3d2e1f0u};

  // Message plus 0x80, zero pad and a 64-bit big-endian bit length,
  // processed in 64-byte blocks.
  const uint64_t bit_len = static_cast<uint64_t>(data.size()) * 8;
  std::string padded(data);
  padded.push_back(static_cast<char>(0x80));
  while (padded.size() % 64 != 56) padded.push_back('\0');
  for (int shift = 56; shift >= 0; shift -= 8) {
    padded.push_back(static_cast<char>((bit_len >> shift) & 0xff));
  }

  uint32_t w[80];
  for (size_t block = 0; block < padded.size(); block += 64) {
    const uint8_t* p =
        reinterpret_cast<const uint8_t*>(padded.data()) + block;
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<uint32_t>(p[4 * i]) << 24) |
             (static_cast<uint32_t>(p[4 * i + 1]) << 16) |
             (static_cast<uint32_t>(p[4 * i + 2]) << 8) |
             static_cast<uint32_t>(p[4 * i + 3]);
    }
    for (int i = 16; i < 80; ++i) {
      w[i] = Rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
    }
    uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
    for (int i = 0; i < 80; ++i) {
      uint32_t f, k;
      if (i < 20) {
        f = (b & c) | (~b & d);
        k = 0x5a827999u;
      } else if (i < 40) {
        f = b ^ c ^ d;
        k = 0x6ed9eba1u;
      } else if (i < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8f1bbcdcu;
      } else {
        f = b ^ c ^ d;
        k = 0xca62c1d6u;
      }
      const uint32_t t = Rotl(a, 5) + f + e + k + w[i];
      e = d;
      d = c;
      c = Rotl(b, 30);
      b = a;
      a = t;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
  }

  std::array<uint8_t, 20> digest;
  for (int i = 0; i < 5; ++i) {
    digest[4 * i] = static_cast<uint8_t>(h[i] >> 24);
    digest[4 * i + 1] = static_cast<uint8_t>(h[i] >> 16);
    digest[4 * i + 2] = static_cast<uint8_t>(h[i] >> 8);
    digest[4 * i + 3] = static_cast<uint8_t>(h[i]);
  }
  return digest;
}

std::string Base64Encode(std::string_view data) {
  static const char kAlphabet[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    const uint32_t n = (static_cast<uint8_t>(data[i]) << 16) |
                       (static_cast<uint8_t>(data[i + 1]) << 8) |
                       static_cast<uint8_t>(data[i + 2]);
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back(kAlphabet[(n >> 6) & 63]);
    out.push_back(kAlphabet[n & 63]);
  }
  const size_t rest = data.size() - i;
  if (rest == 1) {
    const uint32_t n = static_cast<uint8_t>(data[i]) << 16;
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back('=');
    out.push_back('=');
  } else if (rest == 2) {
    const uint32_t n = (static_cast<uint8_t>(data[i]) << 16) |
                       (static_cast<uint8_t>(data[i + 1]) << 8);
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back(kAlphabet[(n >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

}  // namespace gmine::http
