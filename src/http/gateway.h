// The HTTP/1.1 + WebSocket gateway (docs/HTTP.md): one listener, a
// small reactor pool, and a multi-store catalog behind it. REST
// endpoints cover the catalog (list stores, per-store info), GQL
// queries, summaries, SVG rendering and long-running mining jobs; a
// WebSocket upgrade pins a catalog session to the connection and
// carries the server line protocol's navigation ops plus `query`,
// responses JSON-framed.
//
// The REST surface is versioned under /api/v1/; a request to any
// legacy /api/... path answers 301 with the /api/v1/... Location
// (no auth required to learn the new path).
//
//   GET  /stats                             counters (no auth)
//   GET  /api/v1/stores                     catalog listing
//   GET  /api/v1/stores/NAME                store info (opens it briefly)
//   GET  /api/v1/stores/NAME/query?q=GQL    run GQL, JSON rows
//   POST /api/v1/stores/NAME/query          statement in the body
//   GET  /api/v1/stores/NAME/summary[?node=N]   focus summary JSON
//   GET  /api/v1/stores/NAME/render.svg[?node=N] hierarchy view SVG
//   GET  /api/v1/stores/NAME/ws             WebSocket upgrade (RFC 6455)
//   POST /api/v1/stores/NAME/mine?kernel=K  submit mining job, 202 + id
//   GET  /api/v1/jobs/ID                    poll a job (state, progress)
//   DELETE /api/v1/jobs/ID                  cancel / forget a job
//   POST /api/v1/shutdown                   graceful drain
//
// Auth: with a bearer token configured, every /api/v1 request (the
// upgrade included) must carry `Authorization: Bearer <token>` or is
// answered 401 before touching the catalog. Quota: a store past its
// session quota answers 429. Backpressure: each connection's write
// queue is bounded; a peer that stops reading is evicted.

#ifndef GMINE_HTTP_GATEWAY_H_
#define GMINE_HTTP_GATEWAY_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/catalog.h"
#include "http/http.h"
#include "http/jobs.h"
#include "http/reactor.h"
#include "http/websocket.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "storage/buffer_pool.h"
#include "util/status.h"

namespace gmine::http {

struct GatewayOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (port()).
  uint16_t port = 0;
  int backlog = 128;
  /// Connections admitted at once; more get 503 and an immediate
  /// close. Sized for tens of thousands of idle navigators.
  size_t max_conns = 10000;
  /// Reactor event-loop threads.
  int reactor_threads = 1;
  /// Bearer token required on /api requests; empty = no auth.
  std::string bearer_token;
  /// Per-connection write-queue bound (slow-client eviction).
  size_t max_write_buffer_bytes = 1024 * 1024;
  /// Accept-loop poll / epoll-wait granularity.
  int poll_interval_ms = 50;
  /// Pool reported in /stats; null = the process-wide pool.
  storage::BufferPool* buffer_pool = nullptr;
};

/// Per-endpoint service counters.
struct EndpointStats {
  std::string endpoint;
  uint64_t count = 0;
  uint64_t errors = 0;          // non-2xx responses / failed ops
  uint64_t total_micros = 0;    // summed service time
  uint64_t max_micros = 0;      // slowest single request
};

struct GatewayStats {
  ReactorStats reactor;
  uint64_t requests = 0;      // HTTP requests served (uploads included)
  uint64_t upgrades = 0;      // successful WebSocket upgrades
  uint64_t ws_messages = 0;   // WebSocket ops executed
  uint64_t rejected_at_capacity = 0;
  std::vector<EndpointStats> endpoints;
};

/// The gateway server. The catalog must outlive it.
class Gateway {
 public:
  explicit Gateway(core::Catalog* catalog, GatewayOptions options = {});
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Binds, starts the reactor pool and the accept thread.
  Status Start();

  uint16_t port() const { return port_; }

  /// Asks the host to stop (POST /api/v1/shutdown lands here too).
  void RequestShutdown();

  /// Blocks until RequestShutdown / Stop.
  void WaitUntilShutdown();

  /// Graceful drain: stop accepting, send every WebSocket a 1001
  /// close, flush and close every connection (their catalog sessions
  /// release), join. Idempotent.
  void Stop();

  GatewayStats stats() const;

 private:
  /// Endpoint identities for the latency counters.
  enum Endpoint : size_t {
    kEpStores = 0,
    kEpStore,
    kEpQuery,
    kEpSummary,
    kEpRenderSvg,
    kEpMine,
    kEpJobs,
    kEpRedirect,
    kEpStats,
    kEpUpgrade,
    kEpWsOp,
    kEpOther,
    kEpCount,
  };

  struct EndpointCounter {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> total_micros{0};
    std::atomic<uint64_t> max_micros{0};
  };

  /// Per-connection protocol state. Only the owning loop thread (the
  /// reactor's on_data/on_closed) touches the parsers and lease;
  /// `is_ws` is read cross-thread by the drain path.
  struct GwConn {
    ConnId id = 0;
    HttpRequestParser http;
    WsFrameParser ws;
    WsMessageAssembler assembler;
    core::CatalogSession lease;
    std::atomic<bool> is_ws{false};
    bool sent_close = false;  // we already sent a WS close frame
  };

  void AcceptLoop();
  void OnData(ConnId id, std::string_view data);
  void OnClosed(ConnId id);
  void ServeHttp(const std::shared_ptr<GwConn>& conn,
                 const HttpRequest& request);
  /// Routes one HTTP request to a response; `upgraded` reports that the
  /// connection switched to WebSocket (response already sent).
  void Route(const std::shared_ptr<GwConn>& conn,
             const HttpRequest& request, HttpResponse* response,
             Endpoint* endpoint, bool* upgraded);
  void HandleUpgrade(const std::shared_ptr<GwConn>& conn,
                     const HttpRequest& request,
                     const std::string& store, HttpResponse* response,
                     bool* upgraded);
  void ServeWs(const std::shared_ptr<GwConn>& conn,
               std::string_view data);
  /// Executes one WebSocket op line; returns the JSON-framed reply.
  std::string ExecuteWsOp(const std::shared_ptr<GwConn>& conn,
                          const std::string& line, bool* close_conn);
  std::string StatsJson() const;
  void Observe(Endpoint endpoint, int64_t micros, bool error);
  bool Authorized(const HttpRequest& request) const;

  core::Catalog* catalog_;
  GatewayOptions options_;
  std::unique_ptr<Reactor> reactor_;
  JobManager jobs_;

  net::Socket listener_;
  uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;
  std::thread accept_thread_;

  mutable std::mutex conns_mu_;
  std::unordered_map<ConnId, std::shared_ptr<GwConn>> conns_;

  std::array<EndpointCounter, kEpCount> endpoint_counters_;
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> upgrades_{0};
  std::atomic<uint64_t> ws_messages_{0};
  std::atomic<uint64_t> rejected_at_capacity_{0};

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
};

}  // namespace gmine::http

#endif  // GMINE_HTTP_GATEWAY_H_
