// HTTP/1.1 wire layer for the gateway (docs/HTTP.md): an incremental
// request parser built for an edge-triggered event loop — feed it
// whatever bytes arrived, take complete requests out — plus a
// deterministic response encoder (no Date header; golden transcripts
// diff byte-for-byte).
//
// Deliberately small surface: request line + headers + Content-Length
// bodies, keep-alive and pipelining. Chunked request bodies are
// rejected (411-shaped error) — no gateway endpoint needs them.

#ifndef GMINE_HTTP_HTTP_H_
#define GMINE_HTTP_HTTP_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace gmine::http {

/// One parsed request. Header names are lowercased at parse time.
struct HttpRequest {
  std::string method;   // uppercase, e.g. "GET"
  std::string target;   // raw request target, e.g. "/api/query?store=x"
  std::string path;     // percent-decoded path, e.g. "/api/query"
  std::map<std::string, std::string> query;  // decoded query params
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;  // per Connection header / HTTP version

  /// First header value by (case-insensitive) name; "" when absent.
  std::string_view Header(std::string_view name) const;
  bool HasHeader(std::string_view name) const;
};

/// Parser limits — a hostile peer cannot make us buffer unbounded data.
struct HttpParserLimits {
  size_t max_head_bytes = 16 * 1024;   // request line + headers
  size_t max_body_bytes = 4 * 1024 * 1024;
};

/// Incremental HTTP/1.1 request parser. Feed() consumes every byte
/// handed to it (buffering partial requests); complete requests queue
/// up for TakeRequest(), so pipelined input yields them in order. After
/// an error the parser is poisoned — the connection should close.
class HttpRequestParser {
 public:
  explicit HttpRequestParser(HttpParserLimits limits = {});

  /// Ingests bytes from the socket. Fails on malformed or oversized
  /// input (InvalidArgument / OutOfRange); once failed, stays failed.
  Status Feed(std::string_view data);

  /// A complete request is ready.
  bool HasRequest() const { return !ready_.empty(); }

  /// Pops the oldest complete request. HasRequest() must be true.
  HttpRequest TakeRequest();

  /// Surrenders any bytes buffered beyond the requests already parsed
  /// — after a WebSocket upgrade these belong to the frame layer, not
  /// to HTTP. The parser is left empty.
  std::string TakeBuffered();

 private:
  Status Ingest(std::string_view data);
  Status ParseHead(std::string_view head, HttpRequest* out);

  HttpParserLimits limits_;
  std::string buffer_;
  std::vector<HttpRequest> ready_;
  // Body accumulation state: when head_ is parsed and a body is due.
  bool in_body_ = false;
  size_t body_needed_ = 0;
  HttpRequest pending_;
  Status error_ = Status::OK();
};

/// One response to encode. Content-Length and Connection are emitted
/// by the encoder; extra_headers ride along verbatim.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  bool keep_alive = true;
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

/// Standard reason phrase ("OK", "Not Found", ...); "Unknown" otherwise.
std::string_view ReasonPhrase(int status);

/// Serializes status line + headers + body. Deterministic: emits
/// exactly Content-Type, Content-Length, Connection and the extras, in
/// that order, no Date.
std::string EncodeResponse(const HttpResponse& response);

/// Percent-decodes `s` ('+' also becomes a space — query semantics).
std::string UrlDecode(std::string_view s);

}  // namespace gmine::http

#endif  // GMINE_HTTP_HTTP_H_
