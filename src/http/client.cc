#include "http/client.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "util/string_util.h"

namespace gmine::http {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace

std::string_view HttpClientResponse::Header(std::string_view name) const {
  const std::string needle = ToLower(name);
  for (const auto& [key, value] : headers) {
    if (key == needle) return value;
  }
  return {};
}

Status GatewayClient::Connect(const std::string& host, uint16_t port) {
  GMINE_ASSIGN_OR_RETURN(sock_, net::ConnectTcp(host, port));
  return Status::OK();
}

void GatewayClient::Close() { sock_.Close(); }

gmine::Result<std::string> GatewayClient::ReadUntil(
    const std::string& delimiter, int timeout_ms) {
  for (;;) {
    const size_t at = buffer_.find(delimiter);
    if (at != std::string::npos) {
      std::string head = buffer_.substr(0, at);
      buffer_.erase(0, at + delimiter.size());
      return head;
    }
    char chunk[4096];
    GMINE_ASSIGN_OR_RETURN(
        net::ReadResult r,
        sock_.ReadSome(chunk, sizeof(chunk), timeout_ms));
    if (r.timed_out) return Status::IOError("http client: read timeout");
    if (r.eof) return Status::IOError("http client: connection closed");
    buffer_.append(chunk, r.bytes);
  }
}

Status GatewayClient::ReadExact(size_t n, std::string* out,
                                int timeout_ms) {
  while (buffer_.size() < n) {
    char chunk[4096];
    GMINE_ASSIGN_OR_RETURN(
        net::ReadResult r,
        sock_.ReadSome(chunk, sizeof(chunk), timeout_ms));
    if (r.timed_out) return Status::IOError("http client: read timeout");
    if (r.eof) return Status::IOError("http client: connection closed");
    buffer_.append(chunk, r.bytes);
  }
  out->append(buffer_, 0, n);
  buffer_.erase(0, n);
  return Status::OK();
}

gmine::Result<HttpClientResponse> GatewayClient::Request(
    const std::string& method, const std::string& target,
    const std::string& token, const std::string& body,
    const std::vector<std::pair<std::string, std::string>>&
        extra_headers) {
  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  wire += "Host: localhost\r\n";
  if (!token.empty()) wire += "Authorization: Bearer " + token + "\r\n";
  for (const auto& [name, value] : extra_headers) {
    wire += name + ": " + value + "\r\n";
  }
  if (!body.empty() || method == "POST") {
    wire += StrFormat("Content-Length: %zu\r\n", body.size());
  }
  wire += "\r\n";
  wire += body;
  GMINE_RETURN_IF_ERROR(sock_.WriteAll(wire));

  GMINE_ASSIGN_OR_RETURN(std::string head,
                         ReadUntil("\r\n\r\n", /*timeout_ms=*/5000));
  HttpClientResponse response;
  // Status line: HTTP/1.1 NNN reason
  const size_t sp = head.find(' ');
  if (sp == std::string::npos || head.size() < sp + 4) {
    return Status::Corruption("http client: bad status line");
  }
  response.status = std::atoi(head.c_str() + sp + 1);
  size_t pos = head.find("\r\n");
  while (pos != std::string::npos && pos + 2 < head.size()) {
    size_t eol = head.find("\r\n", pos + 2);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(pos + 2, eol - pos - 2);
    const size_t colon = line.find(':');
    if (colon != std::string::npos) {
      response.headers.emplace_back(
          ToLower(line.substr(0, colon)),
          std::string(TrimWhitespace(
              std::string_view(line).substr(colon + 1))));
    }
    pos = eol;
  }
  const std::string_view length = response.Header("content-length");
  if (!length.empty()) {
    uint64_t n = 0;
    if (!ParseUint64(length, &n)) {
      return Status::Corruption("http client: bad Content-Length");
    }
    GMINE_RETURN_IF_ERROR(
        ReadExact(static_cast<size_t>(n), &response.body, 10000));
  }
  return response;
}

Status GatewayClient::UpgradeWebSocket(const std::string& target,
                                       const std::string& token) {
  // A fixed nonce keeps transcripts deterministic; the server's digest
  // of it is still verified below.
  const std::string key = "dGhlIHNhbXBsZSBub25jZQ==";
  GMINE_ASSIGN_OR_RETURN(
      HttpClientResponse response,
      Request("GET", target, token, "",
              {{"Upgrade", "websocket"},
               {"Connection", "Upgrade"},
               {"Sec-WebSocket-Key", key},
               {"Sec-WebSocket-Version", "13"}}));
  if (response.status != 101) {
    return Status::Aborted(StrFormat("upgrade refused: %d %s",
                                     response.status,
                                     response.body.c_str()));
  }
  if (response.Header("sec-websocket-accept") !=
      WebSocketAcceptKey(key)) {
    return Status::Corruption("bad Sec-WebSocket-Accept digest");
  }
  return Status::OK();
}

Status GatewayClient::SendText(std::string_view payload) {
  return sock_.WriteAll(EncodeWsFrame(WsOpcode::kText, payload,
                                      /*fin=*/true, /*mask=*/true,
                                      ++mask_counter_));
}

Status GatewayClient::SendPing(std::string_view payload) {
  return sock_.WriteAll(EncodeWsFrame(WsOpcode::kPing, payload,
                                      /*fin=*/true, /*mask=*/true,
                                      ++mask_counter_));
}

Status GatewayClient::SendClose(uint16_t code, std::string_view reason) {
  return sock_.WriteAll(
      EncodeWsClose(code, reason, /*mask=*/true, ++mask_counter_));
}

Status GatewayClient::SendRaw(std::string_view data) {
  return sock_.WriteAll(data);
}

gmine::Result<std::string> GatewayClient::ReadRaw(size_t max,
                                                  int timeout_ms) {
  if (!buffer_.empty()) {
    std::string out = buffer_.substr(0, max);
    buffer_.erase(0, out.size());
    return out;
  }
  std::string out(max, '\0');
  GMINE_ASSIGN_OR_RETURN(net::ReadResult r,
                         sock_.ReadSome(out.data(), max, timeout_ms));
  if (r.timed_out) return Status::IOError("raw read timeout");
  out.resize(r.bytes);  // empty on EOF
  return out;
}

gmine::Result<WsMessage> GatewayClient::ReadMessage(int timeout_ms) {
  for (;;) {
    if (!buffer_.empty()) {
      GMINE_RETURN_IF_ERROR(parser_.Feed(buffer_));
      buffer_.clear();
    }
    while (parser_.HasFrame()) {
      GMINE_ASSIGN_OR_RETURN(WsMessageAssembler::Out out,
                             assembler_.OnFrame(parser_.TakeFrame()));
      if (!out.ready) continue;
      WsMessage message;
      message.opcode = out.opcode;
      message.payload = std::move(out.payload);
      return message;
    }
    char chunk[4096];
    GMINE_ASSIGN_OR_RETURN(
        net::ReadResult r,
        sock_.ReadSome(chunk, sizeof(chunk), timeout_ms));
    if (r.timed_out) return Status::IOError("ws client: read timeout");
    if (r.eof) return Status::IOError("ws client: connection closed");
    buffer_.append(chunk, r.bytes);
  }
}

gmine::Result<std::string> GatewayClient::Roundtrip(
    const std::string& op_line, int timeout_ms) {
  GMINE_RETURN_IF_ERROR(SendText(op_line));
  for (;;) {
    GMINE_ASSIGN_OR_RETURN(WsMessage message, ReadMessage(timeout_ms));
    switch (message.opcode) {
      case WsOpcode::kText:
        return std::move(message.payload);
      case WsOpcode::kPing:
        GMINE_RETURN_IF_ERROR(sock_.WriteAll(
            EncodeWsFrame(WsOpcode::kPong, message.payload,
                          /*fin=*/true, /*mask=*/true, ++mask_counter_)));
        continue;
      case WsOpcode::kPong:
        continue;
      case WsOpcode::kClose:
        return Status::Aborted("ws client: server closed");
      default:
        continue;
    }
  }
}

}  // namespace gmine::http
