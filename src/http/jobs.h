// Long-running mining jobs for the gateway (docs/HTTP.md): POST
// /api/v1/stores/NAME/mine submits one, GET /api/v1/jobs/ID polls it,
// DELETE /api/v1/jobs/ID cancels a running job or forgets a finished
// one. Each job runs on its own worker thread, pins the store with a
// catalog session lease for its whole lifetime, and drives the kernel
// through a mining::KernelContext — cancellation flips the context's
// flag (the kernel notices at the next page/iteration boundary) and
// progress updates land in the pollable job record.
//
// Streamed (out-of-core) stores mine page-at-a-time under the page
// kernels; legacy stores fall back to materializing the graph and the
// in-memory kernels. The job record says which engine ran.

#ifndef GMINE_HTTP_JOBS_H_
#define GMINE_HTTP_JOBS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/catalog.h"
#include "mining/kernel_context.h"
#include "util/status.h"

namespace gmine::http {

/// One pollable job record (a snapshot; the live job keeps moving).
struct MineJobInfo {
  uint64_t id = 0;
  std::string store;
  std::string kernel;   // "pagerank" | "degrees" | "components"
  std::string state;    // "running" | "done" | "failed" | "cancelled"
  std::string engine;   // "pages" | "in-memory" ("" until decided)
  mining::KernelProgress progress;
  /// JSON result object, set once state == "done".
  std::string result_json;
  /// Failure message, set once state == "failed" / "cancelled".
  std::string error;
};

/// Owns the mine-job workers. Thread-safe. The catalog must outlive it.
class JobManager {
 public:
  explicit JobManager(core::Catalog* catalog);
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Starts a job: leases `store` (NotFound/Aborted surface here, not
  /// later), spawns the worker, returns the job id. `kernel` is one of
  /// pagerank, degrees, components; `top_k` bounds the pagerank result
  /// listing.
  gmine::Result<uint64_t> Submit(const std::string& store,
                                 const std::string& kernel,
                                 uint32_t top_k);

  /// Snapshot of one job. NotFound for unknown ids.
  gmine::Result<MineJobInfo> Get(uint64_t id) const;

  /// Running job: requests cancellation (state flips to "cancelled"
  /// once the kernel yields) and returns the snapshot. Finished job:
  /// removes the record and returns its final snapshot. `removed`
  /// reports which of the two happened.
  gmine::Result<MineJobInfo> Cancel(uint64_t id, bool* removed);

  /// Cancels everything and joins all workers. Idempotent; the
  /// destructor calls it.
  void Shutdown();

  size_t jobs_now() const;

 private:
  struct Job;

  void Run(Job* job);

  core::Catalog* catalog_;
  mutable std::mutex mu_;
  uint64_t next_id_ = 1;
  bool stopping_ = false;
  std::map<uint64_t, std::unique_ptr<Job>> jobs_;
};

}  // namespace gmine::http

#endif  // GMINE_HTTP_JOBS_H_
