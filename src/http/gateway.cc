#include "http/gateway.h"

#include <cctype>
#include <cstring>
#include <utility>

#include "core/views.h"
#include "query/executor.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace gmine::http {

namespace {

const char* const kEndpointNames[] = {
    "stores",   "store",    "query",      "summary", "render-svg",
    "mine",     "jobs",     "redirect",   "stats",   "ws-upgrade",
    "ws-op",    "other",
};

int HttpStatusFor(const Status& status) {
  if (status.ok()) return 200;
  if (status.IsNotFound()) return 404;
  if (status.IsInvalidArgument()) return 400;
  if (status.IsAborted()) return 429;      // quota / capacity
  if (status.IsNotSupported()) return 405;
  if (status.IsOutOfRange()) return 413;
  return 500;
}

void FillError(const Status& status, HttpResponse* response) {
  response->status = HttpStatusFor(status);
  response->content_type = "application/json";
  response->body = StrFormat(
      "{\"error\":\"%s\",\"code\":\"%s\"}\n",
      net::JsonEscape(status.message()).c_str(),
      StatusCodeName(status.code()));
}

bool TokenEquals(std::string_view a, std::string_view b) {
  // Length-leaking but content-constant comparison; good enough for a
  // loopback gateway token.
  if (a.size() != b.size()) return false;
  unsigned char diff = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    diff = static_cast<unsigned char>(diff | (a[i] ^ b[i]));
  }
  return diff == 0;
}

/// Splits "/api/stores/NAME[/TAIL]" after the fixed prefix into
/// NAME and TAIL ("" when absent).
void SplitStorePath(std::string_view rest, std::string* name,
                    std::string* tail) {
  const size_t slash = rest.find('/');
  if (slash == std::string_view::npos) {
    *name = std::string(rest);
    tail->clear();
  } else {
    *name = std::string(rest.substr(0, slash));
    *tail = std::string(rest.substr(slash + 1));
  }
}

std::string StoreInfoJson(const core::CatalogStoreInfo& info) {
  return StrFormat(
      "{\"name\":\"%s\",\"open\":%s,\"sessions\":%zu,\"quota\":%zu,"
      "\"file_size\":%llu,\"communities\":%u,\"leaves\":%u,"
      "\"height\":%u,\"labels\":%zu}",
      net::JsonEscape(info.name).c_str(), info.open ? "true" : "false",
      info.live_sessions, info.quota,
      static_cast<unsigned long long>(info.file_size), info.communities,
      info.leaves, info.height, info.labels);
}

std::string JobJson(const MineJobInfo& info) {
  std::string out = StrFormat(
      "{\"job\":%llu,\"store\":\"%s\",\"kernel\":\"%s\","
      "\"state\":\"%s\",\"engine\":\"%s\",\"progress\":{"
      "\"iteration\":%u,\"pages_scanned\":%llu,\"pages_total\":%llu,"
      "\"delta\":%.6g}",
      static_cast<unsigned long long>(info.id),
      net::JsonEscape(info.store).c_str(),
      net::JsonEscape(info.kernel).c_str(),
      net::JsonEscape(info.state).c_str(),
      net::JsonEscape(info.engine).c_str(), info.progress.iteration,
      static_cast<unsigned long long>(info.progress.pages_scanned),
      static_cast<unsigned long long>(info.progress.pages_total),
      info.progress.delta);
  if (!info.result_json.empty()) {
    out += ",\"result\":" + info.result_json;
  }
  if (!info.error.empty()) {
    out += StrFormat(",\"error\":\"%s\"",
                     net::JsonEscape(info.error).c_str());
  }
  out += "}\n";
  return out;
}

}  // namespace

Gateway::Gateway(core::Catalog* catalog, GatewayOptions options)
    : catalog_(catalog), options_(std::move(options)), jobs_(catalog) {
  if (options_.reactor_threads < 1) options_.reactor_threads = 1;
}

Gateway::~Gateway() { Stop(); }

Status Gateway::Start() {
  if (started_.exchange(true)) {
    return Status::Internal("gateway already started");
  }
  ReactorOptions ropts;
  ropts.threads = options_.reactor_threads;
  ropts.max_write_buffer_bytes = options_.max_write_buffer_bytes;
  ropts.poll_interval_ms = options_.poll_interval_ms;
  Reactor::Callbacks callbacks;
  callbacks.on_data = [this](ConnId id, std::string_view data) {
    OnData(id, data);
  };
  callbacks.on_closed = [this](ConnId id) { OnClosed(id); };
  reactor_ = std::make_unique<Reactor>(ropts, std::move(callbacks));
  GMINE_RETURN_IF_ERROR(reactor_->Start());
  GMINE_ASSIGN_OR_RETURN(
      listener_, net::ListenTcp(options_.port, options_.backlog, &port_));
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Gateway::AcceptLoop() {
  while (!stopping_.load()) {
    auto readable = listener_.WaitReadable(options_.poll_interval_ms);
    if (!readable.ok() || !readable.value()) continue;
    auto accepted = net::AcceptConnection(listener_);
    if (!accepted.ok()) continue;
    if (reactor_->open_connections() >= options_.max_conns) {
      rejected_at_capacity_.fetch_add(1, std::memory_order_relaxed);
      HttpResponse busy;
      busy.status = 503;
      busy.keep_alive = false;
      busy.content_type = "application/json";
      busy.body = "{\"error\":\"gateway at connection capacity\"}\n";
      (void)accepted.value().WriteAll(EncodeResponse(busy));
      continue;  // Socket closes via RAII
    }
    // Adoption arms epoll immediately, so the connection's first bytes
    // can reach OnData before this thread runs again — per-connection
    // state is created lazily there, not here.
    (void)reactor_->Adopt(std::move(accepted).value());
  }
}

void Gateway::OnData(ConnId id, std::string_view data) {
  std::shared_ptr<GwConn> conn;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    auto it = conns_.find(id);
    if (it == conns_.end()) {
      auto fresh = std::make_shared<GwConn>();
      fresh->id = id;
      it = conns_.emplace(id, std::move(fresh)).first;
    }
    conn = it->second;
  }
  if (conn->is_ws.load(std::memory_order_acquire)) {
    ServeWs(conn, data);
    return;
  }
  if (!conn->http.Feed(data).ok()) {
    HttpResponse bad;
    bad.status = 400;
    bad.keep_alive = false;
    bad.content_type = "application/json";
    bad.body = "{\"error\":\"malformed HTTP request\"}\n";
    (void)reactor_->Send(id, EncodeResponse(bad));
    reactor_->Close(id);
    return;
  }
  while (conn->http.HasRequest()) {
    const HttpRequest request = conn->http.TakeRequest();
    ServeHttp(conn, request);
    if (conn->is_ws.load(std::memory_order_acquire)) {
      // Bytes pipelined behind the upgrade belong to the frame layer.
      const std::string leftover = conn->http.TakeBuffered();
      if (!leftover.empty()) ServeWs(conn, leftover);
      return;
    }
  }
}

void Gateway::ServeHttp(const std::shared_ptr<GwConn>& conn,
                        const HttpRequest& request) {
  StopWatch watch;
  requests_.fetch_add(1, std::memory_order_relaxed);
  HttpResponse response;
  Endpoint endpoint = kEpOther;
  bool upgraded = false;
  Route(conn, request, &response, &endpoint, &upgraded);
  if (upgraded) {
    Observe(kEpUpgrade, watch.ElapsedMicros(), /*error=*/false);
    return;
  }
  response.keep_alive = request.keep_alive && response.status != 503;
  (void)reactor_->Send(conn->id, EncodeResponse(response));
  if (!response.keep_alive) reactor_->Close(conn->id);
  Observe(endpoint, watch.ElapsedMicros(), response.status >= 400);
}

bool Gateway::Authorized(const HttpRequest& request) const {
  if (options_.bearer_token.empty()) return true;
  const std::string_view header = request.Header("authorization");
  constexpr std::string_view kPrefix = "Bearer ";
  if (header.size() <= kPrefix.size() ||
      header.substr(0, kPrefix.size()) != kPrefix) {
    return false;
  }
  return TokenEquals(header.substr(kPrefix.size()),
                     options_.bearer_token);
}

void Gateway::Route(const std::shared_ptr<GwConn>& conn,
                    const HttpRequest& request, HttpResponse* response,
                    Endpoint* endpoint, bool* upgraded) {
  const std::string& path = request.path;

  if (path == "/stats") {
    *endpoint = kEpStats;
    if (request.method != "GET") {
      FillError(Status::NotSupported("use GET"), response);
      return;
    }
    response->content_type = "application/json";
    response->body = StatsJson();
    return;
  }

  if (path.rfind("/api/", 0) != 0) {
    FillError(Status::NotFound("no such endpoint"), response);
    return;
  }

  // Legacy unversioned paths: answer 301 with the /api/v1 Location so
  // old clients discover the move (before auth — the redirect reveals
  // nothing and needs no token). Bodies are not replayed, so clients
  // must re-issue POSTs themselves.
  if (path.rfind("/api/v1/", 0) != 0) {
    *endpoint = kEpRedirect;
    // Preserve the query string by rewriting the raw target when it
    // carries the same prefix (it does unless oddly percent-encoded).
    const std::string& base =
        request.target.rfind("/api/", 0) == 0 ? request.target : path;
    std::string location = "/api/v1" + base.substr(strlen("/api"));
    response->status = 301;
    response->content_type = "application/json";
    response->extra_headers.emplace_back("Location", location);
    response->body = StrFormat(
        "{\"error\":\"moved permanently\",\"location\":\"%s\"}\n",
        net::JsonEscape(location).c_str());
    return;
  }

  if (!Authorized(request)) {
    response->status = 401;
    response->content_type = "application/json";
    response->extra_headers.emplace_back("WWW-Authenticate", "Bearer");
    response->body = "{\"error\":\"missing or bad bearer token\"}\n";
    return;
  }

  if (path == "/api/v1/shutdown") {
    if (request.method != "POST") {
      FillError(Status::NotSupported("use POST"), response);
      return;
    }
    response->content_type = "application/json";
    response->body = "{\"ok\":true,\"text\":\"shutting down\"}\n";
    response->keep_alive = false;
    RequestShutdown();
    return;
  }

  if (path.rfind("/api/v1/jobs/", 0) == 0) {
    *endpoint = kEpJobs;
    uint64_t job_id = 0;
    if (!ParseUint64(path.substr(strlen("/api/v1/jobs/")), &job_id)) {
      FillError(Status::InvalidArgument("job id must be an integer"),
                response);
      return;
    }
    if (request.method == "GET") {
      auto info = jobs_.Get(job_id);
      if (!info.ok()) {
        FillError(info.status(), response);
        return;
      }
      response->content_type = "application/json";
      response->body = JobJson(info.value());
      return;
    }
    if (request.method == "DELETE") {
      bool removed = false;
      auto info = jobs_.Cancel(job_id, &removed);
      if (!info.ok()) {
        FillError(info.status(), response);
        return;
      }
      // 202: cancellation requested, job still winding down (poll it).
      // 200: the finished job's record was removed.
      response->status = removed ? 200 : 202;
      response->content_type = "application/json";
      response->body = JobJson(info.value());
      return;
    }
    FillError(Status::NotSupported("use GET or DELETE"), response);
    return;
  }

  if (path == "/api/v1/stores") {
    *endpoint = kEpStores;
    if (request.method != "GET") {
      FillError(Status::NotSupported("use GET"), response);
      return;
    }
    std::string body = "{\"stores\":[";
    bool first = true;
    for (const core::CatalogStoreInfo& info : catalog_->ListStores()) {
      if (!first) body += ",";
      first = false;
      body += StrFormat(
          "{\"name\":\"%s\",\"open\":%s,\"sessions\":%zu,\"quota\":%zu}",
          net::JsonEscape(info.name).c_str(),
          info.open ? "true" : "false", info.live_sessions, info.quota);
    }
    body += "]}\n";
    response->content_type = "application/json";
    response->body = std::move(body);
    return;
  }

  if (path.rfind("/api/v1/stores/", 0) != 0) {
    FillError(Status::NotFound("no such endpoint"), response);
    return;
  }
  std::string store_name, tail;
  SplitStorePath(std::string_view(path).substr(strlen("/api/v1/stores/")),
                 &store_name, &tail);

  if (tail == "ws") {
    *endpoint = kEpUpgrade;
    HandleUpgrade(conn, request, store_name, response, upgraded);
    return;
  }

  if (tail == "mine") {
    *endpoint = kEpMine;
    if (request.method != "POST") {
      FillError(Status::NotSupported("use POST"), response);
      return;
    }
    std::string kernel = "pagerank";
    uint64_t top_k = 10;
    auto it = request.query.find("kernel");
    if (it != request.query.end()) kernel = it->second;
    it = request.query.find("top");
    if (it != request.query.end() && !ParseUint64(it->second, &top_k)) {
      FillError(Status::InvalidArgument("top must be an integer"),
                response);
      return;
    }
    auto job_id = jobs_.Submit(store_name, kernel,
                               static_cast<uint32_t>(top_k));
    if (!job_id.ok()) {
      FillError(job_id.status(), response);
      return;
    }
    response->status = 202;  // accepted: poll /api/v1/jobs/ID
    response->content_type = "application/json";
    response->extra_headers.emplace_back(
        "Location", StrFormat("/api/v1/jobs/%llu",
                              (unsigned long long)job_id.value()));
    response->body = StrFormat(
        "{\"job\":%llu,\"kernel\":\"%s\",\"store\":\"%s\","
        "\"poll\":\"/api/v1/jobs/%llu\"}\n",
        (unsigned long long)job_id.value(),
        net::JsonEscape(kernel).c_str(),
        net::JsonEscape(store_name).c_str(),
        (unsigned long long)job_id.value());
    return;
  }

  // The REST endpoints lease a session for the request's duration:
  // the store opens lazily and closes again when the last lease goes.
  auto lease = catalog_->AcquireSession(store_name);
  if (!lease.ok()) {
    *endpoint = tail.empty() ? kEpStore : kEpOther;
    FillError(lease.status(), response);
    return;
  }
  core::CatalogSession session = std::move(lease).value();

  if (tail.empty()) {
    *endpoint = kEpStore;
    if (request.method != "GET") {
      FillError(Status::NotSupported("use GET"), response);
      return;
    }
    auto info = catalog_->Info(store_name);
    if (!info.ok()) {
      FillError(info.status(), response);
      return;
    }
    response->content_type = "application/json";
    response->body = StoreInfoJson(info.value()) + "\n";
    return;
  }

  if (tail == "query") {
    *endpoint = kEpQuery;
    std::string statement;
    if (request.method == "POST") {
      statement = request.body;
    } else if (request.method == "GET") {
      auto it = request.query.find("q");
      if (it != request.query.end()) statement = it->second;
    } else {
      FillError(Status::NotSupported("use GET ?q= or POST"), response);
      return;
    }
    if (statement.empty()) {
      FillError(
          Status::InvalidArgument("query expects a GQL statement"),
          response);
      return;
    }
    query::Executor executor(session.store());
    auto result = executor.ExecuteText(statement);
    if (!result.ok()) {
      FillError(result.status(), response);
      return;
    }
    response->content_type = "application/json";
    response->body = query::ResultToJson(result.value()) + "\n";
    return;
  }

  if (tail == "summary" || tail == "render.svg") {
    const bool svg = tail == "render.svg";
    *endpoint = svg ? kEpRenderSvg : kEpSummary;
    if (request.method != "GET") {
      FillError(Status::NotSupported("use GET"), response);
      return;
    }
    std::string node;
    auto it = request.query.find("node");
    if (it != request.query.end()) node = it->second;
    Status status = session.With([&](gtree::NavigationSession& nav)
                                     -> Status {
      const gtree::GTree& tree = nav.store()->tree();
      if (!node.empty()) {
        const gtree::TreeNodeId id = tree.FindByName(node);
        if (id == gtree::kInvalidTreeNode) {
          return Status::NotFound(
              StrFormat("community '%s' not found", node.c_str()));
        }
        GMINE_RETURN_IF_ERROR(nav.FocusNode(id));
      }
      const gtree::TreeNode& focus = tree.node(nav.focus());
      if (svg) {
        auto doc = core::HierarchyViewSvgString(
            tree, nav.context(), nav.store()->connectivity());
        if (!doc.ok()) return doc.status();
        response->content_type = "image/svg+xml";
        response->body = std::move(doc).value();
        return Status::OK();
      }
      std::vector<std::string> names;
      for (gtree::TreeNodeId id : tree.PathFromRoot(nav.focus())) {
        names.push_back(tree.node(id).name);
      }
      response->content_type = "application/json";
      response->body = StrFormat(
          "{\"focus\":\"%s\",\"depth\":%u,\"children\":%zu,"
          "\"display\":%zu,\"path\":\"%s\"}\n",
          net::JsonEscape(focus.name).c_str(), focus.depth,
          focus.children.size(), nav.context().DisplaySize(),
          net::JsonEscape(JoinStrings(names, "/")).c_str());
      return Status::OK();
    });
    if (!status.ok()) FillError(status, response);
    return;
  }

  FillError(Status::NotFound("no such endpoint"), response);
}

void Gateway::HandleUpgrade(const std::shared_ptr<GwConn>& conn,
                            const HttpRequest& request,
                            const std::string& store,
                            HttpResponse* response, bool* upgraded) {
  auto header_token = [&](std::string_view name, std::string_view want) {
    // Comma-separated token list, case-insensitive match.
    std::string value = std::string(request.Header(name));
    for (char& c : value) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    std::string needle(want);
    return (" " + value + ",").find(" " + needle + ",") !=
               std::string::npos ||
           value == needle;
  };
  const std::string key = std::string(request.Header("sec-websocket-key"));
  if (request.method != "GET" || !header_token("upgrade", "websocket") ||
      key.empty()) {
    response->status = 426;
    response->content_type = "application/json";
    response->extra_headers.emplace_back("Upgrade", "websocket");
    response->body = "{\"error\":\"websocket upgrade required\"}\n";
    return;
  }
  if (request.Header("sec-websocket-version") != "13") {
    FillError(Status::InvalidArgument("unsupported websocket version"),
              response);
    return;
  }
  auto lease = catalog_->AcquireSession(store);
  if (!lease.ok()) {
    FillError(lease.status(), response);
    return;
  }
  conn->lease = std::move(lease).value();

  // Hand-rolled 101: the Connection header must say Upgrade here, not
  // keep-alive/close, so the generic encoder does not fit.
  std::string wire = StrFormat("HTTP/1.1 101 Switching Protocols\r\n"
                               "Upgrade: websocket\r\n"
                               "Connection: Upgrade\r\n"
                               "Sec-WebSocket-Accept: %s\r\n\r\n",
                               WebSocketAcceptKey(key).c_str());
  (void)reactor_->Send(conn->id, wire);
  conn->is_ws.store(true, std::memory_order_release);
  upgrades_.fetch_add(1, std::memory_order_relaxed);
  *upgraded = true;
}

void Gateway::ServeWs(const std::shared_ptr<GwConn>& conn,
                      std::string_view data) {
  if (!conn->ws.Feed(data).ok()) {
    if (!conn->sent_close) {
      (void)reactor_->Send(conn->id,
                           EncodeWsClose(1002, "protocol error"));
      conn->sent_close = true;
    }
    reactor_->Close(conn->id);
    return;
  }
  while (conn->ws.HasFrame()) {
    auto message = conn->assembler.OnFrame(conn->ws.TakeFrame());
    if (!message.ok()) {
      if (!conn->sent_close) {
        (void)reactor_->Send(conn->id,
                             EncodeWsClose(1002, "protocol error"));
        conn->sent_close = true;
      }
      reactor_->Close(conn->id);
      return;
    }
    if (!message.value().ready) continue;
    const WsOpcode opcode = message.value().opcode;
    std::string payload = std::move(message.value().payload);
    switch (opcode) {
      case WsOpcode::kPing:
        (void)reactor_->Send(conn->id,
                             EncodeWsFrame(WsOpcode::kPong, payload));
        continue;
      case WsOpcode::kPong:
        continue;  // keepalive ack; nothing to do
      case WsOpcode::kClose: {
        if (!conn->sent_close) {
          // Echo the close handshake, then drop after the flush.
          uint16_t code = 1000;
          std::string reason;
          ParseWsClose(payload, &code, &reason);
          (void)reactor_->Send(
              conn->id,
              EncodeWsClose(code == 1005 ? 1000 : code, ""));
          conn->sent_close = true;
        }
        reactor_->Close(conn->id);
        return;
      }
      case WsOpcode::kText: {
        StopWatch watch;
        ws_messages_.fetch_add(1, std::memory_order_relaxed);
        bool close_conn = false;
        const std::string reply =
            ExecuteWsOp(conn, payload, &close_conn);
        (void)reactor_->Send(conn->id,
                             EncodeWsFrame(WsOpcode::kText, reply));
        Observe(kEpWsOp, watch.ElapsedMicros(),
                reply.find("\"ok\":false") != std::string::npos);
        if (close_conn) {
          if (!conn->sent_close) {
            (void)reactor_->Send(conn->id, EncodeWsClose(1000, "bye"));
            conn->sent_close = true;
          }
          reactor_->Close(conn->id);
          return;
        }
        continue;
      }
      case WsOpcode::kBinary: {
        if (!conn->sent_close) {
          (void)reactor_->Send(
              conn->id, EncodeWsClose(1003, "text frames only"));
          conn->sent_close = true;
        }
        reactor_->Close(conn->id);
        return;
      }
      default:
        continue;
    }
  }
}

std::string Gateway::ExecuteWsOp(const std::shared_ptr<GwConn>& conn,
                                 const std::string& line,
                                 bool* close_conn) {
  net::Response response;
  auto encode = [&] {
    // The line protocol's JSON framing, newline stripped (the frame is
    // the delimiter on this transport).
    std::string encoded = net::EncodeResponse(response, /*json=*/true);
    while (!encoded.empty() && encoded.back() == '\n') encoded.pop_back();
    return encoded;
  };
  auto parsed = net::ParseRequest(line);
  if (!parsed.ok()) {
    response.status = parsed.status();
    return encode();
  }
  const net::Request& request = parsed.value();
  const gtree::GTree& tree = conn->lease.store()->tree();

  switch (request.op) {
    case net::RequestOp::kHelp:
      response.text = net::ProtocolHelpText();
      return encode();
    case net::RequestOp::kPing:
      response.text = "pong";
      return encode();
    case net::RequestOp::kClose:
      response.text = "bye";
      *close_conn = true;
      return encode();
    case net::RequestOp::kShutdown:
    case net::RequestOp::kEdit:
      response.status = Status::NotSupported(
          "not available over the gateway websocket");
      return encode();
    case net::RequestOp::kStats:
      response.text = StrFormat(
          "store=%s session=%llu",
          conn->lease.store_name().c_str(),
          static_cast<unsigned long long>(conn->lease.id()));
      return encode();
    case net::RequestOp::kQuery: {
      if (request.arg.empty()) {
        response.status =
            Status::InvalidArgument("query expects a GQL statement");
        return encode();
      }
      query::Executor executor(conn->lease.store());
      auto result = executor.ExecuteText(request.arg);
      if (!result.ok()) {
        response.status = result.status();
        return encode();
      }
      const query::QueryStats& qs = result.value().stats;
      response.text = StrFormat(
          "rows=%llu pages_scanned=%llu/%llu pruned=%llu",
          (unsigned long long)qs.rows_output,
          (unsigned long long)qs.pages_scanned,
          (unsigned long long)qs.pages_total,
          (unsigned long long)qs.pages_pruned);
      response.body = query::ResultToJson(result.value());
      response.has_body = true;
      return encode();
    }
    default:
      break;
  }

  // Navigation ops against the pinned catalog session — the same
  // semantics as the line-protocol server (net/server.cc).
  response.status = conn->lease.With([&](gtree::NavigationSession& nav)
                                         -> Status {
    auto focus_name = [&] { return tree.node(nav.focus()).name; };
    auto nav_text = [&] {
      return StrFormat("focus=%s display=%zu", focus_name().c_str(),
                       nav.context().DisplaySize());
    };
    switch (request.op) {
      case net::RequestOp::kOpen:
        response.text = StrFormat(
            "session %llu store=%s %s",
            static_cast<unsigned long long>(conn->lease.id()),
            conn->lease.store_name().c_str(), nav_text().c_str());
        return Status::OK();
      case net::RequestOp::kRoot:
        GMINE_RETURN_IF_ERROR(nav.FocusRoot());
        break;
      case net::RequestOp::kFocus: {
        const gtree::TreeNodeId id = tree.FindByName(request.arg);
        if (id == gtree::kInvalidTreeNode) {
          return Status::NotFound(StrFormat("community '%s' not found",
                                            request.arg.c_str()));
        }
        GMINE_RETURN_IF_ERROR(nav.FocusNode(id));
        break;
      }
      case net::RequestOp::kChild: {
        uint64_t index = 0;
        if (!ParseUint64(request.arg, &index)) {
          return Status::InvalidArgument("child expects an index");
        }
        GMINE_RETURN_IF_ERROR(nav.FocusChild(index));
        break;
      }
      case net::RequestOp::kParent:
        GMINE_RETURN_IF_ERROR(nav.FocusParent());
        break;
      case net::RequestOp::kBack:
        GMINE_RETURN_IF_ERROR(nav.Back());
        break;
      case net::RequestOp::kLocate: {
        auto v = nav.LocateByLabel(request.arg);
        if (!v.ok()) return v.status();
        response.text =
            StrFormat("node %u %s", v.value(), nav_text().c_str());
        return Status::OK();
      }
      case net::RequestOp::kLoad: {
        auto payload = nav.LoadFocusSubgraph();
        if (!payload.ok()) return payload.status();
        response.text = StrFormat(
            "leaf=%s n=%u e=%llu", focus_name().c_str(),
            payload.value()->subgraph.graph.num_nodes(),
            static_cast<unsigned long long>(
                payload.value()->subgraph.graph.num_edges()));
        return Status::OK();
      }
      case net::RequestOp::kSummary: {
        std::vector<std::string> path;
        for (gtree::TreeNodeId id : tree.PathFromRoot(nav.focus())) {
          path.push_back(tree.node(id).name);
        }
        response.text = StrFormat(
            "focus=%s depth=%u children=%zu display=%zu path=%s",
            focus_name().c_str(), tree.node(nav.focus()).depth,
            tree.node(nav.focus()).children.size(),
            nav.context().DisplaySize(), JoinStrings(path, "/").c_str());
        return Status::OK();
      }
      case net::RequestOp::kConnectivity:
        response.text =
            StrFormat("edges=%zu", nav.ContextConnectivity().size());
        return Status::OK();
      case net::RequestOp::kRender: {
        if (request.arg != "svg") {
          return Status::InvalidArgument(
              "render supports exactly one format: 'render svg'");
        }
        auto svg = core::HierarchyViewSvgString(
            tree, nav.context(), nav.store()->connectivity());
        if (!svg.ok()) return svg.status();
        response.body = std::move(svg).value();
        response.has_body = true;
        response.text = StrFormat("svg %s", focus_name().c_str());
        return Status::OK();
      }
      default:
        return Status::Internal("unhandled op");
    }
    response.text = nav_text();
    return Status::OK();
  });
  return encode();
}

void Gateway::OnClosed(ConnId id) {
  std::shared_ptr<GwConn> conn;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    conn = std::move(it->second);
    conns_.erase(it);
  }
  conn->lease.Release();  // store may close here (last ref)
}

void Gateway::RequestShutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  shutdown_requested_ = true;
  shutdown_cv_.notify_all();
}

void Gateway::WaitUntilShutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

void Gateway::Stop() {
  if (!started_.load() || stopped_) return;
  stopping_.store(true);
  jobs_.Shutdown();  // cancel + join workers; their leases release
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  // Graceful drain: every live WebSocket gets a 1001 going-away close,
  // flushed by the reactor's final drain pass.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [id, conn] : conns_) {
      if (conn->is_ws.load(std::memory_order_acquire) &&
          !conn->sent_close) {
        (void)reactor_->Send(id, EncodeWsClose(1001, "server shutdown"));
        conn->sent_close = true;
      }
    }
  }
  reactor_->Stop();  // fires on_closed for the rest -> leases release
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [id, conn] : conns_) conn->lease.Release();
    conns_.clear();
  }
  RequestShutdown();
  stopped_ = true;
}

void Gateway::Observe(Endpoint endpoint, int64_t micros, bool error) {
  EndpointCounter& counter = endpoint_counters_[endpoint];
  counter.count.fetch_add(1, std::memory_order_relaxed);
  if (error) counter.errors.fetch_add(1, std::memory_order_relaxed);
  const uint64_t us = micros < 0 ? 0 : static_cast<uint64_t>(micros);
  counter.total_micros.fetch_add(us, std::memory_order_relaxed);
  uint64_t seen = counter.max_micros.load(std::memory_order_relaxed);
  while (us > seen && !counter.max_micros.compare_exchange_weak(
                          seen, us, std::memory_order_relaxed)) {
  }
}

std::string Gateway::StatsJson() const {
  const ReactorStats reactor = reactor_->stats();
  const core::CatalogStats catalog = catalog_->stats();
  storage::BufferPool& pool = options_.buffer_pool != nullptr
                                  ? *options_.buffer_pool
                                  : storage::BufferPool::Global();
  const storage::BufferPoolStats pstats = pool.stats();
  std::string out = StrFormat(
      "{\"gateway\":{\"connections\":%zu,\"adopted\":%llu,"
      "\"closed\":%llu,\"evicted_slow\":%llu,\"rejected\":%llu,"
      "\"requests\":%llu,\"upgrades\":%llu,\"ws_messages\":%llu},",
      reactor.open_now, (unsigned long long)reactor.adopted,
      (unsigned long long)reactor.closed,
      (unsigned long long)reactor.evicted_slow,
      (unsigned long long)rejected_at_capacity_.load(),
      (unsigned long long)requests_.load(),
      (unsigned long long)upgrades_.load(),
      (unsigned long long)ws_messages_.load());
  out += StrFormat(
      "\"catalog\":{\"stores\":%zu,\"open_now\":%zu,"
      "\"sessions_now\":%zu,\"opens\":%llu,\"closes\":%llu,"
      "\"leases\":%llu,\"quota_rejections\":%llu},",
      catalog.stores, catalog.open_now, catalog.sessions_now,
      (unsigned long long)catalog.opens,
      (unsigned long long)catalog.closes,
      (unsigned long long)catalog.leases,
      (unsigned long long)catalog.quota_rejections);
  out += StrFormat(
      "\"pool\":{\"budget_bytes\":%llu,\"resident_bytes\":%llu,"
      "\"stores\":%zu},\"endpoints\":[",
      (unsigned long long)pstats.budget_bytes,
      (unsigned long long)pstats.resident_bytes, pstats.stores);
  for (size_t i = 0; i < kEpCount; ++i) {
    const EndpointCounter& counter = endpoint_counters_[i];
    if (i > 0) out += ",";
    out += StrFormat(
        "{\"endpoint\":\"%s\",\"count\":%llu,\"errors\":%llu,"
        "\"total_micros\":%llu,\"max_micros\":%llu}",
        kEndpointNames[i],
        (unsigned long long)counter.count.load(),
        (unsigned long long)counter.errors.load(),
        (unsigned long long)counter.total_micros.load(),
        (unsigned long long)counter.max_micros.load());
  }
  out += "]}\n";
  return out;
}

GatewayStats Gateway::stats() const {
  GatewayStats out;
  out.reactor = reactor_ != nullptr ? reactor_->stats() : ReactorStats{};
  out.requests = requests_.load();
  out.upgrades = upgrades_.load();
  out.ws_messages = ws_messages_.load();
  out.rejected_at_capacity = rejected_at_capacity_.load();
  for (size_t i = 0; i < kEpCount; ++i) {
    EndpointStats ep;
    ep.endpoint = kEndpointNames[i];
    ep.count = endpoint_counters_[i].count.load();
    ep.errors = endpoint_counters_[i].errors.load();
    ep.total_micros = endpoint_counters_[i].total_micros.load();
    ep.max_micros = endpoint_counters_[i].max_micros.load();
    out.endpoints.push_back(std::move(ep));
  }
  return out;
}

}  // namespace gmine::http
