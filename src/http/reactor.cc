#include "http/reactor.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "util/string_util.h"

namespace gmine::http {

/// One adopted connection. The socket is only touched by the owning
/// loop thread; `mu` guards the cross-thread fields (output buffer and
/// close flags).
struct Reactor::Conn {
  ConnId id = 0;
  net::Socket sock;
  Loop* loop = nullptr;

  std::mutex mu;
  std::string out;             // queued output (drained from offset 0)
  size_t out_off = 0;
  bool close_after_flush = false;
  bool evict = false;          // slow client: close without flushing
  bool dead = false;           // torn down; on_closed fired
};

/// One epoll event loop.
struct Reactor::Loop {
  int epoll_fd = -1;
  int event_fd = -1;  // cross-thread wakeup
  std::thread thread;

  /// Connections owned by this loop, and the subset needing a flush
  /// pass (Send/Close kicked them).
  std::mutex mu;
  std::unordered_map<ConnId, std::shared_ptr<Conn>> conns;
  std::vector<std::shared_ptr<Conn>> kicked;

  ~Loop() {
    if (epoll_fd >= 0) ::close(epoll_fd);
    if (event_fd >= 0) ::close(event_fd);
  }
};

namespace {

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(
        StrFormat("fcntl(O_NONBLOCK): %s", ::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace

Reactor::Reactor(ReactorOptions options, Callbacks callbacks)
    : options_(options), callbacks_(std::move(callbacks)) {
  if (options_.threads < 1) options_.threads = 1;
}

Reactor::~Reactor() { Stop(); }

Status Reactor::Start() {
  if (started_.exchange(true)) {
    return Status::Internal("reactor already started");
  }
  for (int i = 0; i < options_.threads; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (loop->epoll_fd < 0) {
      return Status::IOError(
          StrFormat("epoll_create1: %s", ::strerror(errno)));
    }
    loop->event_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (loop->event_fd < 0) {
      return Status::IOError(
          StrFormat("eventfd: %s", ::strerror(errno)));
    }
    struct epoll_event ev;
    ev.events = EPOLLIN;
    ev.data.u64 = 0;  // id 0 = the wakeup eventfd
    if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->event_fd, &ev) <
        0) {
      return Status::IOError(
          StrFormat("epoll_ctl(eventfd): %s", ::strerror(errno)));
    }
    loops_.push_back(std::move(loop));
  }
  for (auto& loop : loops_) {
    Loop* raw = loop.get();
    raw->thread = std::thread([this, raw] { LoopThread(raw); });
  }
  return Status::OK();
}

void Reactor::Stop() {
  if (!started_.load() || stopped_) return;
  stopping_.store(true);
  for (auto& loop : loops_) WakeLoop(loop.get());
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  stopped_ = true;
}

void Reactor::WakeLoop(Loop* loop) {
  const uint64_t one = 1;
  ssize_t ignored = ::write(loop->event_fd, &one, sizeof(one));
  (void)ignored;
}

gmine::Result<ConnId> Reactor::Adopt(net::Socket sock) {
  if (!started_.load() || stopping_.load()) {
    return Status::Aborted("reactor not running");
  }
  GMINE_RETURN_IF_ERROR(SetNonBlocking(sock.fd()));
  auto conn = std::make_shared<Conn>();
  conn->id = next_id_.fetch_add(1);
  conn->sock = std::move(sock);
  Loop* loop =
      loops_[next_loop_.fetch_add(1) % loops_.size()].get();
  conn->loop = loop;

  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.emplace(conn->id, conn);
  }
  {
    std::lock_guard<std::mutex> lock(loop->mu);
    loop->conns.emplace(conn->id, conn);
  }
  struct epoll_event ev;
  // Edge-triggered both ways, armed once: EPOLLOUT edges fire only on
  // full->writable transitions, so an idle connection costs nothing.
  ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
  ev.data.u64 = conn->id;
  if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, conn->sock.fd(), &ev) <
      0) {
    const Status st = Status::IOError(
        StrFormat("epoll_ctl(add): %s", ::strerror(errno)));
    std::lock_guard<std::mutex> g1(conns_mu_);
    std::lock_guard<std::mutex> g2(loop->mu);
    conns_.erase(conn->id);
    loop->conns.erase(conn->id);
    return st;
  }
  adopted_.fetch_add(1, std::memory_order_relaxed);
  return conn->id;
}

bool Reactor::Send(ConnId id, std::string_view data) {
  std::shared_ptr<Conn> conn;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    auto it = conns_.find(id);
    if (it == conns_.end()) return false;
    conn = it->second;
  }
  bool evict = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->dead || conn->evict) return false;
    if (conn->out.size() - conn->out_off + data.size() >
        options_.max_write_buffer_bytes) {
      conn->evict = true;  // slow client: loop will tear it down
      evict = true;
    } else {
      conn->out.append(data.data(), data.size());
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn->loop->mu);
    conn->loop->kicked.push_back(conn);
  }
  WakeLoop(conn->loop);
  return !evict;
}

void Reactor::Close(ConnId id) {
  std::shared_ptr<Conn> conn;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    conn = it->second;
  }
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->dead) return;
    conn->close_after_flush = true;
  }
  {
    std::lock_guard<std::mutex> lock(conn->loop->mu);
    conn->loop->kicked.push_back(conn);
  }
  WakeLoop(conn->loop);
}

void Reactor::LoopThread(Loop* loop) {
  constexpr int kMaxEvents = 128;
  struct epoll_event events[kMaxEvents];
  while (!stopping_.load()) {
    const int n = ::epoll_wait(loop->epoll_fd, events, kMaxEvents,
                               options_.poll_interval_ms);
    for (int i = 0; i < n && !stopping_.load(); ++i) {
      const ConnId id = events[i].data.u64;
      if (id == 0) {
        uint64_t drain = 0;
        while (::read(loop->event_fd, &drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      std::shared_ptr<Conn> conn;
      {
        std::lock_guard<std::mutex> lock(loop->mu);
        auto it = loop->conns.find(id);
        if (it == loop->conns.end()) continue;
        conn = it->second;
      }
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        Destroy(loop, conn, /*evicted=*/false);
        continue;
      }
      if (events[i].events & EPOLLOUT) {
        if (!HandleWritable(loop, conn)) continue;
      }
      if (events[i].events & (EPOLLIN | EPOLLRDHUP)) {
        HandleReadable(loop, conn);
      }
    }
    // Flush pass for connections kicked by Send/Close.
    std::vector<std::shared_ptr<Conn>> kicked;
    {
      std::lock_guard<std::mutex> lock(loop->mu);
      kicked.swap(loop->kicked);
    }
    for (const auto& conn : kicked) {
      if (stopping_.load()) break;
      (void)HandleWritable(loop, conn);
    }
  }

  // Drain: one last non-blocking flush attempt each, then tear down.
  std::vector<std::shared_ptr<Conn>> remaining;
  {
    std::lock_guard<std::mutex> lock(loop->mu);
    remaining.reserve(loop->conns.size());
    for (auto& [id, conn] : loop->conns) remaining.push_back(conn);
  }
  for (const auto& conn : remaining) {
    if (HandleWritable(loop, conn)) {
      Destroy(loop, conn, /*evicted=*/false);
    }
  }
}

void Reactor::HandleReadable(Loop* loop,
                             const std::shared_ptr<Conn>& conn) {
  std::string buf;
  buf.resize(options_.read_chunk_bytes);
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->dead) return;
    }
    const ssize_t n =
        ::recv(conn->sock.fd(), buf.data(), buf.size(), 0);
    if (n > 0) {
      bytes_in_.fetch_add(static_cast<uint64_t>(n),
                          std::memory_order_relaxed);
      if (callbacks_.on_data) {
        callbacks_.on_data(conn->id,
                           std::string_view(buf.data(),
                                            static_cast<size_t>(n)));
      }
      continue;  // edge-triggered: drain until EAGAIN
    }
    if (n == 0) {  // peer closed
      Destroy(loop, conn, /*evicted=*/false);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    Destroy(loop, conn, /*evicted=*/false);
    return;
  }
}

bool Reactor::HandleWritable(Loop* loop,
                             const std::shared_ptr<Conn>& conn) {
  std::unique_lock<std::mutex> lock(conn->mu);
  if (conn->dead) return false;
  if (conn->evict) {
    lock.unlock();
    Destroy(loop, conn, /*evicted=*/true);
    return false;
  }
  while (conn->out_off < conn->out.size()) {
    const ssize_t n = ::send(conn->sock.fd(),
                             conn->out.data() + conn->out_off,
                             conn->out.size() - conn->out_off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_off += static_cast<size_t>(n);
      bytes_out_.fetch_add(static_cast<uint64_t>(n),
                           std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Kernel buffer full; the EPOLLOUT edge will resume us.
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    lock.unlock();
    Destroy(loop, conn, /*evicted=*/false);
    return false;
  }
  if (conn->out_off > 0) {
    conn->out.clear();
    conn->out_off = 0;
  }
  if (conn->close_after_flush) {
    lock.unlock();
    Destroy(loop, conn, /*evicted=*/false);
    return false;
  }
  return true;
}

void Reactor::Destroy(Loop* loop, const std::shared_ptr<Conn>& conn,
                      bool evicted) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->dead) return;
    conn->dead = true;
  }
  ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, conn->sock.fd(), nullptr);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.erase(conn->id);
  }
  {
    std::lock_guard<std::mutex> lock(loop->mu);
    loop->conns.erase(conn->id);
  }
  conn->sock.Close();
  closed_.fetch_add(1, std::memory_order_relaxed);
  if (evicted) evicted_slow_.fetch_add(1, std::memory_order_relaxed);
  if (callbacks_.on_closed) callbacks_.on_closed(conn->id);
}

ReactorStats Reactor::stats() const {
  ReactorStats out;
  out.adopted = adopted_.load(std::memory_order_relaxed);
  out.closed = closed_.load(std::memory_order_relaxed);
  out.evicted_slow = evicted_slow_.load(std::memory_order_relaxed);
  out.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  out.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  out.open_now = open_connections();
  return out;
}

size_t Reactor::open_connections() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return conns_.size();
}

}  // namespace gmine::http
