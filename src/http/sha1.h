// SHA-1 and Base64, self-contained. The gateway needs exactly one
// cryptographic operation: the RFC 6455 Sec-WebSocket-Accept
// handshake digest (base64(sha1(key + GUID))) — SHA-1 is specified
// there for compatibility, not for security, and nothing else in the
// codebase should treat it as a secure hash.

#ifndef GMINE_HTTP_SHA1_H_
#define GMINE_HTTP_SHA1_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace gmine::http {

/// SHA-1 digest of `data` (FIPS 180-1), 20 bytes.
std::array<uint8_t, 20> Sha1(std::string_view data);

/// Standard Base64 (RFC 4648 §4, with padding).
std::string Base64Encode(std::string_view data);

}  // namespace gmine::http

#endif  // GMINE_HTTP_SHA1_H_
