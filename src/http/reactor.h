// The gateway's event engine: a small pool of epoll event loops, each
// edge-triggered and non-blocking, so one process holds tens of
// thousands of idle connections at the cost of a few file descriptors
// per loop — not a thread per connection (docs/HTTP.md).
//
// Division of labor:
//   * the owner (http::Gateway) accepts sockets and Adopt()s them; the
//     reactor round-robins them across its loops;
//   * all protocol work happens in callbacks on the owning loop's
//     thread — on_data hands up whatever bytes arrived, on_closed is
//     the one and final teardown notification for a connection, so
//     per-connection state needs no locking as long as only callbacks
//     touch it;
//   * writes from any thread: Send() appends to the connection's
//     bounded output buffer and wakes its loop, which owns the actual
//     socket writes. A peer that stops reading fills the buffer and is
//     evicted (closed, on_closed fired) — slow clients cannot pin
//     memory;
//   * Stop() is a graceful drain: each loop makes a final non-blocking
//     flush attempt per connection, then closes everything and joins.

#ifndef GMINE_HTTP_REACTOR_H_
#define GMINE_HTTP_REACTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/socket.h"
#include "util/status.h"

namespace gmine::http {

/// Reactor-wide connection identity (never reused within a run).
using ConnId = uint64_t;

struct ReactorOptions {
  /// Event-loop threads; connections are assigned round-robin.
  int threads = 1;
  /// Output buffered per connection before it is evicted as a slow
  /// client.
  size_t max_write_buffer_bytes = 256 * 1024;
  /// recv() chunk size.
  size_t read_chunk_bytes = 16 * 1024;
  /// epoll_wait timeout (shutdown-check granularity).
  int poll_interval_ms = 100;
};

struct ReactorStats {
  uint64_t adopted = 0;
  uint64_t closed = 0;        // connections fully torn down
  uint64_t evicted_slow = 0;  // closed for an overfull write buffer
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  size_t open_now = 0;
};

class Reactor {
 public:
  struct Callbacks {
    /// Bytes arrived on `id`; runs on the owning loop thread.
    std::function<void(ConnId, std::string_view)> on_data;
    /// `id` is gone (peer close, error, eviction or Stop); runs on the
    /// owning loop thread, exactly once per adopted connection.
    std::function<void(ConnId)> on_closed;
  };

  Reactor(ReactorOptions options, Callbacks callbacks);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Spawns the loop threads. Call once, before Adopt.
  Status Start();

  /// Graceful drain: final flush attempt per connection, close all
  /// (on_closed fires for each), join the loops. Idempotent.
  void Stop();

  /// Takes ownership of an accepted socket, makes it non-blocking and
  /// registers it with a loop. Thread-safe.
  gmine::Result<ConnId> Adopt(net::Socket sock);

  /// Queues bytes for `id` and wakes its loop. False when the id is
  /// unknown/closing or the write buffer overflowed (the connection is
  /// then evicted). Thread-safe.
  bool Send(ConnId id, std::string_view data);

  /// Asks the loop to close `id` after flushing queued output.
  /// Unknown ids are ignored. Thread-safe.
  void Close(ConnId id);

  ReactorStats stats() const;
  size_t open_connections() const;

 private:
  struct Conn;
  struct Loop;

  void LoopThread(Loop* loop);
  void HandleReadable(Loop* loop, const std::shared_ptr<Conn>& conn);
  /// Flushes queued output; closes when drained and close-requested.
  /// Returns false when the connection died.
  bool HandleWritable(Loop* loop, const std::shared_ptr<Conn>& conn);
  void Destroy(Loop* loop, const std::shared_ptr<Conn>& conn,
               bool evicted);
  void WakeLoop(Loop* loop);

  ReactorOptions options_;
  Callbacks callbacks_;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;  // Stop() completed (caller thread)

  /// id -> connection, for Send/Close from any thread.
  mutable std::mutex conns_mu_;
  std::unordered_map<ConnId, std::shared_ptr<Conn>> conns_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<size_t> next_loop_{0};

  std::atomic<uint64_t> adopted_{0};
  std::atomic<uint64_t> closed_{0};
  std::atomic<uint64_t> evicted_slow_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
};

}  // namespace gmine::http

#endif  // GMINE_HTTP_REACTOR_H_
