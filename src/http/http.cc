#include "http/http.h"

#include <algorithm>
#include <cctype>

#include "util/string_util.h"

namespace gmine::http {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string_view HttpRequest::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return value;
  }
  return {};
}

bool HttpRequest::HasHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return true;
  }
  return false;
}

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = HexDigit(s[i + 1]);
      const int lo = HexDigit(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(s[i] == '+' ? ' ' : s[i]);
  }
  return out;
}

HttpRequestParser::HttpRequestParser(HttpParserLimits limits)
    : limits_(limits) {}

Status HttpRequestParser::Feed(std::string_view data) {
  if (!error_.ok()) return error_;
  Status st = Ingest(data);
  if (!st.ok()) error_ = st;  // poison: one framing error ends the conn
  return st;
}

Status HttpRequestParser::Ingest(std::string_view data) {
  buffer_.append(data.data(), data.size());
  for (;;) {
    if (in_body_) {
      const size_t take = std::min(body_needed_, buffer_.size());
      pending_.body.append(buffer_, 0, take);
      buffer_.erase(0, take);
      body_needed_ -= take;
      if (body_needed_ > 0) return Status::OK();  // need more bytes
      in_body_ = false;
      ready_.push_back(std::move(pending_));
      pending_ = HttpRequest();
      continue;
    }
    const size_t head_end = buffer_.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      if (buffer_.size() > limits_.max_head_bytes) {
        return Status::OutOfRange("http: request head too large");
      }
      return Status::OK();
    }
    if (head_end + 4 > limits_.max_head_bytes) {
      return Status::OutOfRange("http: request head too large");
    }
    HttpRequest request;
    GMINE_RETURN_IF_ERROR(
        ParseHead(std::string_view(buffer_).substr(0, head_end), &request));
    buffer_.erase(0, head_end + 4);
    const std::string_view length = request.Header("content-length");
    if (request.HasHeader("transfer-encoding")) {
      return Status::InvalidArgument(
          "http: chunked request bodies not supported");
    }
    size_t body = 0;
    if (!length.empty()) {
      uint64_t parsed = 0;
      if (!ParseUint64(length, &parsed)) {
        return Status::InvalidArgument("http: bad Content-Length");
      }
      if (parsed > limits_.max_body_bytes) {
        return Status::OutOfRange("http: request body too large");
      }
      body = static_cast<size_t>(parsed);
    }
    if (body > 0) {
      pending_ = std::move(request);
      pending_.body.reserve(body);
      in_body_ = true;
      body_needed_ = body;
      continue;
    }
    ready_.push_back(std::move(request));
  }
}

Status HttpRequestParser::ParseHead(std::string_view head,
                                    HttpRequest* out) {
  // Request line: METHOD SP target SP HTTP/1.x
  const size_t line_end = head.find("\r\n");
  const std::string_view line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    return Status::InvalidArgument("http: malformed request line");
  }
  out->method = std::string(line.substr(0, sp1));
  out->target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  const std::string_view version = line.substr(sp2 + 1);
  if (out->method.empty() || out->target.empty() ||
      out->target[0] != '/') {
    return Status::InvalidArgument("http: malformed request line");
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Status::InvalidArgument("http: unsupported HTTP version");
  }
  out->keep_alive = version == "HTTP/1.1";

  // Headers: name ":" OWS value, one per line. Names lowercase on the
  // way in so routing code compares cheaply.
  size_t pos = line_end == std::string_view::npos ? head.size()
                                                  : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view header_line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = header_line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::InvalidArgument("http: malformed header line");
    }
    const std::string name = ToLower(header_line.substr(0, colon));
    if (name.find(' ') != std::string::npos) {
      return Status::InvalidArgument("http: malformed header name");
    }
    out->headers.emplace_back(
        name,
        std::string(TrimWhitespace(header_line.substr(colon + 1))));
  }

  const std::string_view connection = out->Header("connection");
  if (EqualsIgnoreCase(connection, "close")) out->keep_alive = false;
  if (EqualsIgnoreCase(connection, "keep-alive")) out->keep_alive = true;

  // Split target into decoded path + query map.
  const size_t qmark = out->target.find('?');
  out->path = UrlDecode(qmark == std::string::npos
                            ? std::string_view(out->target)
                            : std::string_view(out->target)
                                  .substr(0, qmark));
  if (qmark != std::string::npos) {
    std::string_view rest =
        std::string_view(out->target).substr(qmark + 1);
    while (!rest.empty()) {
      const size_t amp = rest.find('&');
      const std::string_view pair =
          amp == std::string_view::npos ? rest : rest.substr(0, amp);
      rest = amp == std::string_view::npos ? std::string_view()
                                           : rest.substr(amp + 1);
      if (pair.empty()) continue;
      const size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        out->query[UrlDecode(pair)] = "";
      } else {
        out->query[UrlDecode(pair.substr(0, eq))] =
            UrlDecode(pair.substr(eq + 1));
      }
    }
  }
  return Status::OK();
}

std::string HttpRequestParser::TakeBuffered() {
  std::string out = std::move(buffer_);
  buffer_.clear();
  in_body_ = false;
  body_needed_ = 0;
  pending_ = HttpRequest();
  return out;
}

HttpRequest HttpRequestParser::TakeRequest() {
  HttpRequest request = std::move(ready_.front());
  ready_.erase(ready_.begin());
  return request;
}

std::string_view ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 101: return "Switching Protocols";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 426: return "Upgrade Required";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string EncodeResponse(const HttpResponse& response) {
  std::string out = StrFormat("HTTP/1.1 %d ", response.status);
  out += ReasonPhrase(response.status);
  out += "\r\n";
  if (!response.content_type.empty()) {
    out += "Content-Type: " + response.content_type + "\r\n";
  }
  out += StrFormat("Content-Length: %zu\r\n", response.body.size());
  out += response.keep_alive ? "Connection: keep-alive\r\n"
                             : "Connection: close\r\n";
  for (const auto& [name, value] : response.extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  out += response.body;
  return out;
}

}  // namespace gmine::http
