#include "http/jobs.h"

#include <atomic>
#include <utility>
#include <vector>

#include "gtree/store.h"
#include "mining/components.h"
#include "mining/degree.h"
#include "mining/pagerank.h"
#include "mining/pagescan_kernels.h"
#include "net/protocol.h"
#include "storage/page_scan.h"
#include "util/string_util.h"

namespace gmine::http {

struct JobManager::Job {
  MineJobInfo info;  // guarded by the manager's mu_
  uint32_t top_k = 10;
  std::atomic<bool> cancel{false};
  core::CatalogSession lease;
  std::thread worker;
  bool finished = false;  // worker is done; joinable without blocking
};

namespace {

std::string PageRankResultJson(const mining::PageRankResult& result,
                               uint32_t top_k) {
  std::string top = "[";
  const std::vector<graph::NodeId> ids =
      mining::TopKByScore(result.score, top_k);
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) top += ",";
    top += StrFormat("{\"id\":%u,\"score\":%.12g}", ids[i],
                     result.score[ids[i]]);
  }
  top += "]";
  return StrFormat(
      "{\"kernel\":\"pagerank\",\"converged\":%s,\"iterations\":%d,"
      "\"final_delta\":%.6g,\"top\":%s}",
      result.converged ? "true" : "false", result.iterations,
      result.final_delta, top.c_str());
}

std::string DegreesResultJson(const mining::DegreeDistribution& d) {
  return StrFormat(
      "{\"kernel\":\"degrees\",\"min\":%u,\"max\":%u,\"mean\":%.6g,"
      "\"powerlaw_slope\":%.6g}",
      d.min_degree, d.max_degree, d.mean_degree, d.powerlaw_slope);
}

std::string ComponentsResultJson(const mining::ComponentResult& c) {
  return StrFormat(
      "{\"kernel\":\"components\",\"num_components\":%u,\"largest\":%u}",
      c.num_components, c.LargestSize());
}

}  // namespace

JobManager::JobManager(core::Catalog* catalog) : catalog_(catalog) {}

JobManager::~JobManager() { Shutdown(); }

gmine::Result<uint64_t> JobManager::Submit(const std::string& store,
                                           const std::string& kernel,
                                           uint32_t top_k) {
  if (kernel != "pagerank" && kernel != "degrees" &&
      kernel != "components") {
    return Status::InvalidArgument(StrFormat(
        "unknown kernel '%s' (expected pagerank, degrees or components)",
        kernel.c_str()));
  }
  // Lease first so submit reports NotFound / quota errors synchronously.
  GMINE_ASSIGN_OR_RETURN(core::CatalogSession lease,
                         catalog_->AcquireSession(store));
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return Status::Aborted("job manager shutting down");
  const uint64_t id = next_id_++;
  auto job = std::make_unique<Job>();
  job->info.id = id;
  job->info.store = store;
  job->info.kernel = kernel;
  job->info.state = "running";
  job->top_k = top_k == 0 ? 10 : top_k;
  job->lease = std::move(lease);
  Job* raw = job.get();
  jobs_.emplace(id, std::move(job));
  raw->worker = std::thread([this, raw] { Run(raw); });
  return id;
}

void JobManager::Run(Job* job) {
  gtree::GTreeStore* store = job->lease.store();
  mining::KernelContext context;
  context.cancelled = [job] {
    return job->cancel.load(std::memory_order_relaxed);
  };
  context.progress = [this, job](const mining::KernelProgress& p) {
    std::lock_guard<std::mutex> lock(mu_);
    job->info.progress = p;
  };

  std::string engine = "pages";
  std::string result_json;
  Status status = Status::OK();

  auto run_pages = [&]() -> Status {
    std::unique_ptr<storage::PageScan> scan = store->NewPageScan();
    if (job->info.kernel == "pagerank") {
      mining::PageRankOverPagesOptions options;
      options.context = context;
      auto r = mining::PageRankOverPages(*scan, options);
      if (!r.ok()) return r.status();
      result_json = PageRankResultJson(r.value(), job->top_k);
    } else if (job->info.kernel == "degrees") {
      auto r = mining::DegreeDistributionOverPages(*scan, context);
      if (!r.ok()) return r.status();
      result_json = DegreesResultJson(r.value());
    } else {
      auto r = mining::WeakComponentsOverPages(*scan, context);
      if (!r.ok()) return r.status();
      result_json = ComponentsResultJson(r.value());
    }
    return Status::OK();
  };

  auto run_in_memory = [&]() -> Status {
    engine = "in-memory";
    auto g = store->MaterializeFullGraph();
    if (!g.ok()) return g.status();
    if (context.IsCancelled()) return Status::Aborted("job cancelled");
    if (job->info.kernel == "pagerank") {
      mining::PageRankOptions options;
      options.context = context;
      const mining::PageRankResult r =
          mining::ComputePageRank(g.value(), options);
      if (context.IsCancelled()) return Status::Aborted("job cancelled");
      result_json = PageRankResultJson(r, job->top_k);
    } else if (job->info.kernel == "degrees") {
      result_json =
          DegreesResultJson(mining::ComputeDegreeDistribution(g.value()));
    } else {
      result_json =
          ComponentsResultJson(mining::WeakComponents(g.value()));
    }
    return Status::OK();
  };

  status = run_pages();
  if (status.IsNotSupported()) {
    // Legacy store without complete per-page adjacency.
    status = run_in_memory();
  }

  job->lease.Release();
  std::lock_guard<std::mutex> lock(mu_);
  job->info.engine = engine;
  if (status.ok()) {
    job->info.state = "done";
    job->info.result_json = std::move(result_json);
  } else if (status.IsAborted() &&
             job->cancel.load(std::memory_order_relaxed)) {
    job->info.state = "cancelled";
    job->info.error = status.message();
  } else {
    job->info.state = "failed";
    job->info.error = status.message();
  }
  job->finished = true;
}

gmine::Result<MineJobInfo> JobManager::Get(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound(StrFormat("no job %llu",
                                      (unsigned long long)id));
  }
  return it->second->info;
}

gmine::Result<MineJobInfo> JobManager::Cancel(uint64_t id, bool* removed) {
  std::unique_ptr<Job> reap;
  MineJobInfo info;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return Status::NotFound(StrFormat("no job %llu",
                                        (unsigned long long)id));
    }
    Job* job = it->second.get();
    if (!job->finished) {
      job->cancel.store(true, std::memory_order_relaxed);
      *removed = false;
      return job->info;
    }
    reap = std::move(it->second);
    jobs_.erase(it);
    info = reap->info;
  }
  if (reap->worker.joinable()) reap->worker.join();
  *removed = true;
  return info;
}

void JobManager::Shutdown() {
  std::vector<std::unique_ptr<Job>> reap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    for (auto& [id, job] : jobs_) {
      job->cancel.store(true, std::memory_order_relaxed);
      reap.push_back(std::move(job));
    }
    jobs_.clear();
  }
  for (auto& job : reap) {
    if (job->worker.joinable()) job->worker.join();
  }
}

size_t JobManager::jobs_now() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_.size();
}

}  // namespace gmine::http
