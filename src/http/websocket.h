// RFC 6455 WebSocket framing for the gateway (docs/HTTP.md): the
// handshake accept digest, a frame encoder, an incremental frame
// parser, and a message assembler that folds fragmented data frames
// back into whole messages while letting control frames interleave.
//
// Protocol rules enforced here (violations poison the parser — the
// connection should answer close code 1002 and drop):
//   * control frames (close/ping/pong) are never fragmented and carry
//     at most 125 payload bytes;
//   * reserved bits and unknown opcodes are rejected;
//   * masking is direction-checked: servers require masked client
//     frames, clients require unmasked server frames (RFC 6455 §5.1);
//   * a continuation frame needs an open fragmented message, and a new
//     data frame cannot start while one is open;
//   * messages are capped (max_message_bytes) so a peer cannot balloon
//     our memory.

#ifndef GMINE_HTTP_WEBSOCKET_H_
#define GMINE_HTTP_WEBSOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace gmine::http {

/// RFC 6455 §1.3: base64(sha1(client key + fixed GUID)) — the value of
/// the Sec-WebSocket-Accept handshake header.
std::string WebSocketAcceptKey(std::string_view client_key);

enum class WsOpcode : uint8_t {
  kContinuation = 0x0,
  kText = 0x1,
  kBinary = 0x2,
  kClose = 0x8,
  kPing = 0x9,
  kPong = 0xa,
};

/// One parsed frame.
struct WsFrame {
  bool fin = true;
  WsOpcode opcode = WsOpcode::kText;
  std::string payload;  // unmasked
};

/// Encodes one frame. `mask` (client->server direction) applies the
/// given masking key; pass mask=false for server->client frames.
std::string EncodeWsFrame(WsOpcode opcode, std::string_view payload,
                          bool fin = true, bool mask = false,
                          uint32_t masking_key = 0);

/// Encodes a close frame: 2-byte big-endian status code + reason.
std::string EncodeWsClose(uint16_t code, std::string_view reason = {},
                          bool mask = false, uint32_t masking_key = 0);

/// Parses a close payload into code + reason (code 1005 for empty).
void ParseWsClose(std::string_view payload, uint16_t* code,
                  std::string* reason);

/// Parser tunables.
struct WsParserOptions {
  /// Masking direction: true on the server side (client frames MUST be
  /// masked), false on the client side (server frames MUST NOT be).
  bool require_masked = true;
  /// Cap on a single frame's payload.
  size_t max_frame_bytes = 1 * 1024 * 1024;
};

/// Incremental frame parser: feed raw socket bytes, take whole frames.
/// Once an error is returned, the parser stays poisoned.
class WsFrameParser {
 public:
  explicit WsFrameParser(WsParserOptions options = {});

  Status Feed(std::string_view data);
  bool HasFrame() const { return !ready_.empty(); }
  WsFrame TakeFrame();

 private:
  Status Ingest(std::string_view data);

  WsParserOptions options_;
  std::string buffer_;
  std::vector<WsFrame> ready_;
  Status error_ = Status::OK();
};

/// Folds parsed frames into whole messages. Control frames pass
/// through immediately (fin always true); data frames assemble across
/// continuations. OnFrame returns a completed message when one is
/// ready, a frame-less "not yet" otherwise, or a protocol error.
class WsMessageAssembler {
 public:
  explicit WsMessageAssembler(size_t max_message_bytes = 4 * 1024 * 1024)
      : max_message_bytes_(max_message_bytes) {}

  struct Out {
    bool ready = false;
    WsOpcode opcode = WsOpcode::kText;
    std::string payload;
  };

  gmine::Result<Out> OnFrame(WsFrame frame);

 private:
  size_t max_message_bytes_;
  bool fragmented_ = false;
  WsOpcode fragment_opcode_ = WsOpcode::kText;
  std::string fragment_;
};

}  // namespace gmine::http

#endif  // GMINE_HTTP_WEBSOCKET_H_
