// The `gmine` command-line tool: generate workloads, build .gtree stores,
// inspect hierarchies, run label queries, extract connection subgraphs,
// render views and export communities. See `gmine help`.

#include <cstdio>
#include <string>
#include <vector>

#include "cli/commands.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) args.push_back("help");
  std::string out;
  gmine::Status st = gmine::cli::RunCli(args, &out);
  std::fputs(out.c_str(), stdout);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return st.IsInvalidArgument() ? 2 : 1;
  }
  return 0;
}
