#!/usr/bin/env bash
# Schema gate for BENCH_kernels.json (run by CI next to check_docs_cli.sh):
# the checked-in perf record must stay parseable and complete, so a PR
# that breaks run_benches.sh or drops a sweep cannot merge silently.
#
# Checks:
#   * every required sweep is present (incl. gtree_edit_incremental and
#     its full-rebuild companion column from the edits bench);
#   * every sweep has >= 2 numeric columns, all distinct positive
#     integers (monotone when sorted) plus optionally "auto";
#   * every entry carries finite real_ns > 0 (no NaN/Inf) and
#     iterations >= 1;
#   * the buffer_pool_navigate sweep carries the pool's story columns:
#     finite hit_rate in [0, 1] and resident_bytes >= 0 per entry;
#   * the wal_group_commit sweep carries edits_per_sec per entry and
#     some depth >= 8 sustains >= 5x the depth-1 throughput — the
#     group-commit amortization gate (docs/WAL.md);
#   * the query_pushdown sweep carries pages_scanned / pages_total /
#     speedup_vs_full per entry, with pages_scanned strictly less than
#     pages_total — the pushdown pruning gate (docs/QUERY.md);
#   * the http_gateway sweep carries conns / req_per_sec / p99_ns per
#     entry, conns matching the column — the gateway throughput/latency
#     record (docs/HTTP.md);
#   * the outofcore_pagerank sweep carries budget_bytes / graph_bytes /
#     peak_rss / pool_resident_bytes per entry, with graph_bytes >= 10x
#     budget_bytes and pool_resident_bytes <= budget_bytes — the
#     out-of-core gates (docs/OUTOFCORE.md);
#   * host_cpus is recorded (a perf number without its core count is
#     unreproducible); a record generated on a 1-core host FAILS the
#     check on any multi-core machine (regenerate there), and only
#     degrades to a loud warning when the checker itself is 1-core.
#
# Usage: tools/check_bench_json.sh [path/to/BENCH_kernels.json]

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JSON="${1:-$REPO_ROOT/BENCH_kernels.json}"

if [ ! -s "$JSON" ]; then
  echo "check_bench_json: $JSON missing or empty" >&2
  exit 1
fi

python3 - "$JSON" <<'PY'
import json
import math
import os
import sys

path = sys.argv[1]
required = [
    "pagerank",
    "betweenness",
    "rwr",
    "gtree_build_sharded",
    "session_pool_navigate",
    "server_navigate",
    "gtree_edit_incremental",
    "gtree_edit_full",
    "buffer_pool_navigate",
    "wal_group_commit",
    "query_pushdown",
    "http_gateway",
    "outofcore_pagerank",
]

try:
    with open(path) as f:
        report = json.load(f)
except json.JSONDecodeError as e:
    sys.exit(f"check_bench_json: {path} is not valid JSON: {e}")

fail = []
kernels = report.get("kernels")
if not isinstance(kernels, dict):
    sys.exit(f"check_bench_json: {path} has no 'kernels' object")

for name in required:
    if name not in kernels:
        fail.append(f"missing sweep '{name}'")

for name, sweep in kernels.items():
    if not isinstance(sweep, dict):
        fail.append(f"{name}: sweep is not an object")
        continue
    numeric_cols = []
    for col, entry in sweep.items():
        if col == "speedup_auto_vs_serial":
            if not isinstance(entry, (int, float)) or not math.isfinite(entry):
                fail.append(f"{name}: non-finite speedup")
            continue
        if col != "auto":
            if not col.isdigit() or int(col) <= 0:
                fail.append(f"{name}: column '{col}' is not a positive int")
                continue
            numeric_cols.append(int(col))
        if not isinstance(entry, dict):
            fail.append(f"{name}/{col}: entry is not an object")
            continue
        real_ns = entry.get("real_ns")
        iters = entry.get("iterations")
        if not isinstance(real_ns, (int, float)) or not math.isfinite(real_ns) \
                or real_ns <= 0:
            fail.append(f"{name}/{col}: bad real_ns {real_ns!r}")
        if not isinstance(iters, int) or iters < 1:
            fail.append(f"{name}/{col}: bad iterations {iters!r}")
        if name == "buffer_pool_navigate":
            rate = entry.get("hit_rate")
            resident = entry.get("resident_bytes")
            if not isinstance(rate, (int, float)) or not math.isfinite(rate) \
                    or not 0.0 <= rate <= 1.0:
                fail.append(f"{name}/{col}: bad hit_rate {rate!r}")
            if not isinstance(resident, (int, float)) \
                    or not math.isfinite(resident) or resident < 0:
                fail.append(f"{name}/{col}: bad resident_bytes {resident!r}")
        if name == "wal_group_commit":
            eps = entry.get("edits_per_sec")
            if not isinstance(eps, (int, float)) or not math.isfinite(eps) \
                    or eps <= 0:
                fail.append(f"{name}/{col}: bad edits_per_sec {eps!r}")
        if name == "query_pushdown":
            scanned = entry.get("pages_scanned")
            total = entry.get("pages_total")
            speedup = entry.get("speedup_vs_full")
            ok_nums = all(
                isinstance(v, (int, float)) and math.isfinite(v)
                for v in (scanned, total, speedup))
            if not ok_nums or scanned < 1 or total < 1 or speedup <= 0:
                fail.append(f"{name}/{col}: bad pushdown counters "
                            f"scanned={scanned!r} total={total!r} "
                            f"speedup={speedup!r}")
            elif scanned >= total:
                # The pushdown pruning gate: a selective predicate must
                # skip at least one page, or pruning has regressed into
                # a full scan (docs/QUERY.md).
                fail.append(f"{name}/{col}: pages_scanned {scanned} is "
                            f"not < pages_total {total} — pushdown "
                            "pruned nothing")
        if name == "outofcore_pagerank":
            budget = entry.get("budget_bytes")
            graph = entry.get("graph_bytes")
            rss = entry.get("peak_rss")
            resident = entry.get("pool_resident_bytes")
            ok_nums = all(
                isinstance(v, (int, float)) and math.isfinite(v) and v > 0
                for v in (budget, graph, rss)) and \
                isinstance(resident, (int, float)) and \
                math.isfinite(resident) and resident >= 0
            if not ok_nums:
                fail.append(f"{name}/{col}: bad out-of-core counters "
                            f"budget={budget!r} graph={graph!r} "
                            f"rss={rss!r} resident={resident!r}")
            else:
                # The out-of-core gates (docs/OUTOFCORE.md): the store
                # must dwarf the budget, and the pool must have held the
                # budget while the kernel ran.
                if graph < 10 * budget:
                    fail.append(f"{name}/{col}: graph_bytes {graph:.0f} "
                                f"is not >= 10x budget_bytes "
                                f"{budget:.0f} — the sweep no longer "
                                "proves out-of-core operation")
                if resident > budget:
                    fail.append(f"{name}/{col}: pool_resident_bytes "
                                f"{resident:.0f} exceeds budget_bytes "
                                f"{budget:.0f} — the pool budget leaked")
        if name == "http_gateway":
            conns = entry.get("conns")
            rps = entry.get("req_per_sec")
            p99 = entry.get("p99_ns")
            if not isinstance(conns, (int, float)) \
                    or not math.isfinite(conns) \
                    or (col.isdigit() and int(conns) != int(col)):
                fail.append(f"{name}/{col}: conns {conns!r} does not "
                            f"match column")
            if not isinstance(rps, (int, float)) or not math.isfinite(rps) \
                    or rps <= 0:
                fail.append(f"{name}/{col}: bad req_per_sec {rps!r}")
            if not isinstance(p99, (int, float)) or not math.isfinite(p99) \
                    or p99 <= 0:
                fail.append(f"{name}/{col}: bad p99_ns {p99!r}")
    if len(numeric_cols) < 2:
        fail.append(f"{name}: needs >= 2 numeric columns, has {numeric_cols}")
    elif len(set(numeric_cols)) != len(numeric_cols):
        fail.append(f"{name}: duplicate columns {sorted(numeric_cols)}")

# Group-commit amortization gate: some depth >= 8 must sustain >= 5x
# the depth-1 edit throughput, or the WAL's one-sync-one-repair-per-
# group design has regressed into per-edit commits.
wal = kernels.get("wal_group_commit")
if isinstance(wal, dict):
    def eps(col):
        entry = wal.get(col)
        v = entry.get("edits_per_sec") if isinstance(entry, dict) else None
        return v if isinstance(v, (int, float)) and math.isfinite(v) else None
    serial = eps("1")
    deep = [(int(c), eps(c)) for c in wal
            if c.isdigit() and int(c) >= 8 and eps(c) is not None]
    if serial is None:
        fail.append("wal_group_commit: no depth-1 edits_per_sec baseline")
    elif not deep:
        fail.append("wal_group_commit: no depth >= 8 column to check")
    else:
        depth, best = max(deep, key=lambda d: d[1])
        ratio = best / serial
        if ratio < 5.0:
            fail.append(
                f"wal_group_commit: depth-{depth} throughput is only "
                f"{ratio:.1f}x depth-1 (gate: >= 5x)")
        else:
            print(f"check_bench_json: wal_group_commit depth-{depth} "
                  f"sustains {ratio:.1f}x the serial throughput (gate 5x)")

# Host-core bookkeeping: the parallel sweeps' speedups are meaningless
# without knowing the cores they ran on, and numbers produced on a
# 1-core host make every thread sweep read as a regression. A 1-core
# record is a hard FAILURE whenever the machine running this check has
# the cores to regenerate it (run tools/run_benches.sh here); only a
# checker that is itself single-core — which could not do better —
# gets the loud warning instead.
host_cpus = report.get("host_cpus")
checker_cpus = os.cpu_count() or 1
if not isinstance(host_cpus, int) or host_cpus < 1:
    fail.append(f"host_cpus missing or invalid: {host_cpus!r} "
                "(re-run tools/run_benches.sh)")
elif host_cpus == 1:
    if checker_cpus > 1:
        fail.append(
            f"BENCH_kernels.json was generated on a 1-core host but "
            f"this machine has {checker_cpus} cores — regenerate with "
            "tools/run_benches.sh so the thread sweeps mean something")
    else:
        for name, sweep in kernels.items():
            if not isinstance(sweep, dict):
                continue
            speedup = sweep.get("speedup_auto_vs_serial")
            if isinstance(speedup, (int, float)) and speedup < 1.0:
                print(f"check_bench_json: WARNING {name} speedup "
                      f"{speedup}x < 1 on a 1-core host — thread-pool "
                      "overhead, not a regression; rerun on a "
                      "multi-core host before comparing",
                      file=sys.stderr)

if fail:
    for f in fail:
        print(f"check_bench_json: {f}", file=sys.stderr)
    sys.exit(1)
print(f"BENCH_kernels.json OK ({len(kernels)} sweeps, "
      f"all of: {' '.join(required)}; host_cpus={host_cpus})")
PY
