#!/usr/bin/env bash
# Runs the kernel thread-sweep benchmarks and writes BENCH_kernels.json
# (serial vs parallel ns/op per kernel) so the perf trajectory is tracked
# across PRs. Optionally runs every other bench binary with --all.
#
# Usage: tools/run_benches.sh [build_dir] [--all]
# Output: BENCH_kernels.json in the repo root.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$REPO_ROOT/build"
RUN_ALL=0
for arg in "$@"; do
  case "$arg" in
    --all) RUN_ALL=1 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

if [ ! -d "$BUILD_DIR" ]; then
  echo "build dir '$BUILD_DIR' not found — run: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

run_sweep() {
  local binary="$1" filter="$2" out="$3"
  if [ ! -x "$BUILD_DIR/$binary" ]; then
    echo "skipping $binary (not built)" >&2
    return 0
  fi
  echo "== $binary --benchmark_filter=$filter"
  GMINE_BENCH_SKIP_REPORT=1 "$BUILD_DIR/$binary" \
    --benchmark_filter="$filter" \
    --benchmark_format=json \
    --benchmark_out="$out" \
    --benchmark_out_format=json >/dev/null
}

run_sweep bench_metrics 'BM_(PageRank|Betweenness)Threads' "$TMP_DIR/metrics.json"
run_sweep bench_rwr 'BM_RwrThreads' "$TMP_DIR/rwr.json"
run_sweep bench_scale 'BM_(GTreeBuildShards|SessionPoolNavigate)' "$TMP_DIR/gtree_build.json"
run_sweep bench_server 'BM_ServerNavigate' "$TMP_DIR/server.json"

python3 - "$REPO_ROOT/BENCH_kernels.json" "$TMP_DIR"/*.json <<'PY'
import json
import os
import sys

out_path, inputs = sys.argv[1], sys.argv[2:]
kernel_names = {
    "BM_PageRankThreads": "pagerank",
    "BM_BetweennessThreads": "betweenness",
    "BM_RwrThreads": "rwr",
    # arg = shard count = thread count for the sharded G-Tree build
    "BM_GTreeBuildShards": "gtree_build_sharded",
    # arg = concurrent session count over one store (fixed visit budget)
    "BM_SessionPoolNavigate": "session_pool_navigate",
    # arg = concurrent loopback clients against one net::Server
    # (fixed request budget)
    "BM_ServerNavigate": "server_navigate",
}
kernels = {}
context = {}
for path in inputs:
    with open(path) as f:
        data = json.load(f)
    context = data.get("context", context)
    for b in data.get("benchmarks", []):
        name, _, arg = b["name"].partition("/")
        if name not in kernel_names or b.get("run_type") == "aggregate":
            continue
        threads = "auto" if arg == "0" else arg
        kernels.setdefault(kernel_names[name], {})[threads] = {
            "real_ns": b["real_time"] * {"ns": 1, "us": 1e3,
                                         "ms": 1e6, "s": 1e9}[b["time_unit"]],
            "iterations": b["iterations"],
        }
for stats in kernels.values():
    serial = stats.get("1", {}).get("real_ns")
    auto = stats.get("auto", {}).get("real_ns")
    if serial and auto:
        stats["speedup_auto_vs_serial"] = round(serial / auto, 3)
report = {
    "generated_by": "tools/run_benches.sh",
    "workload": "DBLP surrogate, levels=3 fanout=5 leaf=60 (7,500 nodes)",
    "host_cpus": context.get("num_cpus"),
    "threads_env": os.environ.get("GMINE_THREADS"),
    "kernels": kernels,
}
with open(out_path, "w") as f:
    json.dump(report, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path}")
PY

if [ "$RUN_ALL" = 1 ]; then
  for b in "$BUILD_DIR"/bench_*; do
    [ -x "$b" ] || continue
    echo "== $(basename "$b")"
    "$b" --benchmark_min_time=0.01s || echo "(non-zero exit from $b)" >&2
  done
fi
