#!/usr/bin/env bash
# Runs the kernel thread-sweep benchmarks and writes BENCH_kernels.json
# (serial vs parallel ns/op per kernel) so the perf trajectory is tracked
# across PRs. Optionally runs every other bench binary with --all, or a
# fast all-binaries sanity pass with --smoke (used by CI so bench code
# cannot silently rot: every binary must run and exit 0).
#
# Usage: tools/run_benches.sh [build_dir] [--all | --smoke]
# Output: BENCH_kernels.json in the repo root (not with --smoke).

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$REPO_ROOT/build"
RUN_ALL=0
RUN_SMOKE=0
for arg in "$@"; do
  case "$arg" in
    --all) RUN_ALL=1 ;;
    --smoke) RUN_SMOKE=1 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

if [ ! -d "$BUILD_DIR" ]; then
  echo "build dir '$BUILD_DIR' not found — run: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

if [ "$RUN_SMOKE" = 1 ]; then
  # Tiny-budget run of every bench binary; any crash or nonzero exit
  # fails the gate. Reports are skipped (they run full workloads).
  found=0
  for b in "$BUILD_DIR"/bench_*; do
    [ -x "$b" ] || continue
    found=1
    echo "== smoke $(basename "$b")"
    GMINE_BENCH_SKIP_REPORT=1 "$b" \
      --benchmark_min_time=0.01s \
      --benchmark_filter='.*' >/dev/null
  done
  if [ "$found" = 0 ]; then
    echo "run_benches --smoke: no bench binaries in $BUILD_DIR" >&2
    exit 1
  fi
  echo "bench smoke OK"
  exit 0
fi

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

run_sweep() {
  local binary="$1" filter="$2" out="$3"
  if [ ! -x "$BUILD_DIR/$binary" ]; then
    echo "skipping $binary (not built)" >&2
    return 0
  fi
  echo "== $binary --benchmark_filter=$filter"
  GMINE_BENCH_SKIP_REPORT=1 "$BUILD_DIR/$binary" \
    --benchmark_filter="$filter" \
    --benchmark_format=json \
    --benchmark_out="$out" \
    --benchmark_out_format=json >/dev/null
}

run_sweep bench_metrics 'BM_(PageRank|Betweenness)Threads' "$TMP_DIR/metrics.json"
run_sweep bench_rwr 'BM_RwrThreads' "$TMP_DIR/rwr.json"
run_sweep bench_scale 'BM_(GTreeBuildShards|SessionPoolNavigate)' "$TMP_DIR/gtree_build.json"
run_sweep bench_server 'BM_ServerNavigate' "$TMP_DIR/server.json"
run_sweep bench_edits 'BM_GTreeEdit(Incremental|FullRebuild)' "$TMP_DIR/edits.json"
run_sweep bench_buffer_pool 'BM_BufferPoolNavigate' "$TMP_DIR/buffer_pool.json"
run_sweep bench_wal 'BM_WalGroupCommit' "$TMP_DIR/wal.json"
run_sweep bench_query 'BM_QueryPushdown' "$TMP_DIR/query.json"
run_sweep bench_http 'BM_HttpGatewayNavigate' "$TMP_DIR/http.json"
run_sweep bench_outofcore 'BM_OutOfCorePageRank' "$TMP_DIR/outofcore.json"

python3 - "$REPO_ROOT/BENCH_kernels.json" "$TMP_DIR"/*.json <<'PY'
import json
import os
import sys

out_path, inputs = sys.argv[1], sys.argv[2:]
kernel_names = {
    "BM_PageRankThreads": "pagerank",
    "BM_BetweennessThreads": "betweenness",
    "BM_RwrThreads": "rwr",
    # arg = shard count = thread count for the sharded G-Tree build
    "BM_GTreeBuildShards": "gtree_build_sharded",
    # arg = concurrent session count over one store (fixed visit budget)
    "BM_SessionPoolNavigate": "session_pool_navigate",
    # arg = concurrent loopback clients against one net::Server
    # (fixed request budget)
    "BM_ServerNavigate": "server_navigate",
    # arg = TOTAL GRAPH SIZE (nodes), not threads: a single-edge
    # ApplyEdit through the incremental repair vs the legacy full
    # rebuild (docs/EDITS.md)
    "BM_GTreeEditIncremental": "gtree_edit_incremental",
    "BM_GTreeEditFullRebuild": "gtree_edit_full",
    # arg = stores sharing one fixed-budget buffer pool; extra columns
    # hit_rate (in [0,1]) and resident_bytes (peak) ride along
    "BM_BufferPoolNavigate": "buffer_pool_navigate",
    # arg = BURST DEPTH (edits per group commit), not threads: real_ns
    # is per burst; the edits_per_sec column carries the wall-clock
    # throughput the >= 5x group-commit gate checks (docs/WAL.md)
    "BM_WalGroupCommit": "wal_group_commit",
    # arg = LEAF-PAGE COUNT (fanout^2), not threads: one selective GQL
    # MATCH with predicate pushdown on; extra columns pages_scanned /
    # pages_total (the pruning proof) and speedup_vs_full (vs the
    # filter-after-materialize reference) ride along (docs/QUERY.md)
    "BM_QueryPushdown": "query_pushdown",
    # arg = concurrent upgraded WebSocket connections against one
    # http::Gateway reactor loop (fixed op budget); extra columns
    # conns, req_per_sec and p99_ns carry the throughput/latency story
    # (docs/HTTP.md)
    "BM_HttpGatewayNavigate": "http_gateway",
    # arg = BUFFER-POOL BUDGET IN MiB, not threads: page-at-a-time
    # PageRank on a streamed store >= 10x the budget; extra columns
    # budget_bytes / graph_bytes / peak_rss / pool_resident_bytes carry
    # the out-of-core evidence (docs/OUTOFCORE.md)
    "BM_OutOfCorePageRank": "outofcore_pagerank",
}
kernels = {}
context = {}
for path in inputs:
    with open(path) as f:
        data = json.load(f)
    context = data.get("context", context)
    for b in data.get("benchmarks", []):
        # Names look like BM_Foo/8 or BM_Foo/1500/min_time:0.020 — the
        # first path element after the name is the sweep argument.
        parts = b["name"].split("/")
        name, arg = parts[0], parts[1] if len(parts) > 1 else ""
        if name not in kernel_names or b.get("run_type") == "aggregate":
            continue
        threads = "auto" if arg == "0" else arg
        entry = {
            "real_ns": b["real_time"] * {"ns": 1, "us": 1e3,
                                         "ms": 1e6, "s": 1e9}[b["time_unit"]],
            "iterations": b["iterations"],
        }
        # Benchmark counters that tell a sweep's story (checked by
        # tools/check_bench_json.sh for buffer_pool_navigate and
        # wal_group_commit).
        for extra in ("hit_rate", "resident_bytes", "edits_per_sec",
                      "pages_scanned", "pages_total", "speedup_vs_full",
                      "conns", "req_per_sec", "p99_ns", "budget_bytes",
                      "graph_bytes", "peak_rss", "pool_resident_bytes"):
            if extra in b:
                entry[extra] = b[extra]
        kernels.setdefault(kernel_names[name], {})[threads] = entry
for stats in kernels.values():
    serial = stats.get("1", {}).get("real_ns")
    auto = stats.get("auto", {}).get("real_ns")
    if serial and auto:
        stats["speedup_auto_vs_serial"] = round(serial / auto, 3)
report = {
    "generated_by": "tools/run_benches.sh",
    "workload": "DBLP surrogate, levels=3 fanout=5 leaf=60 (7,500 nodes)",
    "host_cpus": context.get("num_cpus"),
    "threads_env": os.environ.get("GMINE_THREADS"),
    "kernels": kernels,
}
with open(out_path, "w") as f:
    json.dump(report, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path}")
PY

if [ "$RUN_ALL" = 1 ]; then
  for b in "$BUILD_DIR"/bench_*; do
    [ -x "$b" ] || continue
    echo "== $(basename "$b")"
    "$b" --benchmark_min_time=0.01s || echo "(non-zero exit from $b)" >&2
  done
fi
