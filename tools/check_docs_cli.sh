#!/usr/bin/env bash
# Docs/CLI drift check: every `gmine <subcommand>` named inside a code
# block of README.md or docs/*.md must be a real subcommand dispatched
# in src/cli/commands.cc. Run by CI next to the docs-presence check.
#
# Usage: tools/check_docs_cli.sh

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"

# Real subcommands, straight from the dispatch table.
subcommands="$(grep -oE 'cmd\.command == "[a-z]+"' \
  "$REPO_ROOT/src/cli/commands.cc" | grep -oE '"[a-z]+"' | tr -d '"' |
  sort -u)"
if [ -z "$subcommands" ]; then
  echo "check_docs_cli: no subcommands found in src/cli/commands.cc" >&2
  exit 1
fi

fail=0
for doc in "$REPO_ROOT/README.md" "$REPO_ROOT"/docs/*.md; do
  # Keep only fenced code blocks, then every `gmine X` / `./gmine X`
  # invocation in them.
  refs="$(awk '/^```/ { in_block = !in_block; next } in_block' "$doc" |
    grep -oE '(\./)?gmine +[a-z][a-z-]*' |
    grep -oE '[a-z-]+$' | sort -u || true)"
  for ref in $refs; do
    if ! printf '%s\n' "$subcommands" | grep -qx "$ref"; then
      echo "$doc: code block names 'gmine $ref'," \
        "which is not a subcommand in src/cli/commands.cc" >&2
      fail=1
    fi
  done
done

if [ "$fail" = 0 ]; then
  echo "docs CLI references OK (subcommands: $(echo $subcommands | tr '\n' ' '))"
fi
exit $fail
