// Experiment S1 (§II statistics + the scalability claim): "smaller parts
// of the graph are processed one at a time instead of the whole graph at
// every cycle."
//
// Report: graph-size sweep of store size / build time; then the
// on-demand IO story — bytes read by a navigation session vs the size of
// the whole graph, and cache behavior under a bounded page budget.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/engine.h"
#include "core/session_manager.h"
#include "gtree/builder.h"
#include "mining/pagerank.h"
#include "storage/buffer_pool.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace {

using namespace gmine;  // NOLINT
using bench::CachedDblp;

void PrintReport() {
  bench::ReportHeader(
      "S1: scalability & on-demand IO (§II, §V)",
      "navigation touches only the focused communities; memory/IO track "
      "the display, not the graph (DBLP itself: n=315,688 e=1,659,853)");

  std::printf("%-26s %10s %12s %12s %12s\n", "workload", "nodes", "edges",
              "store size", "build time");
  struct Config {
    uint32_t levels, fanout, leaf_size;
  };
  const Config configs[] = {{2, 5, 30}, {2, 5, 60}, {3, 5, 60}};
  for (const Config& c : configs) {
    const gen::DblpGraph& data = CachedDblp(c.levels, c.fanout, c.leaf_size);
    std::string path = "/tmp/gmine_bench_scale.gtree";
    StopWatch watch;
    core::EngineOptions opts;
    opts.build.levels = c.levels;
    opts.build.fanout = c.fanout;
    auto engine =
        core::GMineEngine::Build(data.graph, data.labels, path, opts);
    if (!engine.ok()) continue;
    std::printf("%-26s %10u %12llu %12s %12s\n",
                StrFormat("L=%u k=%u leaf=%u", c.levels, c.fanout,
                          c.leaf_size)
                    .c_str(),
                data.graph.num_nodes(),
                static_cast<unsigned long long>(data.graph.num_edges()),
                HumanBytes(engine.value()->store().file_size()).c_str(),
                HumanMicros(watch.ElapsedMicros()).c_str());
    std::remove(path.c_str());
  }

  // On-demand IO: a 12-step navigation session on the largest workload.
  const gen::DblpGraph& data = CachedDblp();
  std::string path = "/tmp/gmine_bench_scale_io.gtree";
  core::EngineOptions opts;
  opts.build.levels = 3;
  opts.build.fanout = 5;
  auto engine = core::GMineEngine::Build(data.graph, data.labels, path, opts);
  if (!engine.ok()) return;
  core::GMineEngine& gm = *engine.value();
  gtree::NavigationSession& nav = gm.session();
  // Visit 12 different leaf communities.
  uint32_t visited = 0;
  for (graph::NodeId v = 0; v < data.graph.num_nodes() && visited < 12;
       v += data.graph.num_nodes() / 12) {
    if (nav.FocusGraphNode(v).ok() && nav.LoadFocusSubgraph().ok()) {
      ++visited;
    }
  }
  const auto& stats = gm.store().stats();
  std::printf(
      "session IO: %u leaf visits -> %llu page loads, %s read "
      "(store file: %s; whole-graph load would read %s at once)\n",
      visited, static_cast<unsigned long long>(stats.leaf_loads),
      HumanBytes(stats.bytes_read).c_str(),
      HumanBytes(gm.store().file_size()).c_str(),
      HumanBytes(gm.store().file_size()).c_str());
  std::printf(
      "shape: bytes read per interaction stays proportional to one "
      "community (~%s), not to the graph.\n",
      HumanBytes(stats.leaf_loads ? stats.bytes_read / stats.leaf_loads : 0)
          .c_str());
  std::remove(path.c_str());

  // Sharded G-Tree construction sweep: the build-side scaling story.
  // Every shard count produces the identical tree (see
  // sharded_build_equivalence_test); only the wall time changes.
  bench::PrintThreadSweep(
      StrFormat("\nsharded G-Tree build sweep (n=%u, shards=threads):",
                data.graph.num_nodes())
          .c_str(),
      [&](int threads) {
        gtree::GTreeBuildOptions bopts;
        bopts.levels = 3;
        bopts.fanout = 5;
        bopts.shards = threads < 0 ? 0 : static_cast<uint32_t>(threads);
        bopts.threads = threads;
        StopWatch w;
        auto tree = gtree::BuildGTree(data.graph, bopts);
        if (!tree.ok()) {
          std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
          return -1.0;
        }
        return static_cast<double>(w.ElapsedMicros());
      });

  // Concurrent navigation sweep: a fixed budget of leaf visits split
  // across N sessions over ONE store (the session-pool service mode).
  // Wall time should drop as sessions spread across cores; results are
  // identical since the store is read-only.
  {
    gtree::GTreeBuildOptions bopts;
    bopts.levels = 3;
    bopts.fanout = 5;
    auto tree = gtree::BuildGTree(data.graph, bopts);
    std::string pool_path = "/tmp/gmine_bench_scale_pool.gtree";
    if (tree.ok()) {
      auto conn = gtree::ConnectivityIndex::Build(data.graph, tree.value());
      (void)gtree::GTreeStore::Create(pool_path, data.graph, tree.value(),
                                      conn, data.labels);
      auto store = gtree::GTreeStore::Open(pool_path);
      if (store.ok()) {
        constexpr size_t kVisits = 256;
        bench::PrintThreadSweep(
            StrFormat("\nconcurrent navigation sweep (one store, %zu leaf "
                      "visits split across N sessions):",
                      kVisits)
                .c_str(),
            [&](int sessions) {
              const size_t n =
                  static_cast<size_t>(gmine::ResolveThreads(sessions));
              core::SessionManagerOptions popts;
              popts.max_sessions = 0;  // never evict mid-sweep
              core::SessionManager pool(store.value().get(), popts);
              std::vector<core::SessionId> ids(n);
              for (size_t i = 0; i < n; ++i) {
                ids[i] = std::move(pool.OpenSession()).value();
              }
              StopWatch w;
              ParallelFor(0, n, 1, static_cast<int>(n), [&](size_t i) {
                (void)pool.WithSession(
                    ids[i], [&](gtree::NavigationSession& nav) {
                      const uint32_t num_nodes = data.graph.num_nodes();
                      for (size_t k = i; k < kVisits; k += n) {
                        graph::NodeId v = static_cast<graph::NodeId>(
                            (k * num_nodes) / kVisits);
                        if (nav.FocusGraphNode(v).ok()) {
                          (void)nav.LoadFocusSubgraph();
                        }
                      }
                      return gmine::Status::OK();
                    });
              });
              return static_cast<double>(w.ElapsedMicros());
            });
        const auto pool_stats = store.value()->stats();
        std::printf(
            "cross-session page reuse: %llu shared hits of %llu total hits "
            "(%llu disk loads)\n",
            static_cast<unsigned long long>(pool_stats.shared_hits),
            static_cast<unsigned long long>(pool_stats.cache_hits),
            static_cast<unsigned long long>(pool_stats.leaf_loads));
      }
      std::remove(pool_path.c_str());
    }
  }

  // Whole-graph analytics thread sweep: the scaling story is not only
  // touching less data (above) but also using every core when a global
  // kernel does run.
  bench::PrintThreadSweep(
      StrFormat("\nwhole-graph PageRank thread sweep (n=%u):",
                data.graph.num_nodes())
          .c_str(),
      [&](int threads) {
        mining::PageRankOptions opts;
        opts.context.threads = threads;
        StopWatch w;
        benchmark::DoNotOptimize(mining::ComputePageRank(data.graph, opts));
        return static_cast<double>(w.ElapsedMicros());
      });
}

// Sharded G-Tree construction: arg = shard count = thread count (0 =
// auto for both). Feeds the "gtree_build_sharded" entry of
// BENCH_kernels.json via tools/run_benches.sh.
void BM_GTreeBuildShards(benchmark::State& state) {
  const gen::DblpGraph& data = CachedDblp();
  gtree::GTreeBuildOptions bopts;
  bopts.levels = 3;
  bopts.fanout = 5;
  bopts.shards = static_cast<uint32_t>(state.range(0));
  bopts.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto tree = gtree::BuildGTree(data.graph, bopts);
    if (!tree.ok()) state.SkipWithError(tree.status().ToString().c_str());
    benchmark::DoNotOptimize(tree);
  }
}

BENCHMARK(BM_GTreeBuildShards)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

// Concurrent navigation against one store: arg = session count (0 =
// auto). A fixed budget of leaf visits splits across the sessions, which
// run on the thread pool like `gmine serve`. Feeds the
// "session_pool_navigate" entry of BENCH_kernels.json via
// tools/run_benches.sh.
void BM_SessionPoolNavigate(benchmark::State& state) {
  const gen::DblpGraph& data = CachedDblp();
  static std::unique_ptr<gtree::GTreeStore> store = [] {
    const gen::DblpGraph& d = CachedDblp();
    gtree::GTreeBuildOptions bopts;
    bopts.levels = 3;
    bopts.fanout = 5;
    auto tree = gtree::BuildGTree(d.graph, bopts);
    auto conn = gtree::ConnectivityIndex::Build(d.graph, tree.value());
    (void)gtree::GTreeStore::Create("/tmp/gmine_bm_pool.gtree", d.graph,
                                    tree.value(), conn, d.labels);
    return std::move(gtree::GTreeStore::Open("/tmp/gmine_bm_pool.gtree"))
        .value();
  }();
  const size_t sessions = static_cast<size_t>(
      gmine::ResolveThreads(static_cast<int>(state.range(0))));
  constexpr size_t kVisits = 256;
  const uint32_t num_nodes = data.graph.num_nodes();
  for (auto _ : state) {
    core::SessionManagerOptions popts;
    popts.max_sessions = 0;  // never evict mid-sweep
    core::SessionManager pool(store.get(), popts);
    std::vector<core::SessionId> ids(sessions);
    for (size_t i = 0; i < sessions; ++i) {
      ids[i] = std::move(pool.OpenSession()).value();
    }
    ParallelFor(0, sessions, 1, static_cast<int>(sessions), [&](size_t i) {
      (void)pool.WithSession(ids[i], [&](gtree::NavigationSession& nav) {
        for (size_t k = i; k < kVisits; k += sessions) {
          graph::NodeId v =
              static_cast<graph::NodeId>((k * num_nodes) / kVisits);
          if (nav.FocusGraphNode(v).ok()) (void)nav.LoadFocusSubgraph();
        }
        return gmine::Status::OK();
      });
    });
    benchmark::DoNotOptimize(pool.stats().opened);
  }
}

BENCHMARK(BM_SessionPoolNavigate)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

void BM_StoreCreate(benchmark::State& state) {
  const gen::DblpGraph& data = CachedDblp(2, 5, 30);
  gtree::GTreeBuildOptions bopts;
  bopts.levels = 2;
  bopts.fanout = 5;
  auto tree = gtree::BuildGTree(data.graph, bopts);
  auto conn = gtree::ConnectivityIndex::Build(data.graph, tree.value());
  for (auto _ : state) {
    auto st = gtree::GTreeStore::Create("/tmp/gmine_bm_store.gtree",
                                        data.graph, tree.value(), conn, data.labels);
    benchmark::DoNotOptimize(st);
  }
  std::remove("/tmp/gmine_bm_store.gtree");
}

void BM_StoreOpen(benchmark::State& state) {
  const gen::DblpGraph& data = CachedDblp(2, 5, 30);
  gtree::GTreeBuildOptions bopts;
  bopts.levels = 2;
  bopts.fanout = 5;
  auto tree = gtree::BuildGTree(data.graph, bopts);
  auto conn = gtree::ConnectivityIndex::Build(data.graph, tree.value());
  (void)gtree::GTreeStore::Create("/tmp/gmine_bm_open.gtree", data.graph,
                                  tree.value(), conn, data.labels);
  for (auto _ : state) {
    auto store = gtree::GTreeStore::Open("/tmp/gmine_bm_open.gtree");
    benchmark::DoNotOptimize(store);
  }
  std::remove("/tmp/gmine_bm_open.gtree");
}

BENCHMARK(BM_StoreOpen)->Unit(benchmark::kMillisecond);

void BM_LeafLoadColdVsCacheSweep(benchmark::State& state) {
  const gen::DblpGraph& data = CachedDblp();
  static std::unique_ptr<gtree::GTreeStore> store = [] {
    gtree::GTreeBuildOptions bopts;
    bopts.levels = 3;
    bopts.fanout = 5;
    const gen::DblpGraph& d = CachedDblp();
    auto tree = gtree::BuildGTree(d.graph, bopts);
    auto conn = gtree::ConnectivityIndex::Build(d.graph, tree.value());
    (void)gtree::GTreeStore::Create("/tmp/gmine_bm_leaf.gtree", d.graph,
                                    tree.value(), conn, d.labels);
    // A deliberately tight private pool (leaked: the store is static
    // too) so the round-robin walk mixes evictions with hits.
    auto* pool = new storage::BufferPool(
        storage::BufferPoolOptions{.budget_bytes = 64 << 10, .shards = 1});
    gtree::GTreeStoreOptions sopts;
    sopts.buffer_pool = pool;
    return std::move(gtree::GTreeStore::Open("/tmp/gmine_bm_leaf.gtree",
                                             sopts))
        .value();
  }();
  auto leaves = store->tree().LeavesUnder(store->tree().root());
  size_t i = 0;
  for (auto _ : state) {
    auto payload = store->LoadLeaf(leaves[i % leaves.size()]);
    benchmark::DoNotOptimize(payload);
    ++i;
  }
  state.counters["hit_rate"] =
      static_cast<double>(store->stats().cache_hits) /
      static_cast<double>(store->stats().cache_hits +
                          store->stats().leaf_loads);
  (void)data;
}

BENCHMARK(BM_LeafLoadColdVsCacheSweep);

BENCHMARK(BM_StoreCreate)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  if (gmine::bench::ShouldPrintReport()) PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::remove("/tmp/gmine_bm_leaf.gtree");
  std::remove("/tmp/gmine_bm_pool.gtree");
  return 0;
}
