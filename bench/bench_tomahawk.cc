// Experiment F4 (Fig. 4): the Tomahawk principle — the display set stays
// O(fanout * depth) while naive full expansion grows as fanout^levels.
//
// Report: display-set size vs full-expansion size across hierarchy
// shapes (levels x fanout), at the deepest focus. Timings: context
// computation cost.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "gtree/builder.h"
#include "gtree/tomahawk.h"

namespace {

using namespace gmine;  // NOLINT

gtree::GTree BalancedTree(uint32_t levels, uint32_t fanout) {
  uint32_t leaves = 1;
  for (uint32_t l = 0; l < levels; ++l) leaves *= fanout;
  std::vector<uint32_t> assignment(leaves);
  for (uint32_t v = 0; v < leaves; ++v) assignment[v] = v;
  return std::move(gtree::BuildGTreeFromAssignment(leaves, assignment,
                                                   leaves, fanout))
      .value();
}

gtree::TreeNodeId DeepestFirstLeaf(const gtree::GTree& tree) {
  gtree::TreeNodeId cur = tree.root();
  while (!tree.node(cur).IsLeaf()) cur = tree.node(cur).children[0];
  return cur;
}

void PrintReport() {
  bench::ReportHeader(
      "F4: Tomahawk principle (Fig. 4)",
      "plot only the focus, its sons, its siblings and the path above — "
      "a bounded set — instead of the exponentially growing expansion");
  std::printf("%-10s %-8s %12s %16s %10s\n", "levels", "fanout",
              "tomahawk", "full expansion", "ratio");
  for (uint32_t levels = 2; levels <= 6; ++levels) {
    for (uint32_t fanout : {2u, 5u, 8u}) {
      uint64_t leaves = 1;
      for (uint32_t l = 0; l < levels; ++l) leaves *= fanout;
      if (leaves > 300000) continue;  // keep the sweep quick
      gtree::GTree tree = BalancedTree(levels, fanout);
      gtree::TreeNodeId focus = DeepestFirstLeaf(tree);
      auto ctx = gtree::ComputeTomahawk(tree, focus);
      uint64_t full = gtree::FullExpansionSize(tree, tree.root());
      std::printf("%-10u %-8u %12zu %16llu %9.1fx\n", levels, fanout,
                  ctx.DisplaySize(),
                  static_cast<unsigned long long>(full),
                  static_cast<double>(full) /
                      static_cast<double>(ctx.DisplaySize()));
    }
  }
  std::printf(
      "shape: tomahawk grows linearly with depth*fanout; full expansion "
      "grows as fanout^levels (the clutter GMine avoids).\n");
}

void BM_ComputeTomahawk(benchmark::State& state) {
  gtree::GTree tree = BalancedTree(static_cast<uint32_t>(state.range(0)),
                                   static_cast<uint32_t>(state.range(1)));
  gtree::TreeNodeId focus = DeepestFirstLeaf(tree);
  for (auto _ : state) {
    auto ctx = gtree::ComputeTomahawk(tree, focus);
    benchmark::DoNotOptimize(ctx);
  }
  state.counters["display"] = static_cast<double>(
      gtree::ComputeTomahawk(tree, focus).DisplaySize());
}

BENCHMARK(BM_ComputeTomahawk)
    ->Args({3, 5})
    ->Args({4, 5})
    ->Args({5, 5})
    ->Args({6, 2});

void BM_FullExpansionSize(benchmark::State& state) {
  gtree::GTree tree = BalancedTree(static_cast<uint32_t>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gtree::FullExpansionSize(tree, tree.root()));
  }
}

BENCHMARK(BM_FullExpansionSize)->Arg(3)->Arg(4)->Arg(5);

void BM_DisplaySetMaterialization(benchmark::State& state) {
  gtree::GTree tree = BalancedTree(4, 5);
  gtree::TreeNodeId focus = DeepestFirstLeaf(tree);
  auto ctx = gtree::ComputeTomahawk(tree, focus);
  for (auto _ : state) {
    auto display = ctx.DisplaySet();
    benchmark::DoNotOptimize(display);
  }
}

BENCHMARK(BM_DisplaySetMaterialization);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
