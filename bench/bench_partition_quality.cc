// Ablation A1 (§III-A design choice): the communities only make sense if
// the partitioner minimizes edge cut under balance — "the communities
// reflect the connectivity (number of edges) among their members".
//
// Report: edge cut / balance / modularity of the multilevel partitioner
// vs the random and BFS-grow baselines at equal k, plus recovery of
// planted communities. Timings per method.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "partition/partitioner.h"
#include "partition/quality.h"

namespace {

using namespace gmine;  // NOLINT
using bench::CachedDblp;

void PrintReport() {
  bench::ReportHeader(
      "A1: partitioner quality ablation (§III-A)",
      "multilevel HEM+GGGP+FM must cut far fewer edges than random or "
      "plain BFS growing at the same k and balance");
  const gen::DblpGraph& data = CachedDblp();
  const uint32_t k = 5;
  std::printf("graph: %u nodes, %llu edges, k=%u\n", data.graph.num_nodes(),
              static_cast<unsigned long long>(data.graph.num_edges()), k);
  std::printf("%-22s %14s %10s %12s\n", "method", "edge cut", "balance",
              "modularity");

  partition::PartitionOptions opts;
  opts.k = k;
  auto ml = partition::PartitionGraph(data.graph, opts);
  partition::PartitionOptions no_kway = opts;
  no_kway.kway_refine = false;
  auto ml_rb = partition::PartitionGraph(data.graph, no_kway);
  auto rnd = partition::RandomPartition(data.graph, k, 7);
  auto bfs = partition::BfsGrowPartition(data.graph, k, 7);
  auto print_row = [&](const char* name,
                       const partition::PartitionResult& r) {
    std::printf("%-22s %14.0f %10.3f %12.3f\n", name, r.edge_cut,
                r.imbalance,
                partition::Modularity(data.graph, r.assignment, k));
  };
  if (ml.ok()) print_row("multilevel (ours)", ml.value());
  if (ml_rb.ok()) print_row("  - w/o k-way refine", ml_rb.value());
  if (bfs.ok()) print_row("BFS grow", bfs.value());
  if (rnd.ok()) print_row("random", rnd.value());
  if (ml.ok() && rnd.ok()) {
    std::printf("shape: multilevel cut is %.1fx lower than random, %.1fx "
                "lower than BFS grow.\n",
                rnd.value().edge_cut / ml.value().edge_cut,
                bfs.value().edge_cut / ml.value().edge_cut);
  }

  // Planted-community recovery: fraction of ground-truth cross edges cut.
  uint64_t planted_cross = 0;
  uint64_t ours_cut = ml.ok()
                          ? partition::CutEdgeCount(data.graph,
                                                    ml.value().assignment)
                          : 0;
  const uint32_t leaves_per_top =
      CachedDblp().num_leaf_communities / 5;  // 5 top-level blocks
  for (const auto& e : data.graph.CollectEdges()) {
    if (data.leaf_community[e.src] / leaves_per_top !=
        data.leaf_community[e.dst] / leaves_per_top) {
      ++planted_cross;
    }
  }
  std::printf(
      "planted top-level cross edges: %llu; our k=5 cut: %llu (ratio "
      "%.2f — close to 1.0 means the planted structure was recovered)\n",
      static_cast<unsigned long long>(planted_cross),
      static_cast<unsigned long long>(ours_cut),
      planted_cross
          ? static_cast<double>(ours_cut) / static_cast<double>(planted_cross)
          : 0.0);
}

void BM_Multilevel(benchmark::State& state) {
  const gen::DblpGraph& data = CachedDblp();
  partition::PartitionOptions opts;
  opts.k = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::PartitionGraph(data.graph, opts));
  }
}
BENCHMARK(BM_Multilevel)->Arg(2)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_RandomBaseline(benchmark::State& state) {
  const gen::DblpGraph& data = CachedDblp();
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::RandomPartition(data.graph, 5, 7));
  }
}
BENCHMARK(BM_RandomBaseline)->Unit(benchmark::kMillisecond);

void BM_BfsGrowBaseline(benchmark::State& state) {
  const gen::DblpGraph& data = CachedDblp();
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::BfsGrowPartition(data.graph, 5, 7));
  }
}
BENCHMARK(BM_BfsGrowBaseline)->Unit(benchmark::kMillisecond);

void BM_QualityMetrics(benchmark::State& state) {
  const gen::DblpGraph& data = CachedDblp();
  auto r = partition::RandomPartition(data.graph, 5, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        partition::Modularity(data.graph, r.value().assignment, 5));
  }
}
BENCHMARK(BM_QualityMetrics)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
