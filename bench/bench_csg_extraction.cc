// Experiment F5 (Fig. 5): connection subgraph extraction — a 30-node
// subgraph for a 3-author query set ("Philip S. Yu", "Flip Korn",
// "Minos N. Garofalakis"), vs. the delivered-current baseline [1], which
// is restricted to pairwise queries.
//
// Report: the extracted subgraph (size, capture, the named authors and
// the bridge node the paper highlights — H.V. Jagadish's role), and the
// multi-source vs pairwise-union comparison: the paper's claim is that
// one multi-source extraction captures the joint relationship better
// than unioning pairwise results at the same budget.

#include <benchmark/benchmark.h>

#include <unordered_set>

#include "bench_common.h"
#include "csg/delivered_current.h"
#include "csg/extraction.h"
#include "csg/goodness.h"

namespace {

using namespace gmine;  // NOLINT
using bench::CachedDblp;

void PrintReport() {
  bench::ReportHeader(
      "F5: connection subgraph extraction (Fig. 5, 30-node subgraph for 3 "
      "authors)",
      "multi-source RWR goodness extraction concentrates the display on "
      "the nodes that best capture the joint relationship; the prior "
      "delivered-current method handles only pairwise queries");
  const gen::DblpGraph& data = CachedDblp();
  std::vector<graph::NodeId> sources{data.philip_yu, data.flip_korn,
                                     data.minos_garofalakis};

  csg::ExtractionOptions opts;
  opts.budget = 30;
  auto cs = csg::ExtractConnectionSubgraph(data.graph, sources, opts);
  if (!cs.ok()) {
    std::printf("extraction failed: %s\n", cs.status().ToString().c_str());
    return;
  }
  std::printf("multi-source (3 authors, budget 30): %s\n",
              cs.value().ToString().c_str());
  // Top goodness members with names (the figure's labeled nodes).
  std::vector<std::pair<double, graph::NodeId>> ranked;
  for (size_t i = 0; i < cs.value().subgraph.to_parent.size(); ++i) {
    ranked.emplace_back(cs.value().member_goodness[i],
                        cs.value().subgraph.to_parent[i]);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("top members by goodness:\n");
  for (size_t i = 0; i < std::min<size_t>(6, ranked.size()); ++i) {
    std::printf("  %.3e  %s\n", ranked[i].first,
                std::string(data.labels.Label(ranked[i].second)).c_str());
  }

  // Pairwise-union baseline at the same total budget: 3 pairs, 10 nodes
  // each.
  auto walks = csg::ComputeSourceWalks(data.graph, sources, opts.rwr);
  std::vector<double> goodness = csg::GoodnessScores(walks.value());
  std::unordered_set<graph::NodeId> union_nodes;
  csg::DeliveredCurrentOptions dopts;
  dopts.budget = 12;
  const std::pair<graph::NodeId, graph::NodeId> pairs[] = {
      {sources[0], sources[1]},
      {sources[0], sources[2]},
      {sources[1], sources[2]}};
  for (auto [s, t] : pairs) {
    auto dc = csg::DeliveredCurrentSubgraph(data.graph, s, t, dopts);
    if (!dc.ok()) continue;
    for (graph::NodeId p : dc.value().subgraph.to_parent) {
      union_nodes.insert(p);
    }
  }
  std::vector<graph::NodeId> union_vec(union_nodes.begin(),
                                       union_nodes.end());
  double union_capture = csg::GoodnessCapture(goodness, union_vec);
  std::printf(
      "baseline union of 3 pairwise delivered-current subgraphs: %zu nodes, "
      "goodness capture %.3e\n",
      union_vec.size(), union_capture);
  std::printf(
      "shape: multi-source capture (%.3e) >= pairwise-union capture "
      "(%.3e) at comparable size -> %s\n",
      cs.value().goodness_capture, union_capture,
      cs.value().goodness_capture >= union_capture ? "HOLDS" : "violated");
  std::printf(
      "magnitude: %u-node display vs %u-node graph — a %.0fx reduction "
      "(the paper: \"thousand fold smaller\" at DBLP scale).\n",
      cs.value().subgraph.graph.num_nodes(), data.graph.num_nodes(),
      static_cast<double>(data.graph.num_nodes()) /
          cs.value().subgraph.graph.num_nodes());
}

void BM_MultiSourceExtraction(benchmark::State& state) {
  const gen::DblpGraph& data = CachedDblp();
  std::vector<graph::NodeId> sources{data.philip_yu, data.flip_korn,
                                     data.minos_garofalakis};
  csg::ExtractionOptions opts;
  opts.budget = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    auto cs = csg::ExtractConnectionSubgraph(data.graph, sources, opts);
    benchmark::DoNotOptimize(cs);
  }
}

BENCHMARK(BM_MultiSourceExtraction)
    ->Arg(10)
    ->Arg(30)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_PairwiseDeliveredCurrent(benchmark::State& state) {
  const gen::DblpGraph& data = CachedDblp();
  csg::DeliveredCurrentOptions opts;
  opts.budget = 30;
  for (auto _ : state) {
    auto dc = csg::DeliveredCurrentSubgraph(data.graph, data.philip_yu,
                                            data.flip_korn, opts);
    benchmark::DoNotOptimize(dc);
  }
}

BENCHMARK(BM_PairwiseDeliveredCurrent)->Unit(benchmark::kMillisecond);

void BM_SourceWalks(benchmark::State& state) {
  const gen::DblpGraph& data = CachedDblp();
  std::vector<graph::NodeId> sources{data.philip_yu, data.flip_korn,
                                     data.minos_garofalakis};
  for (auto _ : state) {
    auto walks = csg::ComputeSourceWalks(data.graph, sources);
    benchmark::DoNotOptimize(walks);
  }
}

BENCHMARK(BM_SourceWalks)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
