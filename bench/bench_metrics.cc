// Experiment S2 (§III-B): the five on-demand subgraph metrics — degree
// distribution, number of hops, weak components, strong components,
// PageRank — computed "for this subgraph only".
//
// Report: per-metric latency on communities of growing size; the shape
// to verify is that latency tracks the community, not the whole graph.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "graph/subgraph.h"
#include "gtree/builder.h"
#include "mining/betweenness.h"
#include "mining/clustering.h"
#include "mining/kcore.h"
#include "mining/metrics.h"
#include "mining/pagerank.h"
#include "util/timer.h"

namespace {

using namespace gmine;  // NOLINT
using bench::CachedDblp;

graph::Graph CommunityOfSize(uint32_t approx_size) {
  const gen::DblpGraph& data = CachedDblp();
  std::vector<graph::NodeId> members;
  members.reserve(approx_size);
  for (graph::NodeId v = 0; v < approx_size && v < data.graph.num_nodes();
       ++v) {
    members.push_back(v);
  }
  return std::move(graph::InducedSubgraph(data.graph, members))
      .value()
      .graph;
}

void PrintReport() {
  bench::ReportHeader(
      "S2: on-demand subgraph metrics (§III-B)",
      "degree distribution, number of hops, weak components, strong "
      "components and PageRank are computed for the focused community "
      "only — latency must track community size, not graph size");
  std::printf("%-12s %10s %10s %10s %10s %10s\n", "community", "degree",
              "hops", "weak cc", "strong cc", "pagerank");
  for (uint32_t size : {100u, 300u, 1000u, 3000u}) {
    graph::Graph sub = CommunityOfSize(size);
    mining::MetricsRequest req;
    req.hop_samples = 64;
    req.hop_exact_threshold = 512;

    auto time_one = [&](auto fn) {
      StopWatch w;
      fn();
      return HumanMicros(w.ElapsedMicros());
    };
    std::string d = time_one(
        [&] { benchmark::DoNotOptimize(mining::ComputeDegreeDistribution(sub)); });
    std::string h = time_one([&] {
      benchmark::DoNotOptimize(
          mining::ComputeHopPlot(sub, req.hop_exact_threshold,
                                 req.hop_samples, 1));
    });
    std::string w = time_one(
        [&] { benchmark::DoNotOptimize(mining::WeakComponents(sub)); });
    std::string s = time_one(
        [&] { benchmark::DoNotOptimize(mining::StrongComponents(sub)); });
    std::string p = time_one(
        [&] { benchmark::DoNotOptimize(mining::ComputePageRank(sub)); });
    std::printf("%-12u %10s %10s %10s %10s %10s\n", sub.num_nodes(),
                d.c_str(), h.c_str(), w.c_str(), s.c_str(), p.c_str());
  }

  // Thread sweep: whole-surrogate PageRank and sampled betweenness on the
  // parallel kernel engine (threads=1 is the exact serial path).
  const gen::DblpGraph& data = CachedDblp();
  std::printf("\nparallel kernels on full surrogate (n=%u):\n",
              data.graph.num_nodes());
  bench::PrintThreadSweep("PageRank:", [&](int threads) {
    mining::PageRankOptions opts;
    opts.context.threads = threads;
    StopWatch w;
    benchmark::DoNotOptimize(mining::ComputePageRank(data.graph, opts));
    return static_cast<double>(w.ElapsedMicros());
  });
  bench::PrintThreadSweep("Betweenness (64 samples):", [&](int threads) {
    mining::BetweennessOptions opts;
    opts.samples = 64;
    opts.context.threads = threads;
    StopWatch w;
    benchmark::DoNotOptimize(mining::ComputeBetweenness(data.graph, opts));
    return static_cast<double>(w.ElapsedMicros());
  });
}

void BM_DegreeDistribution(benchmark::State& state) {
  graph::Graph sub = CommunityOfSize(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mining::ComputeDegreeDistribution(sub));
  }
}
BENCHMARK(BM_DegreeDistribution)->Arg(300)->Arg(3000);

void BM_HopPlot(benchmark::State& state) {
  graph::Graph sub = CommunityOfSize(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mining::ComputeHopPlot(sub, 512, 64, 1));
  }
}
BENCHMARK(BM_HopPlot)->Arg(300)->Arg(3000)->Unit(benchmark::kMillisecond);

void BM_WeakComponents(benchmark::State& state) {
  graph::Graph sub = CommunityOfSize(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mining::WeakComponents(sub));
  }
}
BENCHMARK(BM_WeakComponents)->Arg(300)->Arg(3000);

void BM_StrongComponents(benchmark::State& state) {
  graph::Graph sub = CommunityOfSize(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mining::StrongComponents(sub));
  }
}
BENCHMARK(BM_StrongComponents)->Arg(300)->Arg(3000);

void BM_PageRank(benchmark::State& state) {
  graph::Graph sub = CommunityOfSize(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mining::ComputePageRank(sub));
  }
}
BENCHMARK(BM_PageRank)->Arg(300)->Arg(3000)->Unit(benchmark::kMillisecond);

// Thread-count sweeps for BENCH_kernels.json (tools/run_benches.sh): Arg
// is the `threads` option (0 = auto), workload is the full surrogate.
void BM_PageRankThreads(benchmark::State& state) {
  const gen::DblpGraph& data = CachedDblp();
  mining::PageRankOptions opts;
  opts.context.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mining::ComputePageRank(data.graph, opts));
  }
}
BENCHMARK(BM_PageRankThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(0)->Unit(
    benchmark::kMillisecond);

void BM_BetweennessThreads(benchmark::State& state) {
  const gen::DblpGraph& data = CachedDblp();
  mining::BetweennessOptions opts;
  opts.samples = 64;
  opts.context.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mining::ComputeBetweenness(data.graph, opts));
  }
}
BENCHMARK(BM_BetweennessThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(0)->Unit(
    benchmark::kMillisecond);

void BM_AllFiveMetrics(benchmark::State& state) {
  graph::Graph sub = CommunityOfSize(static_cast<uint32_t>(state.range(0)));
  mining::MetricsRequest req;
  req.hop_samples = 64;
  req.hop_exact_threshold = 512;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mining::ComputeMetrics(sub, req));
  }
}
BENCHMARK(BM_AllFiveMetrics)->Arg(500)->Unit(benchmark::kMillisecond);

// Extension metrics (not in the paper's list of five, offered alongside).
void BM_Clustering(benchmark::State& state) {
  graph::Graph sub = CommunityOfSize(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mining::ComputeClustering(sub));
  }
}
BENCHMARK(BM_Clustering)->Arg(300)->Arg(3000);

void BM_KCore(benchmark::State& state) {
  graph::Graph sub = CommunityOfSize(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mining::KCoreDecomposition(sub));
  }
}
BENCHMARK(BM_KCore)->Arg(300)->Arg(3000);

}  // namespace

int main(int argc, char** argv) {
  if (gmine::bench::ShouldPrintReport()) PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
