// HTTP gateway sweep: a fixed budget of WebSocket navigation ops splits
// across N concurrent upgraded connections against one in-process
// `http::Gateway` over a single-store catalog — the gateway-level
// analogue of the server_navigate sweep, adding HTTP upgrade, RFC 6455
// framing and the epoll reactor to the measured path. The paper-facing
// report additionally parks an idle fleet (10k WebSocket connections by
// default) on the one event loop to show connection cost, not
// throughput, is the scaling limit. Feeds the "http_gateway" entry of
// BENCH_kernels.json via tools/run_benches.sh.

#include <benchmark/benchmark.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/catalog.h"
#include "gtree/builder.h"
#include "http/client.h"
#include "http/gateway.h"
#include "storage/buffer_pool.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace {

using namespace gmine;  // NOLINT
using bench::CachedDblp;

constexpr char kStoreDir[] = "/tmp/gmine_bm_http";
// Total WebSocket round-trips per measurement, split across the
// connections.
constexpr size_t kOps = 256;

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One catalog directory (a single store) shared by every benchmark in
/// this binary.
const char* SharedStoreDir() {
  static const bool built = [] {
    std::error_code ec;
    std::filesystem::create_directories(kStoreDir, ec);
    const gen::DblpGraph& d = CachedDblp();
    gtree::GTreeBuildOptions bopts;
    bopts.levels = 3;
    bopts.fanout = 5;
    auto tree = gtree::BuildGTree(d.graph, bopts);
    auto conn = gtree::ConnectivityIndex::Build(d.graph, tree.value());
    (void)gtree::GTreeStore::Create(std::string(kStoreDir) + "/s0.gtree",
                                    d.graph, tree.value(), conn, d.labels);
    return true;
  }();
  (void)built;
  return kStoreDir;
}

struct GatewayFixture {
  storage::BufferPool pool;
  std::unique_ptr<core::Catalog> catalog;
  std::unique_ptr<http::Gateway> gateway;

  explicit GatewayFixture(size_t max_conns) {
    core::CatalogOptions copts;
    copts.session_quota = 0;  // the sweep itself is the admission policy
    copts.store.buffer_pool = &pool;
    copts.mem_budget_bytes = 64ull << 20;
    catalog =
        std::move(core::Catalog::OpenDirectory(SharedStoreDir(), copts))
            .value();
    http::GatewayOptions gopts;
    gopts.max_conns = max_conns;
    gopts.reactor_threads = 1;  // the one-loop claim is the point
    gopts.buffer_pool = &pool;
    gateway = std::make_unique<http::Gateway>(catalog.get(), gopts);
    if (!gateway->Start().ok()) std::abort();
  }
};

/// Runs this connection's slice of the op budget: a deterministic
/// descend / summarize / ascend cycle. Appends per-op latencies (ns).
size_t RunClientSlice(uint16_t port, size_t client, size_t num_clients,
                      std::vector<int64_t>* latencies_ns) {
  http::GatewayClient c;
  if (!c.Connect("127.0.0.1", port).ok()) return 0;
  if (!c.UpgradeWebSocket("/api/v1/stores/s0/ws", "").ok()) return 0;
  static const char* kCycle[] = {"child 0", "summary", "parent", "root"};
  size_t done = 0;
  for (size_t k = client; k < kOps; k += num_clients) {
    const int64_t t0 = NowNanos();
    if (c.Roundtrip(kCycle[k % 4]).ok()) {
      latencies_ns->push_back(NowNanos() - t0);
      ++done;
    }
  }
  (void)c.SendClose(1000, "done");
  c.Close();
  return done;
}

/// One measurement: N connections upgrade, burn the shared budget,
/// close. Returns elapsed microseconds; merges latencies into `all_ns`.
double RunSweep(uint16_t port, size_t conns,
                std::vector<int64_t>* all_ns) {
  std::mutex mu;
  StopWatch watch;
  std::vector<std::thread> threads;
  threads.reserve(conns);
  for (size_t i = 0; i < conns; ++i) {
    threads.emplace_back([port, i, conns, &mu, all_ns] {
      std::vector<int64_t> local;
      (void)RunClientSlice(port, i, conns, &local);
      std::lock_guard<std::mutex> lock(mu);
      all_ns->insert(all_ns->end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : threads) t.join();
  return static_cast<double>(watch.ElapsedMicros());
}

int64_t PercentileNs(std::vector<int64_t>* v, double p) {
  if (v->empty()) return 0;
  std::sort(v->begin(), v->end());
  return (*v)[static_cast<size_t>(p * static_cast<double>(v->size() - 1))];
}

/// Idle-fleet hold for the paper-facing report: parks `target` idle
/// upgraded WebSocket connections on the single event loop and reports
/// what that costs. The client ends live in forked child processes —
/// like real remote navigators they must not share the gateway's fd
/// table, which caps this process at one descriptor per connection.
void HoldIdleFleet(GatewayFixture* f) {
  struct rlimit lim = {};
  if (getrlimit(RLIMIT_NOFILE, &lim) == 0) {
    rlimit want = {65536, 65536};
    if (setrlimit(RLIMIT_NOFILE, &want) == 0) {
      lim = want;
    } else {
      lim.rlim_cur = lim.rlim_max;
      (void)setrlimit(RLIMIT_NOFILE, &lim);
    }
  }
  size_t target = 10000;
  if (const char* env = std::getenv("GMINE_BENCH_IDLE_CONNS")) {
    target = static_cast<size_t>(std::atoll(env));
  }
  const size_t fd_room = lim.rlim_cur > 2048 ? lim.rlim_cur - 2048 : 0;
  target = std::min(target, fd_room);
  const uint16_t port = f->gateway->port();

  struct Shard {
    pid_t pid;
    int ready_fd;  // child reports its held-connection count here
    int done_fd;   // parent signals teardown here
  };
  constexpr size_t kShards = 4;
  std::vector<Shard> shards;
  StopWatch ramp;
  for (size_t s = 0; s < kShards; ++s) {
    const size_t quota = target / kShards + (s < target % kShards ? 1 : 0);
    int ready[2], done[2];
    if (pipe(ready) != 0) break;
    if (pipe(done) != 0) {
      close(ready[0]);
      close(ready[1]);
      break;
    }
    const pid_t pid = fork();
    if (pid == 0) {
      // Child: upgrade `quota` connections, report the count, then sit
      // idle until the parent says done. _exit keeps the inherited
      // gateway/static state from double-destructing.
      close(ready[0]);
      close(done[1]);
      std::vector<std::unique_ptr<http::GatewayClient>> fleet;
      fleet.reserve(quota);
      for (size_t i = 0; i < quota; ++i) {
        auto c = std::make_unique<http::GatewayClient>();
        if (!c->Connect("127.0.0.1", port).ok()) break;
        if (!c->UpgradeWebSocket("/api/v1/stores/s0/ws", "").ok()) break;
        fleet.push_back(std::move(c));
      }
      const uint32_t held = static_cast<uint32_t>(fleet.size());
      (void)!write(ready[1], &held, sizeof(held));
      char go = 0;
      (void)!read(done[0], &go, 1);
      _exit(0);
    }
    close(ready[1]);
    close(done[0]);
    if (pid < 0) {
      close(ready[0]);
      close(done[1]);
      break;
    }
    shards.push_back({pid, ready[0], done[1]});
  }
  size_t held = 0;
  for (const Shard& s : shards) {
    uint32_t n = 0;
    if (read(s.ready_fd, &n, sizeof(n)) == sizeof(n)) held += n;
  }
  const double ramp_s = ramp.ElapsedSeconds();

  // A navigation gesture must stay responsive with the fleet parked.
  std::vector<int64_t> probe_ns;
  {
    http::GatewayClient probe;
    if (probe.Connect("127.0.0.1", port).ok() &&
        probe.UpgradeWebSocket("/api/v1/stores/s0/ws", "").ok()) {
      for (int i = 0; i < 32; ++i) {
        const int64_t t0 = NowNanos();
        if (probe.Roundtrip("summary").ok()) {
          probe_ns.push_back(NowNanos() - t0);
        }
      }
    }
    probe.Close();
  }

  const http::GatewayStats gs = f->gateway->stats();
  const core::CatalogStats cs = f->catalog->stats();
  const storage::BufferPoolStats ps = f->pool.stats();
  std::printf(
      "idle fleet: held=%zu/%zu (ramp %.2fs, %.0f conns/s) "
      "reactor open=%zu catalog sessions=%zu\n",
      held, target, ramp_s,
      ramp_s > 0 ? static_cast<double>(held) / ramp_s : 0.0,
      gs.reactor.open_now, cs.sessions_now);
  std::printf(
      "idle fleet: pool resident=%llu bytes of %llu budget; "
      "probe p99=%lldus over %zu gestures\n",
      static_cast<unsigned long long>(ps.resident_bytes),
      static_cast<unsigned long long>(ps.budget_bytes),
      static_cast<long long>(PercentileNs(&probe_ns, 0.99) / 1000),
      probe_ns.size());

  for (const Shard& s : shards) {
    const char go = 1;
    (void)!write(s.done_fd, &go, 1);
    close(s.done_fd);
    close(s.ready_fd);
  }
  for (const Shard& s : shards) {
    int status = 0;
    (void)waitpid(s.pid, &status, 0);
  }
}

void PrintReport() {
  bench::ReportHeader(
      "S3: HTTP/WebSocket gateway (docs/HTTP.md)",
      "one epoll event loop holds tens of thousands of idle navigators; "
      "a parked fleet costs file descriptors, not throughput");
  GatewayFixture f(/*max_conns=*/30000);
  bench::PrintThreadSweep(
      StrFormat("WebSocket round-trip sweep (%zu ops split across N "
                "connections):",
                kOps)
          .c_str(),
      [&](int conns) {
        std::vector<int64_t> ns;
        return RunSweep(f.gateway->port(),
                        static_cast<size_t>(ResolveThreads(conns)), &ns);
      });
  HoldIdleFleet(&f);
  const http::GatewayStats gs = f.gateway->stats();
  std::printf("gateway: requests=%llu upgrades=%llu ws_ops=%llu "
              "evicted_slow=%llu\n",
              static_cast<unsigned long long>(gs.requests),
              static_cast<unsigned long long>(gs.upgrades),
              static_cast<unsigned long long>(gs.ws_messages),
              static_cast<unsigned long long>(gs.reactor.evicted_slow));
  f.gateway->Stop();
}

// The benchmark gateway outlives every iteration; main() stops it
// before static destruction tears the catalog down under its threads.
http::Gateway* g_bm_gateway = nullptr;

// WebSocket navigation through the gateway: arg = concurrent upgraded
// connections. The op budget is fixed, so wall time tracks how well one
// reactor loop overlaps connections; req_per_sec and p99_ns carry the
// throughput/latency story tools/check_bench_json.sh gates on.
void BM_HttpGatewayNavigate(benchmark::State& state) {
  static GatewayFixture* fixture = [] {
    auto* f = new GatewayFixture(/*max_conns=*/10000);
    g_bm_gateway = f->gateway.get();
    return f;
  }();
  const size_t conns = static_cast<size_t>(state.range(0));
  std::vector<int64_t> ns;
  double total_us = 0.0;
  size_t total_ops = 0;
  for (auto _ : state) {
    const size_t before = ns.size();
    total_us += RunSweep(fixture->gateway->port(), conns, &ns);
    total_ops += ns.size() - before;
  }
  state.counters["conns"] = static_cast<double>(conns);
  state.counters["req_per_sec"] =
      total_us > 0 ? static_cast<double>(total_ops) / (total_us / 1e6)
                   : 0.0;
  state.counters["p99_ns"] =
      static_cast<double>(PercentileNs(&ns, 0.99));
}

BENCHMARK(BM_HttpGatewayNavigate)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    // The measured path is wall-clock-bound (client threads block on
    // sockets); budgeting by CPU time would explode iteration counts.
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  if (gmine::bench::ShouldPrintReport()) PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (g_bm_gateway != nullptr) g_bm_gateway->Stop();
  std::error_code ec;
  std::filesystem::remove_all(kStoreDir, ec);
  return 0;
}
