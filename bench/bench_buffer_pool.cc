// Buffer-pool navigation sweep: leaf checkouts through the process-wide
// page manager (storage/buffer_pool.h) across a varying number of
// stores sharing one fixed byte budget. The paper-facing claim: memory
// stays within the configured budget no matter how many stores (users'
// graphs) the process serves, trading hit rate — not correctness or
// footprint — as the working set outgrows the budget. Feeds the
// "buffer_pool_navigate" entry of BENCH_kernels.json via
// tools/run_benches.sh (columns: hit_rate, resident_bytes).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "gtree/builder.h"
#include "gtree/store.h"
#include "storage/buffer_pool.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using namespace gmine;  // NOLINT
using bench::CachedDblp;

constexpr int kMaxStores = 4;

/// Store files are built once per process; each benchmark run opens
/// them against its own private pool.
const std::string& StorePath(int i) {
  static std::vector<std::string>* paths = [] {
    auto* out = new std::vector<std::string>();
    const gen::DblpGraph& d = CachedDblp();
    gtree::GTreeBuildOptions bopts;
    bopts.levels = 3;
    bopts.fanout = 5;
    auto tree = gtree::BuildGTree(d.graph, bopts);
    auto conn = gtree::ConnectivityIndex::Build(d.graph, tree.value());
    for (int s = 0; s < kMaxStores; ++s) {
      std::string path =
          StrFormat("/tmp/gmine_bm_bufpool_%d.gtree", s);
      (void)gtree::GTreeStore::Create(path, d.graph, tree.value(), conn,
                                      d.labels);
      out->push_back(std::move(path));
    }
    return out;
  }();
  return (*paths)[i];
}

struct PoolRun {
  uint64_t visits = 0;
  uint64_t hits = 0;
  uint64_t loads = 0;
  uint64_t peak_resident = 0;
  int64_t micros = 0;
};

/// Round-robin leaf checkouts across `num_stores` stores sharing one
/// pool of `budget_bytes`; every page unpins before the next load, the
/// access pattern cycles each store's full leaf set.
PoolRun RunNavigate(size_t num_stores, uint64_t budget_bytes,
                    size_t visits) {
  storage::BufferPool pool(
      storage::BufferPoolOptions{.budget_bytes = budget_bytes});
  std::vector<std::unique_ptr<gtree::GTreeStore>> stores;
  std::vector<std::vector<gtree::TreeNodeId>> leaves;
  for (size_t s = 0; s < num_stores; ++s) {
    gtree::GTreeStoreOptions sopts;
    sopts.buffer_pool = &pool;
    auto store = gtree::GTreeStore::Open(StorePath(static_cast<int>(s)),
                                         sopts);
    if (!store.ok()) {
      std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
      std::exit(1);
    }
    leaves.push_back(
        store.value()->tree().LeavesUnder(store.value()->tree().root()));
    stores.push_back(std::move(store).value());
  }
  PoolRun run;
  StopWatch watch;
  for (size_t i = 0; i < visits; ++i) {
    const size_t s = i % num_stores;
    const auto& ls = leaves[s];
    auto payload = stores[s]->LoadLeaf(ls[(i / num_stores) % ls.size()]);
    benchmark::DoNotOptimize(payload);
    if ((i & 31) == 0) {
      run.peak_resident =
          std::max(run.peak_resident, pool.stats().resident_bytes);
    }
  }
  run.micros = watch.ElapsedMicros();
  run.peak_resident =
      std::max(run.peak_resident, pool.stats().resident_bytes);
  const storage::BufferPoolStats st = pool.stats();
  run.visits = visits;
  run.hits = st.hits;
  run.loads = st.loads;
  return run;
}

void PrintReport() {
  bench::ReportHeader(
      "B1: process-wide buffer pool (one budget, many stores)",
      "resident bytes stay under the configured budget as stores are "
      "added; the working set degrades hit rate, never footprint");
  std::printf("%-10s %-8s %12s %10s %14s %14s\n", "budget", "stores",
              "visits/s", "hit rate", "peak resident", "within budget");
  for (uint64_t budget_kb : {256, 1024, 4096}) {
    for (size_t stores : {1, 2, 4}) {
      PoolRun r = RunNavigate(stores, budget_kb << 10, 2048);
      const double rate =
          r.hits + r.loads > 0
              ? static_cast<double>(r.hits) /
                    static_cast<double>(r.hits + r.loads)
              : 0.0;
      const double per_sec =
          r.micros > 0
              ? 1e6 * static_cast<double>(r.visits) /
                    static_cast<double>(r.micros)
              : 0.0;
      std::printf("%-10s %-8zu %12.0f %9.1f%% %14s %14s\n",
                  HumanBytes(budget_kb << 10).c_str(), stores, per_sec,
                  100.0 * rate, HumanBytes(r.peak_resident).c_str(),
                  r.peak_resident <= (budget_kb << 10) ? "yes" : "NO");
    }
  }
}

// JSON kernel: ns/op of one leaf checkout with N stores sharing a fixed
// 1 MiB budget (eviction pressure grows with N), plus hit_rate and
// peak resident_bytes counters for tools/check_bench_json.sh.
void BM_BufferPoolNavigate(benchmark::State& state) {
  const size_t num_stores = static_cast<size_t>(state.range(0));
  constexpr uint64_t kBudget = 1 << 20;
  uint64_t visits = 0, hits = 0, loads = 0, peak = 0;
  for (auto _ : state) {
    // A fresh pool per measurement keeps iterations independent (no
    // warm cache leaking across samples).
    PoolRun r = RunNavigate(num_stores, kBudget, 512);
    visits += r.visits;
    hits += r.hits;
    loads += r.loads;
    peak = std::max(peak, r.peak_resident);
  }
  state.SetItemsProcessed(static_cast<int64_t>(visits));
  state.counters["hit_rate"] =
      hits + loads > 0 ? static_cast<double>(hits) /
                             static_cast<double>(hits + loads)
                       : 0.0;
  state.counters["resident_bytes"] = static_cast<double>(peak);
}

BENCHMARK(BM_BufferPoolNavigate)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  if (gmine::bench::ShouldPrintReport()) PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  for (int s = 0; s < kMaxStores; ++s) {
    std::remove(StorePath(s).c_str());
  }
  return 0;
}
