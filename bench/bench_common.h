// Shared workload builders for the benchmark binaries. Each bench prints
// the paper-facing report first (the rows/series the figure shows), then
// runs google-benchmark timings.

#ifndef GMINE_BENCH_BENCH_COMMON_H_
#define GMINE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <tuple>

#include "gen/dblp.h"
#include "util/status.h"
#include "util/string_util.h"

namespace gmine::bench {

/// Default bench-scale DBLP surrogate: 3 levels x 5 communities x 60
/// authors = 7,500 nodes — large enough for the paper's shapes, small
/// enough that every bench binary finishes in seconds. Pass
/// --paper-scale to the examples for the full 315k-node graph.
inline gen::DblpOptions BenchDblpOptions(uint32_t levels = 3,
                                         uint32_t fanout = 5,
                                         uint32_t leaf_size = 60) {
  gen::DblpOptions opts;
  opts.levels = levels;
  opts.fanout = fanout;
  opts.leaf_size = leaf_size;
  opts.seed = 2006;
  return opts;
}

/// Memoized surrogate generation (benchmarks re-enter their loop bodies
/// many times; the workload must be built once). Thread-safe: benchmark
/// fixtures and the parallel kernels may request workloads concurrently.
/// Returns the generation error instead of dying on failure.
inline gmine::Result<const gen::DblpGraph*> TryCachedDblp(
    uint32_t levels = 3, uint32_t fanout = 5, uint32_t leaf_size = 60) {
  static std::mutex mu;
  static std::map<std::tuple<uint32_t, uint32_t, uint32_t>, gen::DblpGraph>
      cache;
  std::lock_guard<std::mutex> lock(mu);
  auto key = std::make_tuple(levels, fanout, leaf_size);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto r = gen::GenerateDblp(BenchDblpOptions(levels, fanout, leaf_size));
    if (!r.ok()) {
      return Status(r.status().code(),
                    StrFormat("bench workload (levels=%u fanout=%u leaf=%u) "
                              "generation failed: %s",
                              levels, fanout, leaf_size,
                              r.status().ToString().c_str()));
    }
    it = cache.emplace(key, std::move(r).value()).first;
  }
  return &it->second;
}

/// Convenience wrapper for bench bodies that cannot recover anyway:
/// exits with the propagated error message on failure.
inline const gen::DblpGraph& CachedDblp(uint32_t levels = 3,
                                        uint32_t fanout = 5,
                                        uint32_t leaf_size = 60) {
  auto r = TryCachedDblp(levels, fanout, leaf_size);
  if (!r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return *r.value();
}

/// True unless GMINE_BENCH_SKIP_REPORT is set to a non-empty, non-zero
/// value. tools/run_benches.sh sets it so the filtered BM_*Threads JSON
/// runs don't also pay for the full paper-facing report.
inline bool ShouldPrintReport() {
  const char* env = std::getenv("GMINE_BENCH_SKIP_REPORT");
  return env == nullptr || env[0] == '\0' || env[0] == '0';
}

/// Section header for the paper-facing report.
inline void ReportHeader(const char* experiment, const char* paper_claim) {
  std::printf("\n=== %s ===\n", experiment);
  std::printf("paper: %s\n", paper_claim);
}

/// Prints a serial-vs-parallel sweep table for one kernel. `run` executes
/// the kernel with the given `threads` option value and returns elapsed
/// microseconds, or a negative value on failure (after reporting the
/// error itself); failed rows print "failed" and never feed the speedup
/// baseline.
inline void PrintThreadSweep(const char* header,
                             const std::function<double(int)>& run) {
  std::printf("%s\n", header);
  std::printf("%-10s %14s %10s\n", "threads", "wall time", "speedup");
  double serial_us = 0.0;
  for (int threads : {1, 2, 4, 0}) {
    const char* label_auto = "auto";
    std::string label =
        threads == 0 ? label_auto : StrFormat("%d", threads);
    double us = run(threads);
    if (us < 0.0) {
      std::printf("%-10s %14s\n", label.c_str(), "failed");
      continue;
    }
    if (threads == 1) serial_us = us;
    if (serial_us > 0.0 && us > 0.0) {
      std::printf("%-10s %14s %9.2fx\n", label.c_str(),
                  HumanMicros(static_cast<int64_t>(us)).c_str(),
                  serial_us / us);
    } else {
      std::printf("%-10s %14s %10s\n", label.c_str(),
                  HumanMicros(static_cast<int64_t>(us)).c_str(), "-");
    }
  }
}

}  // namespace gmine::bench

#endif  // GMINE_BENCH_BENCH_COMMON_H_
