// Shared workload builders for the benchmark binaries. Each bench prints
// the paper-facing report first (the rows/series the figure shows), then
// runs google-benchmark timings.

#ifndef GMINE_BENCH_BENCH_COMMON_H_
#define GMINE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <map>
#include <string>
#include <tuple>

#include "gen/dblp.h"
#include "util/string_util.h"

namespace gmine::bench {

/// Default bench-scale DBLP surrogate: 3 levels x 5 communities x 60
/// authors = 7,500 nodes — large enough for the paper's shapes, small
/// enough that every bench binary finishes in seconds. Pass
/// --paper-scale to the examples for the full 315k-node graph.
inline gen::DblpOptions BenchDblpOptions(uint32_t levels = 3,
                                         uint32_t fanout = 5,
                                         uint32_t leaf_size = 60) {
  gen::DblpOptions opts;
  opts.levels = levels;
  opts.fanout = fanout;
  opts.leaf_size = leaf_size;
  opts.seed = 2006;
  return opts;
}

/// Memoized surrogate generation (benchmarks re-enter their loop bodies
/// many times; the workload must be built once).
inline const gen::DblpGraph& CachedDblp(uint32_t levels = 3,
                                        uint32_t fanout = 5,
                                        uint32_t leaf_size = 60) {
  static std::map<std::tuple<uint32_t, uint32_t, uint32_t>, gen::DblpGraph>
      cache;
  auto key = std::make_tuple(levels, fanout, leaf_size);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto r = gen::GenerateDblp(BenchDblpOptions(levels, fanout, leaf_size));
    if (!r.ok()) {
      std::fprintf(stderr, "workload generation failed: %s\n",
                   r.status().ToString().c_str());
      std::abort();
    }
    it = cache.emplace(key, std::move(r).value()).first;
  }
  return it->second;
}

/// Section header for the paper-facing report.
inline void ReportHeader(const char* experiment, const char* paper_claim) {
  std::printf("\n=== %s ===\n", experiment);
  std::printf("paper: %s\n", paper_claim);
}

}  // namespace gmine::bench

#endif  // GMINE_BENCH_BENCH_COMMON_H_
