// Experiment F6 (Fig. 6): the combined pipeline — extract a 200-node
// connection subgraph from the surrogate, partition it into 3
// communities, and drill down the hierarchy to the very nodes.
//
// Report: the sizes at each stage of Fig. 6(a-d) plus drill-down latency
// per step. Timings: each stage separately and end to end.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/engine.h"
#include "csg/extraction.h"
#include "util/timer.h"

namespace {

using namespace gmine;  // NOLINT
using bench::CachedDblp;

csg::ConnectionSubgraph ExtractStage(uint32_t budget) {
  const gen::DblpGraph& data = CachedDblp();
  csg::ExtractionOptions opts;
  opts.budget = budget;
  auto cs = csg::ExtractConnectionSubgraph(
      data.graph,
      {data.jiawei_han, data.philip_yu, data.hv_jagadish}, opts);
  if (!cs.ok()) {
    std::fprintf(stderr, "extract failed: %s\n",
                 cs.status().ToString().c_str());
    std::abort();
  }
  return std::move(cs).value();
}

void PrintReport() {
  bench::ReportHeader(
      "F6: combined extraction + hierarchy (Fig. 6 a-d)",
      "a 200-node extracted subgraph is itself partitioned into 3 "
      "communities and explored down to the very nodes of the graph");
  StopWatch total;

  StopWatch w1;
  csg::ConnectionSubgraph cs = ExtractStage(200);
  std::printf("(a) extraction: %u nodes, %llu edges  [%s]\n",
              cs.subgraph.graph.num_nodes(),
              static_cast<unsigned long long>(cs.subgraph.graph.num_edges()),
              HumanMicros(w1.ElapsedMicros()).c_str());

  StopWatch w2;
  core::EngineOptions opts;
  opts.build.levels = 2;
  opts.build.fanout = 3;
  opts.build.min_partition_size = 8;
  graph::LabelStore sub_labels;
  const gen::DblpGraph& data = CachedDblp();
  for (graph::NodeId local = 0; local < cs.subgraph.graph.num_nodes();
       ++local) {
    sub_labels.SetLabel(
        local,
        std::string(data.labels.Label(cs.subgraph.ParentId(local))));
  }
  std::string path = "/tmp/gmine_bench_combined.gtree";
  auto engine =
      core::GMineEngine::Build(cs.subgraph.graph, sub_labels, path, opts);
  if (!engine.ok()) {
    std::printf("hierarchy build failed: %s\n",
                engine.status().ToString().c_str());
    return;
  }
  core::GMineEngine& gm = *engine.value();
  std::printf("(b) partitioned into %zu top communities  [%s]\n",
              gm.tree().node(gm.tree().root()).children.size(),
              HumanMicros(w2.ElapsedMicros()).c_str());

  gtree::NavigationSession& nav = gm.session();
  int depth = 0;
  while (!gm.tree().node(nav.focus()).IsLeaf()) {
    StopWatch w3;
    (void)nav.FocusChild(0);
    std::printf("(%c) drill to %s: display=%zu communities  [%s]\n",
                'c' + (depth > 0 ? 1 : 0),
                gm.tree().node(nav.focus()).name.c_str(),
                nav.context().DisplaySize(),
                HumanMicros(w3.ElapsedMicros()).c_str());
    ++depth;
  }
  StopWatch w4;
  auto payload = nav.LoadFocusSubgraph();
  if (payload.ok()) {
    std::printf(
        "(d) reached the very nodes: %u authors in the focused community  "
        "[%s]\n",
        payload.value()->subgraph.graph.num_nodes(),
        HumanMicros(w4.ElapsedMicros()).c_str());
  }
  std::printf("end-to-end: %s\n", HumanMicros(total.ElapsedMicros()).c_str());
  std::remove(path.c_str());
}

void BM_ExtractStage(benchmark::State& state) {
  for (auto _ : state) {
    auto cs = ExtractStage(static_cast<uint32_t>(state.range(0)));
    benchmark::DoNotOptimize(cs);
  }
}

BENCHMARK(BM_ExtractStage)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_PartitionExtracted(benchmark::State& state) {
  csg::ConnectionSubgraph cs = ExtractStage(200);
  partition::PartitionOptions opts;
  opts.k = 3;
  for (auto _ : state) {
    auto r = partition::PartitionGraph(cs.subgraph.graph, opts);
    benchmark::DoNotOptimize(r);
  }
}

BENCHMARK(BM_PartitionExtracted)->Unit(benchmark::kMillisecond);

void BM_EndToEndCombined(benchmark::State& state) {
  const gen::DblpGraph& data = CachedDblp();
  for (auto _ : state) {
    csg::ConnectionSubgraph cs = ExtractStage(200);
    gtree::GTreeBuildOptions opts;
    opts.levels = 2;
    opts.fanout = 3;
    opts.min_partition_size = 8;
    auto tree = gtree::BuildGTree(cs.subgraph.graph, opts);
    benchmark::DoNotOptimize(tree);
  }
  state.counters["graph_nodes"] = data.graph.num_nodes();
}

BENCHMARK(BM_EndToEndCombined)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
