// Experiment F3 (Fig. 3): the scripted interactive navigation session.
//
// The paper's Fig. 3 sequence: (a) top-level view of 5 communities and
// their 25 sub-communities, (b) focus a community, (c) full drill to its
// sub-communities and inspection of an outlier edge, (d) label query for
// a prolific author, (e) his community subgraph, (f) co-author discovery
// by interaction. The report replays the whole session through the
// engine, printing per-step latency and display-set size — the paper's
// claim is that every step stays interactive because only the Tomahawk
// context is processed.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/engine.h"
#include "util/timer.h"

namespace {

using namespace gmine;  // NOLINT
using bench::CachedDblp;

std::string StorePath() {
  return "/tmp/gmine_bench_navigation.gtree";
}

core::GMineEngine& EngineOnce() {
  static std::unique_ptr<core::GMineEngine> engine = [] {
    const gen::DblpGraph& data = CachedDblp();
    core::EngineOptions opts;
    opts.build.levels = 3;
    opts.build.fanout = 5;
    auto e = core::GMineEngine::Build(data.graph, data.labels, StorePath(),
                                      opts);
    if (!e.ok()) {
      std::fprintf(stderr, "engine build failed: %s\n",
                   e.status().ToString().c_str());
      std::abort();
    }
    return std::move(e).value();
  }();
  return *engine;
}

void PrintReport() {
  bench::ReportHeader(
      "F3: interactive navigation session (Fig. 3 a-f)",
      "each interaction processes only the Tomahawk context, so latency "
      "stays interactive and the display stays small");
  core::GMineEngine& gm = EngineOnce();
  gtree::NavigationSession& nav = gm.session();
  const gen::DblpGraph& data = CachedDblp();

  // (a) top-level view.
  (void)nav.FocusRoot();
  // (b) focus the second top-level community (the paper's s034 moment).
  (void)nav.FocusChild(1);
  // (c) drill one level deeper and inspect the outlier pair.
  (void)nav.FocusChild(0);
  if (data.db_miller != graph::kInvalidNode) {
    (void)nav.FocusGraphNode(data.db_miller);
    auto details = gm.GetNodeDetails(data.db_miller);
    if (details.ok() && !details.value().community_neighbors.empty()) {
      std::printf(
          "outlier inspection: '%s' co-authored only with '%s' (the Fig. "
          "3c D.B. Miller / R.G. Stockton edge)\n",
          details.value().label.c_str(),
          details.value().community_neighbors[0].second.c_str());
    }
  }
  // (d) label query.
  auto located = nav.LocateByLabel("Jiawei Han");
  // (e) load his community subgraph.
  if (located.ok()) (void)nav.LoadFocusSubgraph();
  // (f) co-author discovery via edge expansion.
  if (located.ok()) {
    auto nbrs = gm.ExpandNode(located.value(), 3);
    if (nbrs.ok() && !nbrs.value().empty()) {
      std::printf("co-author discovery: top collaborator of Jiawei Han is "
                  "'%s' (the Fig. 3f Ke Wang moment)\n",
                  nbrs.value()[0].second.c_str());
    }
  }

  std::printf("%-6s %-18s %10s %10s\n", "step", "operation", "latency",
              "display");
  const auto& events = nav.history();
  for (size_t i = 0; i < events.size(); ++i) {
    std::printf("%-6zu %-18s %10s %10zu\n", i, events[i].op.c_str(),
                HumanMicros(events[i].micros).c_str(),
                events[i].display_size);
  }
  std::printf("store: %s, leaf pages loaded: %llu (of %u leaves)\n",
              HumanBytes(gm.store().file_size()).c_str(),
              static_cast<unsigned long long>(
                  gm.store().stats().leaf_loads),
              gm.tree().num_leaves());
}

void BM_FocusChange(benchmark::State& state) {
  core::GMineEngine& gm = EngineOnce();
  gtree::NavigationSession& nav = gm.session();
  size_t child = 0;
  for (auto _ : state) {
    (void)nav.FocusRoot();
    (void)nav.FocusChild(child % 5);
    ++child;
  }
}

BENCHMARK(BM_FocusChange);

void BM_LabelQuery(benchmark::State& state) {
  core::GMineEngine& gm = EngineOnce();
  gtree::NavigationSession& nav = gm.session();
  for (auto _ : state) {
    auto r = nav.LocateByLabel("Jiawei Han");
    benchmark::DoNotOptimize(r);
  }
}

BENCHMARK(BM_LabelQuery);

void BM_LoadLeafSubgraphCold(benchmark::State& state) {
  core::GMineEngine& gm = EngineOnce();
  gtree::NavigationSession& nav = gm.session();
  (void)nav.FocusGraphNode(0);
  for (auto _ : state) {
    gm.store().ClearCache();
    auto payload = nav.LoadFocusSubgraph();
    benchmark::DoNotOptimize(payload);
  }
}

BENCHMARK(BM_LoadLeafSubgraphCold);

void BM_LoadLeafSubgraphWarm(benchmark::State& state) {
  core::GMineEngine& gm = EngineOnce();
  gtree::NavigationSession& nav = gm.session();
  (void)nav.FocusGraphNode(0);
  (void)nav.LoadFocusSubgraph();
  for (auto _ : state) {
    auto payload = nav.LoadFocusSubgraph();
    benchmark::DoNotOptimize(payload);
  }
}

BENCHMARK(BM_LoadLeafSubgraphWarm);

void BM_RenderHierarchyView(benchmark::State& state) {
  core::GMineEngine& gm = EngineOnce();
  (void)gm.session().FocusRoot();
  for (auto _ : state) {
    auto st = gm.RenderHierarchyView("/tmp/gmine_bench_nav_view.svg");
    benchmark::DoNotOptimize(st);
  }
}

BENCHMARK(BM_RenderHierarchyView)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::remove(StorePath().c_str());
  return 0;
}
