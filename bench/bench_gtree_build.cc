// Experiment F1 (Fig. 1 + §III-A statistics): building the G-Tree by
// recursive k-way partitioning.
//
// The paper reports: "we recursively partition DBLP dataset into 5
// hierarchy levels each with 5 partitions. The dataset, thus, is broken
// into 5^4 + 1, or 626, communities with an average of 500 nodes per
// community."
//
// The report below regenerates those rows on the surrogate at bench
// scale and at the paper's (5,5) shape; timings measure hierarchy
// construction as graph size grows.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "gtree/builder.h"
#include "util/timer.h"

namespace {

using namespace gmine;  // NOLINT
using bench::CachedDblp;

void PrintReport() {
  bench::ReportHeader(
      "F1: G-Tree construction (Fig. 1, \"626 communities, ~500 nodes per "
      "community\")",
      "recursive 5-way partitioning of DBLP gives 626 communities "
      "averaging ~500 nodes");
  std::printf("%-28s %10s %10s %10s %12s %14s\n", "configuration", "nodes",
              "leaves", "tree", "mean leaf", "root+leaves");
  struct Config {
    uint32_t levels, fanout, leaf_size;
  };
  // (4 levels, 5-way) reproduces the paper's 5^4 = 625 leaf communities.
  const Config configs[] = {{2, 5, 60}, {3, 5, 60}, {4, 5, 12}};
  for (const Config& c : configs) {
    const gen::DblpGraph& data = CachedDblp(c.levels, c.fanout, c.leaf_size);
    gtree::GTreeBuildOptions opts;
    opts.levels = c.levels;
    opts.fanout = c.fanout;
    gtree::GTreeBuildStats stats;
    auto tree = gtree::BuildGTree(data.graph, opts, &stats);
    if (!tree.ok()) continue;
    std::printf("%-28s %10u %10u %10u %12.1f %14llu\n",
                StrFormat("levels=%u fanout=%u", c.levels, c.fanout).c_str(),
                data.graph.num_nodes(), tree.value().num_leaves(),
                tree.value().size(), tree.value().MeanLeafSize(),
                static_cast<unsigned long long>(tree.value().num_leaves() +
                                                1));
  }
  std::printf(
      "shape check: at (levels=4, fanout=5) root+leaves = 5^4 + 1 = 626, "
      "matching the paper.\n");
}

void BM_BuildGTree(benchmark::State& state) {
  uint32_t levels = static_cast<uint32_t>(state.range(0));
  const gen::DblpGraph& data = CachedDblp(levels, 5, 60);
  gtree::GTreeBuildOptions opts;
  opts.levels = levels;
  opts.fanout = 5;
  for (auto _ : state) {
    auto tree = gtree::BuildGTree(data.graph, opts);
    benchmark::DoNotOptimize(tree);
  }
  state.counters["nodes"] = data.graph.num_nodes();
  state.counters["edges"] = static_cast<double>(data.graph.num_edges());
}

BENCHMARK(BM_BuildGTree)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_PartitionOnly(benchmark::State& state) {
  const gen::DblpGraph& data = CachedDblp(3, 5, 60);
  partition::PartitionOptions opts;
  opts.k = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    auto r = partition::PartitionGraph(data.graph, opts);
    benchmark::DoNotOptimize(r);
  }
}

BENCHMARK(BM_PartitionOnly)->Arg(2)->Arg(5)->Arg(10)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
