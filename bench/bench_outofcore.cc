// Out-of-core PageRank sweep (docs/OUTOFCORE.md): the page-at-a-time
// kernel over a streamed store many times larger than the buffer-pool
// budget it runs under. The paper-facing claim: mining completes on a
// graph that never materializes, the pool's resident set stays at or
// below the configured budget while the store is >= 10x larger, and
// the process's peak RSS is recorded alongside so the sweep is honest
// about total footprint (pool + O(n) rank vectors + code). Feeds the
// "outofcore_pagerank" entry of BENCH_kernels.json via
// tools/run_benches.sh (columns: budget_bytes, graph_bytes, peak_rss,
// pool_resident_bytes); tools/check_bench_json.sh gates
// graph_bytes >= 10x budget_bytes and pool_resident_bytes <=
// budget_bytes.
//
// The sweep argument is the pool budget in MiB.

#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "bench_common.h"
#include "gen/generators.h"
#include "graph/graph.h"
#include "graph/graph_io.h"
#include "gtree/store.h"
#include "gtree/stream_build.h"
#include "mining/pagescan_kernels.h"
#include "storage/buffer_pool.h"
#include "storage/page_scan.h"
#include "util/string_util.h"

namespace {

using namespace gmine;  // NOLINT

/// Large enough that the store file dwarfs the sweep's budgets (the
/// check script gates >= 10x), small enough that the one-time streamed
/// build finishes in seconds.
constexpr uint32_t kNodes = 300000;
constexpr uint64_t kEdges = 1500000;

uint64_t PeakRssBytes() {
  struct rusage usage;
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
}

/// Builds the streamed store once per process and reports its size.
const std::string& StorePath() {
  static std::string* path = [] {
    auto* out = new std::string("/tmp/gmine_bm_outofcore.gtree");
    const std::string edges = "/tmp/gmine_bm_outofcore.edges";
    graph::Graph g = std::move(gen::ErdosRenyiM(kNodes, kEdges, 4242)).value();
    std::string lines;
    lines.reserve(kEdges * 14);
    for (uint32_t u = 0; u < g.num_nodes(); ++u) {
      for (const auto& arc : g.Neighbors(u)) {
        if (u < arc.id) lines += StrFormat("%u %u\n", u, arc.id);
      }
    }
    if (!graph::WriteStringToFile(lines, edges).ok()) {
      std::fprintf(stderr, "bench_outofcore: cannot write %s\n",
                   edges.c_str());
      std::exit(1);
    }
    gtree::StreamBuildOptions options;
    Status st = gtree::StreamBuildStore(edges, *out, {}, options, nullptr);
    std::remove(edges.c_str());
    if (!st.ok()) {
      std::fprintf(stderr, "bench_outofcore: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    return out;
  }();
  return *path;
}

void BM_OutOfCorePageRank(benchmark::State& state) {
  const uint64_t budget_bytes = static_cast<uint64_t>(state.range(0)) << 20;
  const uint64_t graph_bytes = std::filesystem::file_size(StorePath());

  storage::BufferPool pool(
      storage::BufferPoolOptions{.budget_bytes = budget_bytes});
  gtree::GTreeStoreOptions sopts;
  sopts.buffer_pool = &pool;
  auto store = gtree::GTreeStore::Open(StorePath(), sopts);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    std::exit(1);
  }
  auto scan = store.value()->NewPageScan();

  uint64_t pool_resident_peak = 0;
  for (auto _ : state) {
    scan->Reset();
    mining::PageRankOverPagesOptions options;
    options.max_iterations = 3;  // fixed sweep count: stable ns/op
    auto r = mining::PageRankOverPages(*scan, options);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    benchmark::DoNotOptimize(r.value().score.data());
    pool_resident_peak =
        std::max(pool_resident_peak, pool.stats().resident_bytes);
  }
  state.counters["budget_bytes"] = static_cast<double>(budget_bytes);
  state.counters["graph_bytes"] = static_cast<double>(graph_bytes);
  state.counters["peak_rss"] = static_cast<double>(PeakRssBytes());
  state.counters["pool_resident_bytes"] =
      static_cast<double>(pool_resident_peak);
}

BENCHMARK(BM_OutOfCorePageRank)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

/// Paper-facing report: one line per budget proving the store-to-budget
/// ratio and the bounded resident set.
void PrintReport() {
  const uint64_t graph_bytes = std::filesystem::file_size(StorePath());
  std::printf("out-of-core PageRank: store %.1f MiB, %u nodes, "
              "%llu edges\n",
              graph_bytes / (1024.0 * 1024.0), kNodes,
              static_cast<unsigned long long>(kEdges));
  for (uint64_t budget_mb : {1, 2}) {
    storage::BufferPool pool(storage::BufferPoolOptions{
        .budget_bytes = budget_mb << 20});
    gtree::GTreeStoreOptions sopts;
    sopts.buffer_pool = &pool;
    auto store = gtree::GTreeStore::Open(StorePath(), sopts);
    if (!store.ok()) return;
    auto scan = store.value()->NewPageScan();
    mining::PageRankOverPagesOptions options;
    options.max_iterations = 3;
    auto r = mining::PageRankOverPages(*scan, options);
    if (!r.ok()) return;
    const auto stats = pool.stats();
    std::printf("  budget %llu MiB: ratio %.1fx, pool resident "
                "%llu bytes (<= budget), peak RSS %.1f MiB\n",
                static_cast<unsigned long long>(budget_mb),
                static_cast<double>(graph_bytes) / (budget_mb << 20),
                static_cast<unsigned long long>(stats.resident_bytes),
                PeakRssBytes() / (1024.0 * 1024.0));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (gmine::bench::ShouldPrintReport()) PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::remove(StorePath().c_str());
  return 0;
}
