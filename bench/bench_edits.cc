// Experiment E1 (incremental maintenance, docs/EDITS.md): a single-edge
// edit through the incremental repair must cost orders of magnitude less
// than the legacy whole-graph rebuild, and must stop scaling with total
// graph size — the repair touches one page and a handful of
// connectivity rows regardless of how big the rest of the store is.
//
// BM_GTreeEditIncremental / BM_GTreeEditFullRebuild (arg = graph size)
// feed the "gtree_edit_incremental" / "gtree_edit_full" sweeps of
// BENCH_kernels.json via tools/run_benches.sh.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>

#include "bench_common.h"
#include "core/engine.h"
#include "util/timer.h"

namespace {

using namespace gmine;  // NOLINT
using bench::CachedDblp;

struct SizeConfig {
  uint32_t levels, fanout, leaf_size;
};

// arg (approx node count) -> generator shape: n = fanout^levels * leaf.
const std::map<int64_t, SizeConfig>& Sizes() {
  static const std::map<int64_t, SizeConfig> sizes = {
      {1500, {2, 5, 60}},
      {7500, {3, 5, 60}},
      {30000, {3, 5, 240}},
  };
  return sizes;
}

// One persistent engine per (size, mode): edits toggle a single
// cross-leaf edge back and forth, so the store stays bounded while every
// iteration measures exactly one ApplyEdit.
struct EditBench {
  std::unique_ptr<core::GMineEngine> engine;
  graph::NodeId u = 0;
  graph::NodeId v = 0;
  bool present = false;
  std::string path;
};

EditBench* GetEditBench(int64_t size, bool incremental) {
  static std::map<std::pair<int64_t, bool>, EditBench> cache;
  auto key = std::make_pair(size, incremental);
  auto it = cache.find(key);
  if (it != cache.end()) return &it->second;

  const SizeConfig& cfg = Sizes().at(size);
  const gen::DblpGraph& data =
      CachedDblp(cfg.levels, cfg.fanout, cfg.leaf_size);
  EditBench bench;
  bench.path = StrFormat("/tmp/gmine_bm_edit_%lld_%d.gtree",
                         static_cast<long long>(size),
                         incremental ? 1 : 0);
  core::EngineOptions opts;
  opts.build.levels = cfg.levels;
  opts.build.fanout = cfg.fanout;
  opts.edit.incremental = incremental;
  auto engine =
      core::GMineEngine::Build(data.graph, data.labels, bench.path, opts);
  if (!engine.ok()) return nullptr;
  bench.engine = std::move(engine).value();
  // A cross-leaf pair with no existing edge: adds/removes alternate.
  const gtree::GTree& tree = bench.engine->tree();
  bench.u = 0;
  for (graph::NodeId cand = 1; cand < data.graph.num_nodes(); ++cand) {
    if (tree.LeafOf(cand) != tree.LeafOf(bench.u) &&
        !data.graph.HasEdge(bench.u, cand)) {
      bench.v = cand;
      break;
    }
  }
  auto [pos, _] = cache.emplace(key, std::move(bench));
  return &pos->second;
}

void RunEditLoop(benchmark::State& state, bool incremental) {
  EditBench* bench = GetEditBench(state.range(0), incremental);
  if (bench == nullptr || bench->engine == nullptr) {
    state.SkipWithError("engine build failed");
    return;
  }
  for (auto _ : state) {
    auto g = bench->engine->full_graph();
    if (!g.ok()) {
      state.SkipWithError(g.status().ToString().c_str());
      return;
    }
    graph::GraphEdit edit(g.value()->num_nodes());
    if (bench->present) {
      edit.RemoveEdge(bench->u, bench->v);
    } else {
      edit.AddEdge(bench->u, bench->v, 2.0f);
    }
    core::EditStats stats;
    Status st = bench->engine->ApplyEdit(edit, {}, &stats);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    bench->present = !bench->present;
  }
}

void BM_GTreeEditIncremental(benchmark::State& state) {
  RunEditLoop(state, /*incremental=*/true);
}

void BM_GTreeEditFullRebuild(benchmark::State& state) {
  RunEditLoop(state, /*incremental=*/false);
}

BENCHMARK(BM_GTreeEditIncremental)
    ->Arg(1500)
    ->Arg(7500)
    ->Arg(30000)
    ->Unit(benchmark::kMicrosecond);

// The full-rebuild column exists to expose the scaling gap; keep its
// iteration budget small — one rebuild of the 30k workload costs whole
// seconds.
BENCHMARK(BM_GTreeEditFullRebuild)
    ->Arg(1500)
    ->Arg(7500)
    ->Arg(30000)
    ->Unit(benchmark::kMicrosecond)
    ->MinTime(0.02);

void PrintReport() {
  bench::ReportHeader(
      "E1: incremental edit maintenance (docs/EDITS.md)",
      "a single-edge edit repairs one subtree + a few connectivity rows; "
      "cost stays flat while the full rebuild grows with the graph");
  std::printf("%-10s %16s %16s %10s\n", "nodes", "incremental", "full rebuild",
              "ratio");
  for (const auto& [size, cfg] : Sizes()) {
    (void)cfg;
    double micros[2] = {0.0, 0.0};
    for (int mode = 0; mode < 2; ++mode) {
      EditBench* bench = GetEditBench(size, mode == 0);
      if (bench == nullptr || bench->engine == nullptr) continue;
      constexpr int kReps = 4;
      StopWatch watch;
      for (int r = 0; r < kReps; ++r) {
        auto g = bench->engine->full_graph();
        if (!g.ok()) break;
        graph::GraphEdit edit(g.value()->num_nodes());
        if (bench->present) {
          edit.RemoveEdge(bench->u, bench->v);
        } else {
          edit.AddEdge(bench->u, bench->v, 2.0f);
        }
        if (!bench->engine->ApplyEdit(edit).ok()) break;
        bench->present = !bench->present;
      }
      micros[mode] = static_cast<double>(watch.ElapsedMicros()) / kReps;
    }
    std::printf("%-10lld %13.0fus %13.0fus %9.1fx\n",
                static_cast<long long>(size), micros[0], micros[1],
                micros[0] > 0 ? micros[1] / micros[0] : 0.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (gmine::bench::ShouldPrintReport()) PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  for (const auto& [size, cfg] : Sizes()) {
    (void)cfg;
    for (int mode = 0; mode < 2; ++mode) {
      std::remove(StrFormat("/tmp/gmine_bm_edit_%lld_%d.gtree",
                            static_cast<long long>(size), mode)
                      .c_str());
    }
  }
  return 0;
}
