// GQL pushdown sweep: a selective MATCH through the query executor
// (query/executor.h) with predicate pushdown on, against stores of
// growing leaf-page counts. The claim under test (docs/QUERY.md): for a
// predicate decidable from resident metadata, pushdown loads only the
// page(s) that can match — time and IO track the *result*, not the
// store — while the reference mode materializes every page and filters
// afterwards. Feeds the "query_pushdown" entry of BENCH_kernels.json
// via tools/run_benches.sh (columns: pages_scanned, pages_total,
// speedup_vs_full).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "gtree/builder.h"
#include "gtree/store.h"
#include "query/executor.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using namespace gmine;  // NOLINT
using bench::CachedDblp;

// Sweep arg = leaf-page count: levels=3 at fanout F gives F^3 leaves.
constexpr uint32_t kFanouts[] = {4, 8};

// A one-page predicate: the label index rules every other page out
// before it is read (the DBLP surrogate names exactly one author
// "Jiawei ...", whichever leaf they land in).
constexpr const char* kSelectiveQuery =
    "MATCH NODES WHERE label PREFIX \"Jiawei\"";

/// Store files are built once per process, one per fanout; each run
/// opens its own handle (pages go through the process-wide pool).
const std::string& StorePath(uint32_t fanout) {
  static std::vector<std::string>* paths = [] {
    auto* out = new std::vector<std::string>();
    for (uint32_t f : kFanouts) {
      const gen::DblpGraph& d = CachedDblp(3, f, 60);
      gtree::GTreeBuildOptions bopts;
      bopts.levels = 3;
      bopts.fanout = f;
      auto tree = gtree::BuildGTree(d.graph, bopts);
      auto conn = gtree::ConnectivityIndex::Build(d.graph, tree.value());
      std::string path = StrFormat("/tmp/gmine_bm_query_%u.gtree", f);
      (void)gtree::GTreeStore::Create(path, d.graph, tree.value(), conn,
                                      d.labels);
      out->push_back(std::move(path));
    }
    return out;
  }();
  for (size_t i = 0; i < std::size(kFanouts); ++i) {
    if (kFanouts[i] == fanout) return (*paths)[i];
  }
  std::fprintf(stderr, "bench_query: unknown fanout %u\n", fanout);
  std::exit(1);
}

struct QueryRun {
  query::QueryStats stats;
  int64_t micros = 0;
};

QueryRun RunOnce(const gtree::GTreeStore& store, bool pushdown) {
  query::ExecutorOptions opts;
  opts.pushdown = pushdown;
  opts.threads = 1;
  query::Executor exec(&store, nullptr, opts);
  StopWatch watch;
  auto result = exec.ExecuteText(kSelectiveQuery);
  QueryRun run;
  run.micros = watch.ElapsedMicros();
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  if (result.value().rows.empty()) {
    std::fprintf(stderr, "bench_query: selective query matched 0 rows\n");
    std::exit(1);
  }
  run.stats = result.value().stats;
  return run;
}

void PrintReport() {
  bench::ReportHeader(
      "Q1: predicate pushdown (selective MATCH, docs/QUERY.md)",
      "pushdown reads only the pages the predicate can match, so a "
      "selective query's IO tracks the result size, not the store size");
  std::printf("%-8s %-8s %14s %14s %14s %10s\n", "leaves", "mode",
              "wall time", "pages read", "rows", "speedup");
  for (uint32_t f : kFanouts) {
    auto store = gtree::GTreeStore::Open(StorePath(f));
    if (!store.ok()) {
      std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
      std::exit(1);
    }
    const QueryRun full = RunOnce(*store.value(), /*pushdown=*/false);
    const QueryRun push = RunOnce(*store.value(), /*pushdown=*/true);
    const double speedup =
        push.micros > 0 ? static_cast<double>(full.micros) /
                              static_cast<double>(push.micros)
                        : 0.0;
    std::printf("%-8llu %-8s %14s %10llu/%-3llu %14llu %10s\n",
                static_cast<unsigned long long>(full.stats.pages_total),
                "full",
                HumanMicros(full.micros).c_str(),
                static_cast<unsigned long long>(full.stats.pages_scanned),
                static_cast<unsigned long long>(full.stats.pages_total),
                static_cast<unsigned long long>(full.stats.rows_output),
                "-");
    std::printf("%-8llu %-8s %14s %10llu/%-3llu %14llu %9.2fx\n",
                static_cast<unsigned long long>(push.stats.pages_total),
                "pushdown",
                HumanMicros(push.micros).c_str(),
                static_cast<unsigned long long>(push.stats.pages_scanned),
                static_cast<unsigned long long>(push.stats.pages_total),
                static_cast<unsigned long long>(push.stats.rows_output),
                speedup);
  }
}

// JSON kernel: ns/op of the selective MATCH with pushdown on; arg =
// leaf-page count (fanout^3). Counters carry the pushdown contract for
// tools/check_bench_json.sh — pages_scanned < pages_total, and
// speedup_vs_full from a reference full-scan run of the same query.
void BM_QueryPushdown(benchmark::State& state) {
  const auto leaves = static_cast<uint64_t>(state.range(0));
  uint32_t fanout = 0;
  for (uint32_t f : kFanouts) {
    if (static_cast<uint64_t>(f) * f * f == leaves) fanout = f;
  }
  if (fanout == 0) {
    state.SkipWithError("arg must be fanout^3 for a known fanout");
    return;
  }
  auto store = gtree::GTreeStore::Open(StorePath(fanout));
  if (!store.ok()) {
    state.SkipWithError(store.status().ToString().c_str());
    return;
  }
  uint64_t scanned = 0, total = 0;
  int64_t push_micros = 0;
  uint64_t runs = 0;
  for (auto _ : state) {
    QueryRun r = RunOnce(*store.value(), /*pushdown=*/true);
    scanned = r.stats.pages_scanned;
    total = r.stats.pages_total;
    push_micros += r.micros;
    ++runs;
  }
  // Reference mode, measured outside the timed loop: a handful of runs
  // is plenty for a counter.
  int64_t full_micros = 0;
  const uint64_t full_runs = std::min<uint64_t>(std::max<uint64_t>(runs, 1),
                                                 16);
  for (uint64_t i = 0; i < full_runs; ++i) {
    full_micros += RunOnce(*store.value(), /*pushdown=*/false).micros;
  }
  state.counters["pages_scanned"] = static_cast<double>(scanned);
  state.counters["pages_total"] = static_cast<double>(total);
  const double push_per_run =
      runs > 0 ? static_cast<double>(push_micros) /
                     static_cast<double>(runs)
               : 0.0;
  const double full_per_run =
      static_cast<double>(full_micros) / static_cast<double>(full_runs);
  state.counters["speedup_vs_full"] =
      push_per_run > 0.0 ? full_per_run / push_per_run : 0.0;
}

BENCHMARK(BM_QueryPushdown)
    ->Arg(64)
    ->Arg(512)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  if (gmine::bench::ShouldPrintReport()) PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  for (uint32_t f : kFanouts) {
    std::remove(StorePath(f).c_str());
  }
  return 0;
}
