// Experiment F2 (Fig. 2): connectivity edges — "the number of edges
// between nodes from the original graph, but that are in different
// communities."
//
// Report: for the bench hierarchy, the heaviest sibling connectivity
// edges at the top level plus the invariant that leaf-pair counts sum to
// the number of cross-leaf edges. Timings: index construction and
// queries.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "gtree/builder.h"
#include "gtree/connectivity.h"
#include "gtree/tomahawk.h"

namespace {

using namespace gmine;  // NOLINT
using bench::CachedDblp;

struct Built {
  const gen::DblpGraph* data;
  gtree::GTree tree;
  gtree::ConnectivityIndex index;
};

Built& BuildOnce() {
  static Built* built = [] {
    auto* b = new Built();
    b->data = &CachedDblp();
    gtree::GTreeBuildOptions opts;
    opts.levels = 3;
    opts.fanout = 5;
    b->tree = std::move(gtree::BuildGTree(b->data->graph, opts)).value();
    b->index = gtree::ConnectivityIndex::Build(b->data->graph, b->tree);
    return b;
  }();
  return *built;
}

void PrintReport() {
  Built& b = BuildOnce();
  bench::ReportHeader(
      "F2: connectivity edges (Fig. 2)",
      "connectivity edge weight = number of original cross-community "
      "edges; width encodes the count in the display");

  // Top-level sibling connectivity (what Fig. 3(a) draws).
  const auto& root = b.tree.node(b.tree.root());
  std::printf("top-level communities: %zu; connectivity among them:\n",
              root.children.size());
  auto edges = b.index.EdgesAmong(root.children);
  for (const auto& e : edges) {
    std::printf("  %s <-> %s : %llu cross edges (weight %.0f)\n",
                b.tree.node(e.a).name.c_str(), b.tree.node(e.b).name.c_str(),
                static_cast<unsigned long long>(e.count), e.weight);
  }

  // Invariant check (the Fig. 2 definition).
  uint64_t cross_edges = 0;
  for (graph::NodeId u = 0; u < b.data->graph.num_nodes(); ++u) {
    for (const graph::Neighbor& nb : b.data->graph.Neighbors(u)) {
      if (nb.id > u && b.tree.LeafOf(u) != b.tree.LeafOf(nb.id)) {
        ++cross_edges;
      }
    }
  }
  uint64_t leaf_pair_sum = 0;
  for (uint32_t x = 0; x < b.tree.size(); ++x) {
    if (!b.tree.node(x).IsLeaf()) continue;
    for (uint32_t y = x + 1; y < b.tree.size(); ++y) {
      if (!b.tree.node(y).IsLeaf()) continue;
      leaf_pair_sum += b.index.CountBetween(x, y);
    }
  }
  std::printf(
      "invariant: cross-leaf edges = %llu, sum over leaf pairs = %llu (%s)\n",
      static_cast<unsigned long long>(cross_edges),
      static_cast<unsigned long long>(leaf_pair_sum),
      cross_edges == leaf_pair_sum ? "MATCH" : "MISMATCH");
  std::printf("distinct community pairs with connectivity: %zu\n",
              b.index.num_pairs());
}

void BM_BuildConnectivityIndex(benchmark::State& state) {
  Built& b = BuildOnce();
  for (auto _ : state) {
    auto index = gtree::ConnectivityIndex::Build(b.data->graph, b.tree);
    benchmark::DoNotOptimize(index);
  }
  state.counters["pairs"] = static_cast<double>(b.index.num_pairs());
}

BENCHMARK(BM_BuildConnectivityIndex)->Unit(benchmark::kMillisecond);

void BM_ConnectivityQuery(benchmark::State& state) {
  Built& b = BuildOnce();
  uint32_t a = 1;
  uint32_t c = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.index.CountBetween(a, c));
    if (++c >= b.tree.size()) {
      c = 0;
      a = (a + 1) % b.tree.size();
    }
  }
}

BENCHMARK(BM_ConnectivityQuery);

void BM_EdgesAmongDisplaySet(benchmark::State& state) {
  Built& b = BuildOnce();
  auto ctx = gtree::ComputeTomahawk(b.tree, b.tree.node(b.tree.root()).children[0]);
  auto display = ctx.DisplaySet();
  for (auto _ : state) {
    auto edges = b.index.EdgesAmong(display);
    benchmark::DoNotOptimize(edges);
  }
  state.counters["display"] = static_cast<double>(display.size());
}

BENCHMARK(BM_EdgesAmongDisplaySet);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
