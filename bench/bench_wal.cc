// WAL group-commit sweep (docs/WAL.md): one fdatasync barrier and one
// incremental repair serve a whole group, so edit throughput must rise
// nearly linearly with batch depth while per-edit latency falls. The
// acceptance bar for the subsystem is >= 5x the serial (depth-1)
// throughput at depth 8.
//
// BM_WalGroupCommit (arg = burst depth) feeds the "wal_group_commit"
// sweep of BENCH_kernels.json via tools/run_benches.sh.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <future>
#include <map>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/edit_queue.h"
#include "core/engine.h"
#include "util/timer.h"

namespace {

using namespace gmine;  // NOLINT
using bench::CachedDblp;

constexpr uint32_t kLevels = 2;
constexpr uint32_t kFanout = 5;
constexpr uint32_t kLeafSize = 60;  // 5^2 * 60 = 1,500 nodes

// One persistent engine + queue per burst depth. Each iteration toggles
// `depth` distinct cross-leaf edges (submitted as one burst, awaited
// together), so the store stays bounded, every record is a real edit,
// and no group-barrier rule (remove-then-re-add) ever splits a burst.
struct WalBench {
  std::unique_ptr<core::GMineEngine> engine;
  std::unique_ptr<core::EditQueue> queue;
  std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs;
  std::vector<bool> present;
  size_t cursor = 0;
  std::string path;
};

std::string BenchStorePath(int64_t depth) {
  return StrFormat("/tmp/gmine_bm_wal_%lld.gtree",
                   static_cast<long long>(depth));
}

WalBench* GetWalBench(int64_t depth) {
  static std::map<int64_t, WalBench> cache;
  auto it = cache.find(depth);
  if (it != cache.end()) return &it->second;

  const gen::DblpGraph& data = CachedDblp(kLevels, kFanout, kLeafSize);
  WalBench bench;
  bench.path = BenchStorePath(depth);
  std::remove((bench.path + ".wal").c_str());
  core::EngineOptions opts;
  opts.build.levels = kLevels;
  opts.build.fanout = kFanout;
  opts.wal.enabled = true;
  auto engine =
      core::GMineEngine::Build(data.graph, data.labels, bench.path, opts);
  if (!engine.ok()) return nullptr;
  bench.engine = std::move(engine).value();
  core::EditQueueOptions qopts;
  qopts.max_group_edits = static_cast<size_t>(depth);
  bench.queue = std::make_unique<core::EditQueue>(bench.engine.get(), qopts);

  // A pool of absent cross-leaf pairs, each toggled independently.
  const gtree::GTree& tree = bench.engine->tree();
  const uint32_t n = data.graph.num_nodes();
  for (graph::NodeId u = 0; bench.pairs.size() < 64 && u < n; u += 17) {
    for (graph::NodeId v = u + 1; v < n; ++v) {
      if (tree.LeafOf(v) != tree.LeafOf(u) && !data.graph.HasEdge(u, v)) {
        bench.pairs.emplace_back(u, v);
        break;
      }
    }
  }
  bench.present.assign(bench.pairs.size(), false);
  auto [pos, _] = cache.emplace(depth, std::move(bench));
  return &pos->second;
}

// Submits one burst of `depth` edits and waits for every ack. Returns
// false on any commit failure.
bool RunBurst(WalBench* bench, size_t depth) {
  const uint32_t n = bench->queue->tip_nodes();
  std::vector<std::future<core::EditCommit>> acks;
  acks.reserve(depth);
  for (size_t j = 0; j < depth; ++j) {
    const size_t p = bench->cursor++ % bench->pairs.size();
    graph::GraphEdit edit(n);
    if (bench->present[p]) {
      edit.RemoveEdge(bench->pairs[p].first, bench->pairs[p].second);
    } else {
      edit.AddEdge(bench->pairs[p].first, bench->pairs[p].second, 2.0f);
    }
    bench->present[p] = !bench->present[p];
    auto fut = bench->queue->Submit(std::move(edit));
    if (!fut.ok()) return false;
    acks.push_back(std::move(fut).value());
  }
  for (auto& ack : acks) {
    if (!ack.get().status.ok()) return false;
  }
  return true;
}

void BM_WalGroupCommit(benchmark::State& state) {
  WalBench* bench = GetWalBench(state.range(0));
  if (bench == nullptr || bench->engine == nullptr ||
      bench->pairs.empty()) {
    state.SkipWithError("bench engine setup failed");
    return;
  }
  const auto depth = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    if (!RunBurst(bench, depth)) {
      state.SkipWithError("group commit failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(depth));
  state.counters["edits_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(depth),
      benchmark::Counter::kIsRate);
}

// UseRealTime: the submitting thread sleeps while the committer does
// the work, so CPU time would undercount the commit path wildly.
BENCHMARK(BM_WalGroupCommit)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime()
    ->MinTime(0.05);

void PrintReport() {
  bench::ReportHeader(
      "WAL group commit (docs/WAL.md)",
      "one fsync + one repair per group amortizes the commit cost over "
      "the batch; depth-8 throughput must be >= 5x serial");
  std::printf("%-8s %14s %16s %12s\n", "depth", "commit us/edit",
              "edits/sec", "vs depth 1");
  double base_rate = 0.0;
  for (int64_t depth : {int64_t{1}, int64_t{2}, int64_t{4}, int64_t{8},
                        int64_t{16}}) {
    WalBench* bench = GetWalBench(depth);
    if (bench == nullptr || bench->engine == nullptr ||
        bench->pairs.empty()) {
      continue;
    }
    constexpr int kBursts = 12;
    StopWatch watch;
    for (int r = 0; r < kBursts; ++r) {
      if (!RunBurst(bench, static_cast<size_t>(depth))) break;
    }
    const double micros = static_cast<double>(watch.ElapsedMicros());
    const double edits = static_cast<double>(kBursts * depth);
    const double per_edit = micros / edits;
    const double rate = edits / (micros / 1e6);
    if (depth == 1) base_rate = rate;
    std::printf("%-8lld %12.1fus %16.0f %11.1fx\n",
                static_cast<long long>(depth), per_edit, rate,
                base_rate > 0 ? rate / base_rate : 0.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (gmine::bench::ShouldPrintReport()) PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  for (int64_t depth : {int64_t{1}, int64_t{2}, int64_t{4}, int64_t{8},
                        int64_t{16}}) {
    std::remove(BenchStorePath(depth).c_str());
    std::remove((BenchStorePath(depth) + ".wal").c_str());
  }
  return 0;
}
