// Network front end: loopback round-trip sweep. A fixed budget of
// protocol requests (navigate + leaf loads) splits across N concurrent
// `net::Client` connections against one in-process `net::Server` over
// one store — the socket-level analogue of the session_pool_navigate
// sweep, adding framing, syscalls and the worker pool to the measured
// path. Feeds the "server_navigate" entry of BENCH_kernels.json via
// tools/run_benches.sh.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/session_manager.h"
#include "gtree/builder.h"
#include "net/client.h"
#include "net/server.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace {

using namespace gmine;  // NOLINT
using bench::CachedDblp;

constexpr char kStorePath[] = "/tmp/gmine_bm_server.gtree";
// Total protocol round-trips per measurement, split across the clients.
constexpr size_t kRequests = 128;

/// One shared store for every benchmark in this binary.
const gtree::GTreeStore* SharedStore() {
  static std::unique_ptr<gtree::GTreeStore> store = [] {
    const gen::DblpGraph& d = CachedDblp();
    gtree::GTreeBuildOptions bopts;
    bopts.levels = 3;
    bopts.fanout = 5;
    auto tree = gtree::BuildGTree(d.graph, bopts);
    auto conn = gtree::ConnectivityIndex::Build(d.graph, tree.value());
    (void)gtree::GTreeStore::Create(kStorePath, d.graph, tree.value(),
                                    conn, d.labels);
    return std::move(gtree::GTreeStore::Open(kStorePath)).value();
  }();
  return store.get();
}

/// Runs this client's slice of the request budget: a deterministic
/// descend / load / ascend cycle. Returns completed round-trips.
size_t RunClientSlice(uint16_t port, size_t client, size_t num_clients) {
  net::Client c;
  if (!c.Connect("127.0.0.1", port).ok()) return 0;
  static const char* kCycle[] = {"child 0", "child 0", "load", "root"};
  size_t done = 0;
  for (size_t k = client; k < kRequests; k += num_clients) {
    if (c.Roundtrip(kCycle[k % 4]).ok()) ++done;
  }
  (void)c.Roundtrip("close");
  c.Close();
  return done;
}

/// One measurement: N clients connect, burn the shared budget, close.
double RunSweep(const net::Server& server, size_t clients) {
  StopWatch watch;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t i = 0; i < clients; ++i) {
    threads.emplace_back([&server, i, clients] {
      (void)RunClientSlice(server.port(), i, clients);
    });
  }
  for (std::thread& t : threads) t.join();
  return static_cast<double>(watch.ElapsedMicros());
}

void PrintReport() {
  bench::ReportHeader(
      "S2: network front end round-trips (docs/SERVER.md)",
      "remote clients map onto pool sessions; socket framing adds "
      "microseconds, not milliseconds, to a navigation gesture");
  core::SessionManager pool(SharedStore());
  net::ServerOptions sopts;
  sopts.max_clients = 256;  // never reject a sweep client on big hosts
  net::Server server(&pool, sopts);
  if (!server.Start().ok()) return;
  bench::PrintThreadSweep(
      StrFormat("loopback round-trip sweep (%zu requests split across N "
                "clients):",
                kRequests)
          .c_str(),
      [&](int clients) {
        return RunSweep(server,
                        static_cast<size_t>(ResolveThreads(clients)));
      });
  server.Stop();
  std::printf(
      "server: accepted=%llu requests=%llu avg latency=%lluus\n",
      static_cast<unsigned long long>(server.stats().accepted),
      static_cast<unsigned long long>(server.stats().requests),
      static_cast<unsigned long long>(
          server.stats().requests
              ? server.stats().total_latency_micros /
                    server.stats().requests
              : 0));
}

// The benchmark server outlives every iteration; main() stops it before
// static destruction tears the store down under its threads.
net::Server* g_bm_server = nullptr;

// Loopback navigation through the server: arg = concurrent client count
// (0 = auto). The request budget is fixed, so wall time tracks how well
// the listener/worker/session stack overlaps clients.
void BM_ServerNavigate(benchmark::State& state) {
  static core::SessionManager* pool =
      new core::SessionManager(SharedStore());
  static net::Server* server = [] {
    net::ServerOptions sopts;
    sopts.max_clients = 256;  // the cap must never skew the sweep
    auto* s = new net::Server(pool, sopts);
    if (!s->Start().ok()) std::abort();
    g_bm_server = s;
    return s;
  }();
  const size_t clients =
      static_cast<size_t>(ResolveThreads(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunSweep(*server, clients));
  }
  state.counters["requests"] = static_cast<double>(kRequests);
}

BENCHMARK(BM_ServerNavigate)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  if (gmine::bench::ShouldPrintReport()) PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (g_bm_server != nullptr) g_bm_server->Stop();
  std::remove(kStorePath);
  return 0;
}
