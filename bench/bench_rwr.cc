// Ablation A2 (§IV design choices): RWR convergence (power iteration vs
// exact solve) and the candidate-pruning step that keeps extraction
// interactive on large graphs.
//
// Report: iterations/residual vs tolerance; power-iteration accuracy
// against the exact solve; extraction latency with and without pruning.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.h"
#include "csg/extraction.h"
#include "csg/rwr.h"
#include "util/timer.h"

namespace {

using namespace gmine;  // NOLINT
using bench::CachedDblp;

void PrintReport() {
  bench::ReportHeader(
      "A2: RWR convergence & candidate pruning (§IV)",
      "power iteration converges geometrically at rate (1 - c); pruning "
      "to top-goodness candidates keeps path extraction interactive");
  const gen::DblpGraph& data = CachedDblp();
  graph::NodeId source = data.jiawei_han;

  std::printf("%-12s %12s %14s\n", "tolerance", "iterations", "residual");
  for (double tol : {1e-4, 1e-6, 1e-8, 1e-10, 1e-12}) {
    csg::RwrOptions opts;
    opts.tolerance = tol;
    opts.max_iterations = 1000;
    auto r = csg::RandomWalkWithRestart(data.graph, source, opts);
    if (!r.ok()) continue;
    std::printf("%-12.0e %12d %14.3e\n", tol, r.value().iterations,
                r.value().final_delta);
  }

  // Accuracy vs exact solve on a small community.
  std::vector<graph::NodeId> members;
  for (graph::NodeId v = 0; v < 400; ++v) members.push_back(v);
  auto sub = graph::InducedSubgraph(data.graph, members);
  if (sub.ok()) {
    csg::RwrOptions opts;
    opts.tolerance = 1e-12;
    opts.max_iterations = 2000;
    auto iter = csg::RandomWalkWithRestart(sub.value().graph, 0, opts);
    auto exact = csg::RandomWalkWithRestartExact(sub.value().graph, 0, opts);
    if (iter.ok() && exact.ok()) {
      double max_err = 0.0;
      for (size_t v = 0; v < iter.value().probability.size(); ++v) {
        max_err = std::max(max_err,
                           std::abs(iter.value().probability[v] -
                                    exact.value().probability[v]));
      }
      std::printf(
          "power iteration vs exact dense solve (400-node community): max "
          "|error| = %.3e\n",
          max_err);
    }
  }

  // Thread sweep: pull-based power iteration at fixed tolerance.
  bench::PrintThreadSweep("RWR thread sweep:", [&](int threads) {
    csg::RwrOptions opts;
    opts.tolerance = 1e-10;
    opts.max_iterations = 1000;
    opts.context.threads = threads;
    StopWatch w;
    auto r = csg::RandomWalkWithRestart(data.graph, source, opts);
    if (!r.ok()) {
      std::fprintf(stderr, "RWR (threads=%d) failed: %s\n", threads,
                   r.status().ToString().c_str());
      return -1.0;
    }
    return static_cast<double>(w.ElapsedMicros());
  });

  // Pruning ablation.
  std::vector<graph::NodeId> sources{data.philip_yu, data.flip_korn,
                                     data.minos_garofalakis};
  for (bool prune : {true, false}) {
    csg::ExtractionOptions opts;
    opts.budget = 30;
    opts.prune_candidates = prune;
    StopWatch w;
    auto cs = csg::ExtractConnectionSubgraph(data.graph, sources, opts);
    if (!cs.ok()) continue;
    std::printf(
        "extraction %-14s candidates=%6u capture=%.3e time=%s\n",
        prune ? "with pruning:" : "without pruning:",
        cs.value().candidate_size, cs.value().goodness_capture,
        HumanMicros(w.ElapsedMicros()).c_str());
  }
}

void BM_RwrPowerIteration(benchmark::State& state) {
  const gen::DblpGraph& data = CachedDblp();
  csg::RwrOptions opts;
  opts.tolerance = std::pow(10.0, -static_cast<double>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        csg::RandomWalkWithRestart(data.graph, data.jiawei_han, opts));
  }
}
BENCHMARK(BM_RwrPowerIteration)->Arg(6)->Arg(10)->Unit(
    benchmark::kMillisecond);

// Thread-count sweep for BENCH_kernels.json (tools/run_benches.sh):
// Arg is the `threads` option (0 = auto).
void BM_RwrThreads(benchmark::State& state) {
  const gen::DblpGraph& data = CachedDblp();
  csg::RwrOptions opts;
  opts.tolerance = 1e-10;
  opts.max_iterations = 1000;
  opts.context.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        csg::RandomWalkWithRestart(data.graph, data.jiawei_han, opts));
  }
}
BENCHMARK(BM_RwrThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(0)->Unit(
    benchmark::kMillisecond);

void BM_RwrExactSmall(benchmark::State& state) {
  const gen::DblpGraph& data = CachedDblp();
  std::vector<graph::NodeId> members;
  for (graph::NodeId v = 0; v < static_cast<uint32_t>(state.range(0)); ++v) {
    members.push_back(v);
  }
  auto sub = graph::InducedSubgraph(data.graph, members);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        csg::RandomWalkWithRestartExact(sub.value().graph, 0));
  }
}
BENCHMARK(BM_RwrExactSmall)->Arg(200)->Arg(400)->Unit(
    benchmark::kMillisecond);

void BM_ExtractionPruned(benchmark::State& state) {
  const gen::DblpGraph& data = CachedDblp();
  csg::ExtractionOptions opts;
  opts.budget = 30;
  opts.prune_candidates = state.range(0) != 0;
  std::vector<graph::NodeId> sources{data.philip_yu, data.flip_korn};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        csg::ExtractConnectionSubgraph(data.graph, sources, opts));
  }
  state.SetLabel(state.range(0) ? "pruned" : "unpruned");
}
BENCHMARK(BM_ExtractionPruned)->Arg(1)->Arg(0)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  if (gmine::bench::ShouldPrintReport()) PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
