// Quickstart: the GMine pipeline end to end on a small synthetic
// co-authorship graph —
//   generate -> build hierarchy (G-Tree + connectivity + single file) ->
//   navigate with Tomahawk contexts -> run a label query -> inspect a
//   node -> compute community metrics -> extract a connection subgraph ->
//   render SVG views.
//
// Usage: quickstart [output_dir]

#include <cstdio>
#include <string>

#include "core/engine.h"
#include "core/views.h"
#include "gen/dblp.h"
#include "util/string_util.h"

namespace {

int Fail(const gmine::Status& st, const char* where) {
  std::fprintf(stderr, "FATAL %s: %s\n", where, st.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gmine;  // NOLINT: example brevity
  std::string out_dir = argc > 1 ? argv[1] : ".";

  // 1. A small DBLP-like co-authorship graph (3 levels x 3 communities).
  gen::DblpOptions gopts;
  gopts.levels = 3;
  gopts.fanout = 3;
  gopts.leaf_size = 40;
  gopts.seed = 42;
  auto dblp = gen::GenerateDblp(gopts);
  if (!dblp.ok()) return Fail(dblp.status(), "generate");
  const gen::DblpGraph& data = dblp.value();
  std::printf("graph: %s\n", data.graph.DebugString().c_str());

  // 2. Build the hierarchy and the single-file store.
  core::EngineOptions eopts;
  eopts.build.levels = 3;
  eopts.build.fanout = 3;
  std::string store_path = out_dir + "/quickstart.gtree";
  auto engine = core::GMineEngine::Build(data.graph, data.labels,
                                         store_path, eopts);
  if (!engine.ok()) return Fail(engine.status(), "build");
  core::GMineEngine& gm = *engine.value();
  std::printf("tree:  %s\n", gm.tree().DebugString().c_str());

  // 3. Navigate: root context, then drill into the first child.
  gtree::NavigationSession& nav = gm.session();
  std::printf("root context shows %zu communities\n",
              nav.context().DisplaySize());
  if (auto st = nav.FocusChild(0); !st.ok()) return Fail(st, "focus");
  std::printf("focused %s; connectivity edges in view: %zu\n",
              gm.tree().node(nav.focus()).name.c_str(),
              nav.ContextConnectivity().size());
  if (auto st = gm.RenderHierarchyView(out_dir + "/quickstart_hierarchy.svg");
      !st.ok()) {
    return Fail(st, "render hierarchy");
  }

  // 4. Label query for the planted hub author ("Jiawei Han"), then pop-up
  //    details on demand.
  auto located = nav.LocateByLabel("Jiawei Han");
  if (!located.ok()) return Fail(located.status(), "label query");
  auto details = gm.GetNodeDetails(located.value());
  if (!details.ok()) return Fail(details.status(), "details");
  std::printf("found '%s' in community %s (path:", details.value().label.c_str(),
              gm.tree().node(details.value().leaf).name.c_str());
  for (const std::string& p : details.value().community_path) {
    std::printf(" %s", p.c_str());
  }
  std::printf("), %u co-authors inside the community\n",
              details.value().degree_in_community);

  // 5. Community metrics on the focused leaf (§III-B's five metrics).
  auto metrics = gm.ComputeFocusMetrics();
  if (!metrics.ok()) return Fail(metrics.status(), "metrics");
  std::printf("%s", metrics.value().Report().c_str());
  if (auto st = gm.RenderFocusSubgraph(out_dir + "/quickstart_community.svg");
      !st.ok()) {
    return Fail(st, "render community");
  }

  // 6. Connection subgraph between three named authors (§IV).
  auto sources = gm.ResolveLabels(
      {"Jiawei Han", "Philip S. Yu", "Flip Korn"});
  if (!sources.ok()) return Fail(sources.status(), "resolve");
  csg::ExtractionOptions xopts;
  xopts.budget = 30;
  auto cs = gm.ExtractConnectionSubgraph(sources.value(), xopts);
  if (!cs.ok()) return Fail(cs.status(), "extract");
  std::printf("extraction: %s\n", cs.value().ToString().c_str());
  if (auto st = core::RenderConnectionSubgraphSvg(
          cs.value(), &gm.labels(), out_dir + "/quickstart_csg.svg");
      !st.ok()) {
    return Fail(st, "render csg");
  }

  // 7. Interaction latency log.
  std::printf("interaction log (%zu events):\n", nav.history().size());
  for (const auto& ev : nav.history()) {
    std::printf("  %-18s %8s display=%zu\n", ev.op.c_str(),
                HumanMicros(ev.micros).c_str(), ev.display_size);
  }
  std::printf("store file: %s (%s)\n", store_path.c_str(),
              HumanBytes(gm.store().file_size()).c_str());
  std::printf("OK\n");
  return 0;
}
