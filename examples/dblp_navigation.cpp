// The paper's Fig. 3 scenario end to end: multi-resolution navigation of
// the DBLP co-authorship graph.
//
//   (a) top-level view: 5 communities and their 25 sub-communities;
//   (b) focus one community and read its context;
//   (c) drill deeper, find the isolated community whose only cross pair
//       is the D. B. Miller / R. G. Stockton co-authorship;
//   (d) label query: locate Jiawei Han in the hierarchy;
//   (e) load his community subgraph from disk;
//   (f) interact to discover his top co-author (Ke Wang).
//
// Every step writes an SVG frame and reports its latency. Pass
// --paper-scale to run on the full 315k-node surrogate (takes a couple
// of minutes to build the hierarchy; everything else stays interactive
// — which is the point of the paper).
//
// Usage: dblp_navigation [output_dir] [--paper-scale]

#include <cstdio>
#include <cstring>
#include <string>

#include "core/engine.h"
#include "core/views.h"
#include "gen/dblp.h"
#include "gtree/stats.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

int Fail(const gmine::Status& st, const char* where) {
  std::fprintf(stderr, "FATAL %s: %s\n", where, st.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gmine;  // NOLINT
  std::string out_dir = ".";
  bool paper_scale = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paper-scale") == 0) {
      paper_scale = true;
    } else {
      out_dir = argv[i];
    }
  }

  // DBLP surrogate. The demo used n=315,688, e=1,659,853, partitioned
  // into 5 levels x 5 partitions = 626 communities of ~500 authors.
  gen::DblpOptions gopts =
      paper_scale ? gen::PaperScaleDblpOptions() : gen::DblpOptions();
  if (!paper_scale) {
    gopts.levels = 3;
    gopts.fanout = 5;
    gopts.leaf_size = 60;
  }
  StopWatch gen_watch;
  auto dblp = gen::GenerateDblp(gopts);
  if (!dblp.ok()) return Fail(dblp.status(), "generate");
  const gen::DblpGraph& data = dblp.value();
  std::printf("[%7s] surrogate DBLP: %s\n",
              HumanMicros(gen_watch.ElapsedMicros()).c_str(),
              data.graph.DebugString().c_str());

  core::EngineOptions opts;
  opts.build.levels = paper_scale ? 4 : 3;  // 5^4 = 625 leaves at scale
  opts.build.fanout = 5;
  StopWatch build_watch;
  std::string store_path = out_dir + "/dblp.gtree";
  auto engine =
      core::GMineEngine::Build(data.graph, data.labels, store_path, opts);
  if (!engine.ok()) return Fail(engine.status(), "build");
  core::GMineEngine& gm = *engine.value();
  std::printf("[%7s] hierarchy: %s -> %s on disk\n",
              HumanMicros(build_watch.ElapsedMicros()).c_str(),
              gm.tree().DebugString().c_str(),
              HumanBytes(gm.store().file_size()).c_str());

  gtree::NavigationSession& nav = gm.session();

  // Fig. 1: the G-Tree structure itself, plus the per-level profile.
  if (auto st = core::RenderTreeDiagramSvg(gm.tree(),
                                           out_dir + "/fig1_gtree.svg");
      !st.ok()) {
    return Fail(st, "fig1");
  }
  {
    auto g = gm.full_graph();
    if (!g.ok()) return Fail(g.status(), "fig1 stats");
    gtree::HierarchyStats stats =
        gtree::ComputeHierarchyStats(*g.value(), gm.tree());
    std::printf("hierarchy profile (fig1_gtree.svg):\n%s",
                stats.ToString().c_str());
  }

  // (a) Top-level view.
  if (auto st = gm.RenderHierarchyView(out_dir + "/fig3a_top_level.svg");
      !st.ok()) {
    return Fail(st, "fig3a");
  }
  std::printf("(a) top level: %zu communities in view; %zu connectivity "
              "edges -> fig3a_top_level.svg\n",
              nav.context().DisplaySize(), nav.ContextConnectivity().size());

  // (b) Focus a first-level community.
  if (auto st = nav.FocusChild(1); !st.ok()) return Fail(st, "fig3b");
  (void)gm.RenderHierarchyView(out_dir + "/fig3b_focus.svg");
  std::printf("(b) focus %s: display=%zu -> fig3b_focus.svg\n",
              gm.tree().node(nav.focus()).name.c_str(),
              nav.context().DisplaySize());

  // (c) Drill to the isolated community with the outlier edge.
  if (data.db_miller != graph::kInvalidNode) {
    if (auto st = nav.FocusGraphNode(data.db_miller); !st.ok()) {
      return Fail(st, "fig3c focus");
    }
    (void)gm.RenderHierarchyView(out_dir + "/fig3c_outlier_community.svg");
    auto details = gm.GetNodeDetails(data.db_miller);
    if (!details.ok()) return Fail(details.status(), "fig3c details");
    std::printf("(c) outlier inspection in %s: '%s' <-> '%s' is the only "
                "co-authorship of this pair (community path:",
                gm.tree().node(nav.focus()).name.c_str(),
                details.value().label.c_str(),
                details.value().community_neighbors.empty()
                    ? "?"
                    : details.value().community_neighbors[0].second.c_str());
    for (const std::string& p : details.value().community_path) {
      std::printf(" %s", p.c_str());
    }
    std::printf(")\n");
  }

  // (d) Label query.
  auto located = nav.LocateByLabel("Jiawei Han");
  if (!located.ok()) return Fail(located.status(), "fig3d");
  (void)gm.RenderHierarchyView(out_dir + "/fig3d_label_query.svg");
  std::printf("(d) label query 'Jiawei Han' -> node %u in community %s\n",
              located.value(), gm.tree().node(nav.focus()).name.c_str());

  // (e) Load and render his community subgraph.
  auto payload = nav.LoadFocusSubgraph();
  if (!payload.ok()) return Fail(payload.status(), "fig3e");
  if (auto st = gm.RenderFocusSubgraph(out_dir + "/fig3e_subgraph.svg");
      !st.ok()) {
    return Fail(st, "fig3e render");
  }
  std::printf("(e) community subgraph: %u authors, %llu co-authorships -> "
              "fig3e_subgraph.svg\n",
              payload.value()->subgraph.graph.num_nodes(),
              static_cast<unsigned long long>(
                  payload.value()->subgraph.graph.num_edges()));

  // (f) Interaction: expand the hub to find the strongest co-author.
  auto nbrs = gm.ExpandNode(located.value(), 5);
  if (!nbrs.ok()) return Fail(nbrs.status(), "fig3f");
  std::printf("(f) top co-authors of Jiawei Han:");
  for (const auto& [id, label] : nbrs.value()) {
    std::printf("  '%s'", label.c_str());
  }
  std::printf("\n");

  // §III-B metrics on the focused community.
  auto metrics = gm.ComputeFocusMetrics();
  if (!metrics.ok()) return Fail(metrics.status(), "metrics");
  std::printf("community metrics:\n%s", metrics.value().Report().c_str());

  // Interaction latency log — the paper's interactivity claim.
  std::printf("\ninteraction log:\n%-6s %-18s %10s %10s\n", "step", "op",
              "latency", "display");
  const auto& events = nav.history();
  for (size_t i = 0; i < events.size(); ++i) {
    std::printf("%-6zu %-18s %10s %10zu\n", i, events[i].op.c_str(),
                HumanMicros(events[i].micros).c_str(),
                events[i].display_size);
  }
  std::printf("leaf pages loaded: %llu of %u (on-demand IO)\nOK\n",
              static_cast<unsigned long long>(gm.store().stats().leaf_loads),
              gm.tree().num_leaves());
  return 0;
}
