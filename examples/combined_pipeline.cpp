// The paper's Fig. 6 scenario: combining subgraph extraction with
// communities-within-communities visualization.
//
//   (a) extract a 200-node connection subgraph from the DBLP surrogate;
//   (b) hierarchically partition the extraction into 3 communities;
//   (c) go one level down the hierarchy;
//   (d) zoom once more and reach the very nodes of the graph.
//
// Each stage writes an SVG frame. The paper's point: extraction makes a
// large graph small enough to study, and the hierarchy then organizes
// the result for navigation.
//
// Usage: combined_pipeline [output_dir]

#include <cstdio>
#include <string>

#include "core/engine.h"
#include "core/views.h"
#include "csg/extraction.h"
#include "gen/dblp.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

int Fail(const gmine::Status& st, const char* where) {
  std::fprintf(stderr, "FATAL %s: %s\n", where, st.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gmine;  // NOLINT
  std::string out_dir = argc > 1 ? argv[1] : ".";

  gen::DblpOptions gopts;
  gopts.levels = 3;
  gopts.fanout = 5;
  gopts.leaf_size = 60;
  auto dblp = gen::GenerateDblp(gopts);
  if (!dblp.ok()) return Fail(dblp.status(), "generate");
  const gen::DblpGraph& data = dblp.value();

  // (a) 200-node extraction around three prolific authors.
  csg::ExtractionOptions xopts;
  xopts.budget = 200;
  StopWatch wa;
  auto cs = csg::ExtractConnectionSubgraph(
      data.graph, {data.jiawei_han, data.philip_yu, data.hv_jagadish},
      xopts);
  if (!cs.ok()) return Fail(cs.status(), "extract");
  std::printf("(a) [%7s] extracted %u nodes / %llu edges from %u-node "
              "graph\n",
              HumanMicros(wa.ElapsedMicros()).c_str(),
              cs.value().subgraph.graph.num_nodes(),
              static_cast<unsigned long long>(
                  cs.value().subgraph.graph.num_edges()),
              data.graph.num_nodes());
  if (auto st = core::RenderConnectionSubgraphSvg(
          cs.value(), &data.labels, out_dir + "/fig6a_extracted.svg");
      !st.ok()) {
    return Fail(st, "fig6a");
  }

  // Carry the author names into the extracted subgraph.
  graph::LabelStore sub_labels;
  for (graph::NodeId local = 0;
       local < cs.value().subgraph.graph.num_nodes(); ++local) {
    sub_labels.SetLabel(local,
                        std::string(data.labels.Label(
                            cs.value().subgraph.ParentId(local))));
  }

  // (b) Partition the extraction into 3 communities.
  core::EngineOptions opts;
  opts.build.levels = 2;
  opts.build.fanout = 3;
  opts.build.min_partition_size = 8;
  StopWatch wb;
  std::string store_path = out_dir + "/fig6.gtree";
  auto engine = core::GMineEngine::Build(cs.value().subgraph.graph,
                                         sub_labels, store_path, opts);
  if (!engine.ok()) return Fail(engine.status(), "build");
  core::GMineEngine& gm = *engine.value();
  std::printf("(b) [%7s] partitioned into %zu communities (%s)\n",
              HumanMicros(wb.ElapsedMicros()).c_str(),
              gm.tree().node(gm.tree().root()).children.size(),
              gm.tree().DebugString().c_str());
  if (auto st = gm.RenderHierarchyView(out_dir + "/fig6b_partitioned.svg");
      !st.ok()) {
    return Fail(st, "fig6b");
  }

  // (c) One level down.
  gtree::NavigationSession& nav = gm.session();
  if (auto st = nav.FocusChild(0); !st.ok()) return Fail(st, "fig6c");
  std::printf("(c) focused %s: %zu communities in context, %zu "
              "connectivity edges\n",
              gm.tree().node(nav.focus()).name.c_str(),
              nav.context().DisplaySize(),
              nav.ContextConnectivity().size());
  if (auto st = gm.RenderHierarchyView(out_dir + "/fig6c_drill.svg");
      !st.ok()) {
    return Fail(st, "fig6c render");
  }

  // (d) Down to the very nodes.
  while (!gm.tree().node(nav.focus()).IsLeaf()) {
    if (auto st = nav.FocusChild(0); !st.ok()) return Fail(st, "fig6d");
  }
  auto payload = nav.LoadFocusSubgraph();
  if (!payload.ok()) return Fail(payload.status(), "fig6d load");
  std::printf("(d) reached the very nodes: community %s holds %u authors\n",
              gm.tree().node(nav.focus()).name.c_str(),
              payload.value()->subgraph.graph.num_nodes());
  if (auto st = gm.RenderFocusSubgraph(out_dir + "/fig6d_nodes.svg");
      !st.ok()) {
    return Fail(st, "fig6d render");
  }

  std::printf("frames: fig6a_extracted.svg fig6b_partitioned.svg "
              "fig6c_drill.svg fig6d_nodes.svg\nOK\n");
  return 0;
}
