// The VLDB demo-session experience as a scriptable REPL: "for VLDB
// demonstration session, we plan to let the interested VLDB participants
// interact directly with the system, possibly checking for their name,
// their connection-subgraphs with their colleagues, and zooming in and
// out their corresponding communities."
//
// Reads one command per line from stdin (or a script via shell
// redirection) and executes it against a freshly built DBLP surrogate:
//
//   ls                      show focus context (children/siblings)
//   cd <index>|..|/         focus child / parent / root
//   back                    undo last focus change
//   find <name>             exact label query (focuses the community)
//   search <prefix>         autocomplete author names
//   info <name>             pop-up details for an author
//   expand <name>           strongest co-authors (edge expansion)
//   metrics                 §III-B metrics of the focused community
//   extract <name>;<name>…  connection subgraph for a query set
//   zoom <factor> | pan <dx> <dy> | resetview
//   render <file.svg>       current hierarchy view
//   log                     interaction history
//   quit
//
// Usage: interactive_session [output_dir] < script.txt

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "core/engine.h"
#include "core/views.h"
#include "gen/dblp.h"
#include "util/string_util.h"

namespace {

using namespace gmine;  // NOLINT

void PrintContext(core::GMineEngine& gm) {
  gtree::NavigationSession& nav = gm.session();
  const gtree::GTree& tree = gm.tree();
  const gtree::TreeNode& f = tree.node(nav.focus());
  std::printf("focus %s (depth %u, %llu authors)%s\n", f.name.c_str(),
              f.depth, static_cast<unsigned long long>(f.subtree_size),
              f.IsLeaf() ? " [leaf]" : "");
  for (size_t i = 0; i < f.children.size(); ++i) {
    const gtree::TreeNode& c = tree.node(f.children[i]);
    std::printf("  [%zu] %s: %llu authors\n", i, c.name.c_str(),
                static_cast<unsigned long long>(c.subtree_size));
  }
  auto conn = nav.ContextConnectivity();
  std::printf("  %zu communities in view, %zu connectivity edges\n",
              nav.context().DisplaySize(), conn.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = argc > 1 ? argv[1] : ".";

  gen::DblpOptions gopts;
  gopts.levels = 3;
  gopts.fanout = 5;
  gopts.leaf_size = 60;
  auto dblp = gen::GenerateDblp(gopts);
  if (!dblp.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 dblp.status().ToString().c_str());
    return 1;
  }
  core::EngineOptions opts;
  opts.build.levels = 3;
  opts.build.fanout = 5;
  auto engine = core::GMineEngine::Build(
      dblp.value().graph, dblp.value().labels, out_dir + "/session.gtree",
      opts);
  if (!engine.ok()) {
    std::fprintf(stderr, "build: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  core::GMineEngine& gm = *engine.value();
  std::printf("GMine interactive session — %s\n",
              gm.tree().DebugString().c_str());
  PrintContext(gm);

  std::string line;
  while (std::printf("gmine> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty()) continue;
    std::istringstream iss{std::string(trimmed)};
    std::string cmd;
    iss >> cmd;
    std::string rest;
    std::getline(iss, rest);
    std::string arg(TrimWhitespace(rest));
    gtree::NavigationSession& nav = gm.session();

    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "ls") {
      PrintContext(gm);
    } else if (cmd == "cd") {
      Status st;
      if (arg == "..") {
        st = nav.FocusParent();
      } else if (arg == "/") {
        st = nav.FocusRoot();
      } else {
        uint64_t index = 0;
        if (!ParseUint64(arg, &index)) {
          std::printf("cd: expected index, '..' or '/'\n");
          continue;
        }
        st = nav.FocusChild(index);
      }
      if (!st.ok()) {
        std::printf("cd: %s\n", st.ToString().c_str());
      } else {
        PrintContext(gm);
      }
    } else if (cmd == "back") {
      (void)nav.Back();
      PrintContext(gm);
    } else if (cmd == "find") {
      auto hit = nav.LocateByLabel(arg);
      if (!hit.ok()) {
        std::printf("find: %s\n", hit.status().ToString().c_str());
      } else {
        std::printf("found node %u; ", hit.value());
        PrintContext(gm);
      }
    } else if (cmd == "search") {
      for (const auto& [id, name] : nav.SearchByPrefix(arg, 8)) {
        std::printf("  %u  %s\n", id, name.c_str());
      }
    } else if (cmd == "info") {
      graph::NodeId v = gm.labels().Find(arg);
      if (v == graph::kInvalidNode) {
        std::printf("info: unknown author '%s'\n", arg.c_str());
        continue;
      }
      auto details = gm.GetNodeDetails(v);
      if (!details.ok()) {
        std::printf("info: %s\n", details.status().ToString().c_str());
        continue;
      }
      std::printf("%s — community", details.value().label.c_str());
      for (const std::string& p : details.value().community_path) {
        std::printf(" %s", p.c_str());
      }
      std::printf(", %u co-authors in community\n",
                  details.value().degree_in_community);
    } else if (cmd == "expand") {
      graph::NodeId v = gm.labels().Find(arg);
      if (v == graph::kInvalidNode) {
        std::printf("expand: unknown author '%s'\n", arg.c_str());
        continue;
      }
      auto nbrs = gm.ExpandNode(v, 8);
      if (nbrs.ok()) {
        for (const auto& [id, name] : nbrs.value()) {
          std::printf("  %u  %s\n", id, name.c_str());
        }
      }
    } else if (cmd == "metrics") {
      auto metrics = gm.ComputeFocusMetrics();
      if (!metrics.ok()) {
        std::printf("metrics: %s\n", metrics.status().ToString().c_str());
      } else {
        std::printf("%s", metrics.value().Report().c_str());
      }
    } else if (cmd == "extract") {
      std::vector<std::string> names = SplitString(arg, ";");
      for (std::string& n : names) n = std::string(TrimWhitespace(n));
      auto sources = gm.ResolveLabels(names);
      if (!sources.ok()) {
        std::printf("extract: %s\n", sources.status().ToString().c_str());
        continue;
      }
      auto cs = gm.ExtractConnectionSubgraph(sources.value());
      if (!cs.ok()) {
        std::printf("extract: %s\n", cs.status().ToString().c_str());
        continue;
      }
      std::printf("%s\n", cs.value().ToString().c_str());
      std::string svg = out_dir + "/session_extract.svg";
      if (core::RenderConnectionSubgraphSvg(cs.value(), &gm.labels(), svg)
              .ok()) {
        std::printf("figure: %s\n", svg.c_str());
      }
    } else if (cmd == "zoom") {
      double factor = 0.0;
      if (!ParseDouble(arg, &factor) || !nav.Zoom(factor).ok()) {
        std::printf("zoom: expected positive factor\n");
      } else {
        std::printf("zoom = %.2f\n", nav.view().zoom);
      }
    } else if (cmd == "pan") {
      std::vector<std::string> parts = SplitString(arg, " ");
      double dx = 0;
      double dy = 0;
      if (parts.size() != 2 || !ParseDouble(parts[0], &dx) ||
          !ParseDouble(parts[1], &dy)) {
        std::printf("pan: expected dx dy\n");
      } else {
        nav.Pan(dx, dy);
      }
    } else if (cmd == "resetview") {
      nav.ResetView();
    } else if (cmd == "render") {
      std::string path = arg.empty() ? out_dir + "/session_view.svg" : arg;
      Status st = gm.RenderHierarchyView(path);
      std::printf("%s\n", st.ok() ? path.c_str() : st.ToString().c_str());
    } else if (cmd == "log") {
      for (const auto& ev : nav.history()) {
        std::printf("  %-18s %8s display=%zu\n", ev.op.c_str(),
                    HumanMicros(ev.micros).c_str(), ev.display_size);
      }
    } else {
      std::printf(
          "commands: ls cd back find search info expand metrics extract "
          "zoom pan resetview render log quit\n");
    }
  }
  std::printf("bye\n");
  std::remove((out_dir + "/session.gtree").c_str());
  return 0;
}
