// The paper's Fig. 5 scenario: connection subgraph extraction.
//
// "A connection subgraph with 30 nodes extracted from the whole DBLP
// dataset ... The initial query set is composed of three authors from
// the database community: Philip S. Yu, Flip Korn and Minos N.
// Garofalakis." Hovering a node pops up its details — here the pop-up is
// printed for the highest-goodness non-source node (the H. V. Jagadish
// role in the paper's figure).
//
// Also demonstrates the multi-source advantage over the pairwise
// delivered-current baseline [Faloutsos-McCurley-Tomkins KDD'04].
//
// Usage: connection_subgraph [output_dir] [budget]

#include <cstdio>
#include <string>
#include <unordered_set>

#include "core/views.h"
#include "csg/delivered_current.h"
#include "csg/extraction.h"
#include "gen/dblp.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

int Fail(const gmine::Status& st, const char* where) {
  std::fprintf(stderr, "FATAL %s: %s\n", where, st.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gmine;  // NOLINT
  std::string out_dir = argc > 1 ? argv[1] : ".";
  uint32_t budget = 30;
  if (argc > 2) {
    uint64_t parsed = 0;
    if (ParseUint64(argv[2], &parsed) && parsed >= 3) {
      budget = static_cast<uint32_t>(parsed);
    }
  }

  gen::DblpOptions gopts;
  gopts.levels = 3;
  gopts.fanout = 5;
  gopts.leaf_size = 60;
  auto dblp = gen::GenerateDblp(gopts);
  if (!dblp.ok()) return Fail(dblp.status(), "generate");
  const gen::DblpGraph& data = dblp.value();
  std::printf("graph: %s\n", data.graph.DebugString().c_str());

  std::vector<graph::NodeId> sources{data.philip_yu, data.flip_korn,
                                     data.minos_garofalakis};
  std::printf("query set: 'Philip S. Yu', 'Flip Korn', "
              "'Minos N. Garofalakis'\n");

  csg::ExtractionOptions opts;
  opts.budget = budget;
  StopWatch watch;
  auto cs = csg::ExtractConnectionSubgraph(data.graph, sources, opts);
  if (!cs.ok()) return Fail(cs.status(), "extract");
  std::printf("[%7s] %s\n", HumanMicros(watch.ElapsedMicros()).c_str(),
              cs.value().ToString().c_str());
  std::printf("magnitude: %ux smaller than the input graph\n",
              data.graph.num_nodes() /
                  cs.value().subgraph.graph.num_nodes());

  // Pop-up details for the most central non-source member (the paper
  // hovers H. V. Jagadish and sees his edges highlighted).
  const auto& sub = cs.value().subgraph;
  graph::NodeId best_local = graph::kInvalidNode;
  double best_good = -1.0;
  std::unordered_set<graph::NodeId> source_set(
      cs.value().source_locals.begin(), cs.value().source_locals.end());
  for (graph::NodeId local = 0; local < sub.graph.num_nodes(); ++local) {
    if (source_set.count(local)) continue;
    if (cs.value().member_goodness[local] > best_good) {
      best_good = cs.value().member_goodness[local];
      best_local = local;
    }
  }
  if (best_local != graph::kInvalidNode) {
    graph::NodeId orig = sub.ParentId(best_local);
    std::printf("pop-up: '%s' (goodness %.3e) connects to:",
                std::string(data.labels.Label(orig)).c_str(), best_good);
    for (const graph::Neighbor& nb : sub.graph.Neighbors(best_local)) {
      std::printf(" '%s'",
                  std::string(data.labels.Label(sub.ParentId(nb.id)))
                      .c_str());
    }
    std::printf("\n");
  }

  std::string svg = out_dir + "/fig5_connection_subgraph.svg";
  if (auto st = core::RenderConnectionSubgraphSvg(cs.value(), &data.labels,
                                                  svg);
      !st.ok()) {
    return Fail(st, "render");
  }
  std::printf("figure written to %s\n", svg.c_str());

  // Comparison: the pairwise baseline cannot take the 3-author query;
  // the closest it offers is the union over all source pairs.
  auto walks = csg::ComputeSourceWalks(data.graph, sources, opts.rwr);
  if (!walks.ok()) return Fail(walks.status(), "walks");
  std::vector<double> goodness = csg::GoodnessScores(walks.value());
  std::unordered_set<graph::NodeId> union_nodes;
  csg::DeliveredCurrentOptions dopts;
  dopts.budget = budget / 2 + 2;
  for (size_t i = 0; i < sources.size(); ++i) {
    for (size_t j = i + 1; j < sources.size(); ++j) {
      auto dc = csg::DeliveredCurrentSubgraph(data.graph, sources[i],
                                              sources[j], dopts);
      if (!dc.ok()) continue;
      for (graph::NodeId p : dc.value().subgraph.to_parent) {
        union_nodes.insert(p);
      }
    }
  }
  std::vector<graph::NodeId> union_vec(union_nodes.begin(),
                                       union_nodes.end());
  std::printf(
      "pairwise delivered-current union: %zu nodes capture %.3e | "
      "multi-source: %u nodes capture %.3e -> multi-source %s\n",
      union_vec.size(), csg::GoodnessCapture(goodness, union_vec),
      cs.value().subgraph.graph.num_nodes(), cs.value().goodness_capture,
      cs.value().goodness_capture >=
              csg::GoodnessCapture(goodness, union_vec)
          ? "wins"
          : "loses");
  std::printf("OK\n");
  return 0;
}
